"""Chaos harness: kill/recover/verify at tick boundaries."""

import dataclasses

import pytest

from repro.chaos import (
    ChaosScenario,
    describe_mismatch,
    run_chaos,
    run_with_crash,
    seeded_crash_points,
    total_steps,
    uninterrupted_report,
)
from repro.crowd.faults import RetryPolicy
from repro.errors import InvalidParameterError

FAULTY = ChaosScenario(
    workload="steady",
    seed=3,
    faults="outages",
    retry_policy=RetryPolicy(),
)


class TestHarnessApi:
    def test_requires_exactly_one_crash_schedule(self):
        scenario = ChaosScenario()
        with pytest.raises(InvalidParameterError):
            run_chaos(scenario)
        with pytest.raises(InvalidParameterError):
            run_chaos(scenario, crash_points=[1], sweep=True)

    def test_rejects_negative_crash_point(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            run_with_crash(
                ChaosScenario(), -1, journal_path=tmp_path / "j.jsonl"
            )

    def test_seeded_crash_points_are_deterministic(self):
        first = seeded_crash_points(FAULTY, 4)
        second = seeded_crash_points(FAULTY, 4)
        assert first == second
        assert first == sorted(first)
        assert all(0 <= p <= total_steps(FAULTY) for p in first)

    def test_describe_mismatch_pinpoints_the_field(self):
        baseline = uninterrupted_report(ChaosScenario())
        assert describe_mismatch(baseline, baseline) is None
        tweaked = dataclasses.replace(baseline, makespan=baseline.makespan + 1)
        assert "makespan" in describe_mismatch(tweaked, baseline)

    def test_crash_beyond_the_last_step_recovers_a_finished_run(self, tmp_path):
        scenario = ChaosScenario()
        outcome = run_with_crash(
            scenario,
            crash_after=total_steps(scenario) + 10,
            journal_path=tmp_path / "late.jsonl",
        )
        assert outcome.equivalent
        assert outcome.crash_after == total_steps(scenario)


class TestRecoveryEquivalence:
    def test_three_seeded_crash_points_under_outages(self, tmp_path):
        """The tier-1 version of the acceptance sweep: three seeded kills
        of a faulty workload must all recover bit-identically."""
        report = run_chaos(FAULTY, n_crashes=3, journal_dir=tmp_path)
        assert len(report.outcomes) >= 1
        assert report.all_equivalent, report.render()

    def test_sparse_snapshots_still_recover_exactly(self, tmp_path):
        scenario = dataclasses.replace(FAULTY, snapshot_interval=4)
        report = run_chaos(scenario, n_crashes=3, journal_dir=tmp_path)
        assert report.all_equivalent, report.render()

    def test_render_mentions_every_crash_point(self, tmp_path):
        report = run_chaos(
            ChaosScenario(), crash_points=[0, 1], journal_dir=tmp_path
        )
        rendered = report.render()
        assert "kill after step    0" in rendered
        assert "kill after step    1" in rendered
        assert "all recoveries bit-identical" in rendered

    @pytest.mark.slow
    def test_every_tick_boundary_under_outages(self, tmp_path):
        """The full acceptance property: kill at EVERY tick boundary of a
        faulty workload; every recovery must be bit-identical."""
        report = run_chaos(FAULTY, sweep=True, journal_dir=tmp_path)
        assert len(report.outcomes) == total_steps(FAULTY) + 1
        assert report.all_equivalent, report.render()

    @pytest.mark.slow
    def test_every_tick_boundary_with_breaker_and_sustained_outage(
        self, tmp_path
    ):
        from repro.crowd.breaker import CircuitBreakerConfig

        scenario = ChaosScenario(
            workload="smoke",
            seed=11,
            faults="sustained",
            retry_policy=RetryPolicy(),
            breaker=CircuitBreakerConfig(failure_threshold=2),
        )
        report = run_chaos(scenario, sweep=True, journal_dir=tmp_path)
        assert report.all_equivalent, report.render()


class TestNamedScenarios:
    def test_registry_lists_multibackend_outage(self):
        from repro.chaos import available_scenarios, scenario_by_name

        assert "multibackend-outage" in available_scenarios()
        scenario = scenario_by_name("multibackend-outage")
        assert scenario.backends is not None
        assert [s.name for s in scenario.backends] == [
            "fast", "balanced", "cheap",
        ]
        with pytest.raises(InvalidParameterError, match="multibackend"):
            scenario_by_name("nonesuch")

    def test_backends_exclude_legacy_fault_fields(self):
        from repro.chaos import scenario_by_name
        from repro.crowd.breaker import CircuitBreakerConfig

        scenario = scenario_by_name("multibackend-outage")
        with pytest.raises(InvalidParameterError):
            dataclasses.replace(scenario, faults="outages")
        with pytest.raises(InvalidParameterError):
            dataclasses.replace(
                scenario, breaker=CircuitBreakerConfig()
            )

    def test_multibackend_outage_recovers_bit_identically(self, tmp_path):
        from repro.chaos import scenario_by_name

        scenario = scenario_by_name("multibackend-outage")
        report = run_chaos(
            scenario, crash_points=[1], journal_dir=tmp_path
        )
        assert report.all_equivalent, report.render()
        assert "backends=fast,balanced,cheap" in report.render()


class TestDeadlineStorm:
    """The ``deadline-storm`` scenario: every robustness feature at once.

    Deadlines, replans, hedged rounds and brownout transitions must all
    survive a kill/recover cycle bit-identically, and every admitted
    query must reach an explicit terminal state — no silent losses.
    """

    def test_registry_lists_deadline_storm(self):
        from repro.chaos import available_scenarios, scenario_by_name

        assert "deadline-storm" in available_scenarios()
        scenario = scenario_by_name("deadline-storm")
        assert scenario.config.default_deadline is not None
        assert scenario.config.hedge is not None
        assert scenario.config.brownout is not None

    def test_no_admitted_query_is_ever_lost(self):
        from repro.chaos import scenario_by_name
        from repro.service import DEADLINE_OUTCOMES

        scenario = scenario_by_name("deadline-storm")
        report = uninterrupted_report(scenario)
        assert len(report.results) == scenario.n_queries
        assert all(
            r.deadline_outcome in DEADLINE_OUTCOMES for r in report.results
        )

    def test_storm_exercises_every_deadline_path(self):
        from repro.chaos import build_scheduler, scenario_by_name

        scenario = scenario_by_name("deadline-storm")
        scheduler = build_scheduler(scenario)
        report = scheduler.run()
        attainment = report.deadline_attainment
        # The scenario is tuned so no outcome class is vacuous.
        assert attainment is not None
        assert all(attainment[outcome] > 0 for outcome in attainment)
        assert scheduler.router.hedges > 0
        assert scheduler.brownout.transitions > 0

    def test_deadline_storm_recovers_bit_identically(self, tmp_path):
        from repro.chaos import scenario_by_name

        scenario = scenario_by_name("deadline-storm")
        report = run_chaos(
            scenario, crash_points=[1, 5, 9], journal_dir=tmp_path
        )
        assert report.all_equivalent, report.render()

    @pytest.mark.slow
    def test_every_tick_boundary_of_the_storm(self, tmp_path):
        from repro.chaos import scenario_by_name

        scenario = scenario_by_name("deadline-storm")
        report = run_chaos(scenario, sweep=True, journal_dir=tmp_path)
        assert report.all_equivalent, report.render()

    def test_recovered_results_keep_deadline_outcomes(self, tmp_path):
        from repro.chaos import build_scheduler, scenario_by_name
        from repro.service.journal import SchedulerJournal, recover_scheduler

        scenario = scenario_by_name("deadline-storm")
        baseline = uninterrupted_report(scenario)
        journal_path = tmp_path / "storm.jsonl"
        journal = SchedulerJournal.create(
            journal_path, snapshot_interval=scenario.snapshot_interval
        )
        victim = build_scheduler(scenario, journal=journal)
        for _ in range(4):
            victim.step()
        journal.close()
        del victim

        survivor = recover_scheduler(journal_path)
        recovered = survivor.run()
        if survivor.journal is not None:
            survivor.journal.close()
        assert [r.deadline_outcome for r in recovered.results] == [
            r.deadline_outcome for r in baseline.results
        ]
        assert recovered.deadline_attainment == baseline.deadline_attainment
