"""Tests for the literal Algorithm 1 memoized solver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.latency import LinearLatency, PowerLawLatency
from repro.core.tdp import solve_min_latency
from repro.core.tdp_memo import (
    MemoizedTDPAllocator,
    StateLimitExceededError,
    solve_min_latency_memo,
)
from repro.errors import InvalidParameterError


class TestEquivalenceWithParetoSolver:
    @given(
        n_elements=st.integers(2, 30),
        data=st.data(),
        delta=st.floats(0, 400),
        alpha=st.floats(0.01, 2),
        p=st.floats(0.6, 2.2),
    )
    @settings(max_examples=50, deadline=None)
    def test_same_optimal_latency(self, n_elements, data, delta, alpha, p):
        budget = data.draw(st.integers(n_elements - 1, 6 * n_elements))
        latency = PowerLawLatency(delta, alpha, p)
        memo_plan = solve_min_latency_memo(n_elements, budget, latency)
        pareto_plan = solve_min_latency(n_elements, budget, latency)
        assert memo_plan.total_latency == pytest.approx(
            pareto_plan.total_latency, rel=1e-12, abs=1e-9
        )

    def test_paper_500_element_allocation(self, mturk_latency):
        plan = solve_min_latency_memo(500, 4000, mturk_latency)
        assert plan.sequence == (500, 50, 1)
        assert plan.questions_used == 3475


class TestBehaviour:
    def test_single_element(self, mturk_latency):
        plan = solve_min_latency_memo(1, 0, mturk_latency)
        assert plan.sequence == (1,)
        assert plan.states_visited == 1

    def test_states_grow_slowly_with_budget(self, mturk_latency):
        """The Section 6.7 observation: doubling b does not double the
        reachable state count."""
        small = solve_min_latency_memo(60, 120, mturk_latency)
        large = solve_min_latency_memo(60, 960, mturk_latency)
        assert large.states_visited < 4 * small.states_visited

    def test_state_limit_enforced(self, mturk_latency):
        with pytest.raises(StateLimitExceededError):
            solve_min_latency_memo(80, 640, mturk_latency, max_states=10)

    def test_sequence_spends_reported_questions(self):
        latency = LinearLatency(25, 0.4)
        plan = solve_min_latency_memo(40, 300, latency)
        from repro.core.questions import tournament_questions

        spent = sum(
            tournament_questions(a, b)
            for a, b in zip(plan.sequence, plan.sequence[1:])
        )
        assert spent == plan.questions_used <= 300

    def test_infeasible_budget(self, mturk_latency):
        with pytest.raises(InvalidParameterError):
            solve_min_latency_memo(10, 8, mturk_latency)

    def test_allocator_wrapper(self, mturk_latency):
        allocation = MemoizedTDPAllocator().allocate(30, 90, mturk_latency)
        assert allocation.allocator_name == "tDP-memo"
        assert allocation.total_questions <= 90
