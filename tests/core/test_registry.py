"""Tests for the allocator registry."""

import pytest

from repro.core.allocation import BudgetAllocator
from repro.core.registry import allocator_by_name, available_allocators
from repro.errors import InvalidParameterError


def test_all_paper_allocators_registered():
    names = available_allocators()
    for expected in ("tDP", "HE", "HF", "uHE", "uHF"):
        assert expected in names


def test_lookup_returns_fresh_instances():
    first = allocator_by_name("tDP")
    second = allocator_by_name("tDP")
    assert isinstance(first, BudgetAllocator)
    assert first is not second


def test_lookup_is_case_insensitive():
    assert allocator_by_name("uhe").name == "uHE"
    assert allocator_by_name("TDP").name == "tDP"


def test_unknown_name_lists_alternatives():
    with pytest.raises(InvalidParameterError) as excinfo:
        allocator_by_name("nope")
    assert "tDP" in str(excinfo.value)
