"""Tests for the repetition-aware allocator wrapper."""

import numpy as np
import pytest

from repro.core.latency import LinearLatency
from repro.core.rwl_aware import RepetitionAwareAllocator, _RepeatedLatency
from repro.core.tdp import TDPAllocator
from repro.errors import InvalidParameterError

MTURK = LinearLatency(239, 0.06)


class TestRepeatedLatency:
    def test_scales_the_batch_size(self):
        repeated = _RepeatedLatency(MTURK, 5)
        assert repeated(100) == MTURK(500)

    def test_batch_matches_scalar(self):
        repeated = _RepeatedLatency(MTURK, 3)
        qs = np.array([0, 1, 50])
        assert np.allclose(
            repeated.batch(qs), [repeated(int(q)) for q in qs]
        )


class TestRepetitionAwareAllocator:
    def test_repetition_one_is_transparent(self):
        plain = TDPAllocator().allocate(100, 700, MTURK)
        wrapped = RepetitionAwareAllocator(TDPAllocator(), 1).allocate(
            100, 700, MTURK
        )
        assert wrapped.round_budgets == plain.round_budgets

    def test_budgets_are_distinct_question_counts(self):
        wrapped = RepetitionAwareAllocator(TDPAllocator(), 5).allocate(
            100, 3500, MTURK
        )
        # Distinct budget is 700; no round can plan more than that.
        assert wrapped.total_questions <= 700

    def test_platform_budget_conserved(self):
        repetition = 4
        wrapped = RepetitionAwareAllocator(TDPAllocator(), repetition).allocate(
            60, 1200, MTURK
        )
        assert wrapped.total_questions * repetition <= 1200

    def test_optimizes_end_to_end_latency(self):
        """The wrapper's plan, priced at L(r*q) per round, is at least as
        good as naively planning with the raw L and the distinct budget."""
        repetition = 5
        n, platform_budget = 100, 2000
        wrapped = RepetitionAwareAllocator(TDPAllocator(), repetition).allocate(
            n, platform_budget, MTURK
        )
        naive = TDPAllocator().allocate(n, platform_budget // repetition, MTURK)

        def true_latency(allocation):
            return sum(MTURK(repetition * q) for q in allocation.round_budgets)

        assert true_latency(wrapped) <= true_latency(naive) + 1e-9

    def test_repetition_shifts_toward_fewer_questions(self):
        """Repetition amplifies the per-question cost, so the optimal plan
        spends fewer distinct questions."""
        plain = TDPAllocator().allocate(200, 4000, MTURK)
        wrapped = RepetitionAwareAllocator(TDPAllocator(), 9).allocate(
            200, 4000 * 9, MTURK
        )
        # Same distinct budget available (4000), but the repeated batches
        # are 9x as slow per question: never more distinct questions.
        assert wrapped.total_questions <= plain.total_questions

    def test_infeasible_after_division(self):
        with pytest.raises(InvalidParameterError):
            RepetitionAwareAllocator(TDPAllocator(), 10).allocate(
                100, 500, MTURK
            )

    def test_name_and_validation(self):
        wrapper = RepetitionAwareAllocator(TDPAllocator(), 3)
        assert wrapper.name == "tDP@x3"
        with pytest.raises(InvalidParameterError):
            RepetitionAwareAllocator(TDPAllocator(), 0)

    def test_end_to_end_with_noisy_platform(self):
        """Wrapper + RWL + noisy workers: the whole stack stays consistent
        and accurate."""
        from repro.crowd.error_models import UniformError
        from repro.crowd.ground_truth import GroundTruth
        from repro.crowd.platform import SimulatedPlatform
        from repro.crowd.rwl import ReliableWorkerLayer
        from repro.engine.max_engine import MaxEngine, PlatformAnswerSource
        from repro.selection.tournament import TournamentFormation

        repetition = 5
        rng = np.random.default_rng(9)
        truth = GroundTruth.random(16, rng)
        platform = SimulatedPlatform(
            truth, rng, error_model=UniformError(0.15)
        )
        rwl = ReliableWorkerLayer(platform, rng, repetition=repetition)
        allocation = RepetitionAwareAllocator(
            TDPAllocator(), repetition
        ).allocate(16, 400, MTURK)
        engine = MaxEngine(
            TournamentFormation(), PlatformAnswerSource(rwl), rng
        )
        result = engine.run(truth, allocation)
        assert platform.stats.questions_posted == (
            repetition * result.total_questions
        )
        assert platform.stats.questions_posted <= 400
