"""Tests for the min-cost-under-deadline dual solver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.brute_force import iter_sequences
from repro.core.latency import LinearLatency
from repro.core.questions import tournament_questions
from repro.core.tdp import solve_min_cost, solve_min_latency
from repro.errors import InvalidParameterError

MTURK = LinearLatency(239, 0.06)


def brute_force_min_cost(n, deadline, latency):
    """Cheapest tournament sequence finishing within the deadline.

    A tiny relative tolerance absorbs float-association differences: the
    solver accumulates per-round latencies bottom-up (right-associated)
    while this reference sums front-to-back, which can differ by an ulp.
    """
    best = None
    for sequence in iter_sequences(n):
        questions = [
            tournament_questions(a, b)
            for a, b in zip(sequence, sequence[1:])
        ]
        total_latency = sum(latency(q) for q in questions)
        if total_latency <= deadline * (1 + 1e-12):
            cost = sum(questions)
            if best is None or cost < best:
                best = cost
    return best


class TestAgainstBruteForce:
    @given(
        n=st.integers(2, 10),
        delta=st.floats(1, 400),
        alpha=st.floats(0.01, 2),
        slack=st.floats(1e-6, 3.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_exhaustive_minimum(self, n, delta, alpha, slack):
        latency = LinearLatency(delta, alpha)
        fastest = solve_min_latency(
            n, n * (n - 1) // 2, latency
        ).total_latency
        # Keep the deadline strictly off the achievable-latency knife edge
        # (the exact-boundary behaviour is covered deterministically below).
        deadline = fastest * (1.0 + slack) + 1e-6
        expected = brute_force_min_cost(n, deadline, latency)
        plan = solve_min_cost(n, deadline, latency)
        assert plan.questions_used == expected
        assert plan.total_latency <= deadline * (1 + 1e-12)


class TestBehaviour:
    def test_tight_deadline_uses_optimal_latency_plan(self):
        fastest = solve_min_latency(500, 124750, MTURK)
        plan = solve_min_cost(500, fastest.total_latency, MTURK)
        assert plan.total_latency == pytest.approx(fastest.total_latency)
        assert plan.questions_used == fastest.questions_used

    def test_loose_deadline_approaches_knockout_cost(self):
        """With an enormous deadline the cheapest plan spends the Theorem 1
        minimum of c0 - 1 questions."""
        plan = solve_min_cost(64, 1e9, MTURK)
        assert plan.questions_used == 63

    def test_cost_monotone_in_deadline(self):
        deadlines = (700, 1000, 2000, 10_000)
        costs = [
            solve_min_cost(500, deadline, MTURK).questions_used
            for deadline in deadlines
        ]
        assert costs == sorted(costs, reverse=True)

    def test_impossible_deadline_reports_fastest(self):
        with pytest.raises(InvalidParameterError) as excinfo:
            solve_min_cost(500, 10.0, MTURK)
        assert "fastest achievable" in str(excinfo.value)

    def test_budget_cap_respected(self):
        plan = solve_min_cost(64, 1e9, MTURK, budget=100)
        assert plan.questions_used <= 100

    def test_single_element(self):
        plan = solve_min_cost(1, 0.0, MTURK)
        assert plan.sequence == (1,)
        assert plan.questions_used == 0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            solve_min_cost(0, 100, MTURK)
        with pytest.raises(InvalidParameterError):
            solve_min_cost(5, -1, MTURK)
        with pytest.raises(InvalidParameterError):
            solve_min_cost(10, 1000, MTURK, budget=5)

    def test_convex_latency(self, quadratic_latency):
        fastest = solve_min_latency(100, 4950, quadratic_latency)
        plan = solve_min_cost(
            100, fastest.total_latency * 1.5, quadratic_latency
        )
        assert plan.total_latency <= fastest.total_latency * 1.5
        assert plan.questions_used <= fastest.questions_used
