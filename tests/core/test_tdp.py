"""Tests for the tDP optimal budget allocator (Algorithm 1 / Problem 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.brute_force import brute_force_min_latency
from repro.core.latency import LinearLatency, PowerLawLatency
from repro.core.questions import tournament_questions
from repro.core.tdp import TDPAllocator, solve_min_latency
from repro.errors import InvalidParameterError


class TestPaperAllocations:
    def test_beats_fig4_example(self, fig4_latency):
        """The optimum for (c0=40, b=108, L=100+q) is at most the paper's
        (40, 8, 1) example, which costs 308 s."""
        plan = solve_min_latency(40, 108, fig4_latency)
        assert plan.total_latency <= 308
        assert plan.questions_used <= 108

    def test_paper_250_elements_allocation(self, mturk_latency):
        """Section 6.4: for 250 elements and b = 4000, tDP generates the
        allocation (884, 465)."""
        allocation = TDPAllocator().allocate(250, 4000, mturk_latency)
        assert allocation.round_budgets == (884, 465)
        assert allocation.element_sequence == (250, 31, 1)

    def test_paper_500_elements_budget_capping(self, mturk_latency):
        """Section 6.5: past 4000 questions tDP keeps producing
        (2250, 1225) and uses only 3475 questions of any larger budget."""
        for budget in (4000, 8000, 16000, 32000, 124750):
            plan = solve_min_latency(500, budget, mturk_latency)
            assert plan.sequence == (500, 50, 1)
            assert plan.questions_used == 3475

    def test_single_element(self, mturk_latency):
        plan = solve_min_latency(1, 0, mturk_latency)
        assert plan.sequence == (1,)
        assert plan.total_latency == 0
        assert plan.questions_used == 0

    def test_two_elements(self, mturk_latency):
        plan = solve_min_latency(2, 1, mturk_latency)
        assert plan.sequence == (2, 1)
        assert plan.questions_used == 1


class TestOptimality:
    @given(
        n_elements=st.integers(2, 12),
        data=st.data(),
        delta=st.floats(0, 500),
        alpha=st.floats(0.001, 3),
        p=st.floats(0.5, 2.5),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, n_elements, data, delta, alpha, p):
        budget = data.draw(
            st.integers(n_elements - 1, n_elements * (n_elements - 1) // 2 + 5)
        )
        latency = PowerLawLatency(delta, alpha, p)
        expected = brute_force_min_latency(n_elements, budget, latency)
        plan = solve_min_latency(n_elements, budget, latency)
        assert plan.total_latency == pytest.approx(
            expected.total_latency, rel=1e-12, abs=1e-9
        )

    @given(n_elements=st.integers(2, 40), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_sequence_is_feasible_and_consistent(self, n_elements, data):
        budget = data.draw(st.integers(n_elements - 1, 4 * n_elements))
        latency = LinearLatency(100, 0.5)
        plan = solve_min_latency(n_elements, budget, latency)
        assert plan.sequence[0] == n_elements
        assert plan.sequence[-1] == 1
        assert all(b > a for a, b in zip(plan.sequence[1:], plan.sequence))
        questions = [
            tournament_questions(c_prev, c_next)
            for c_prev, c_next in zip(plan.sequence, plan.sequence[1:])
        ]
        assert sum(questions) == plan.questions_used
        assert plan.questions_used <= budget
        assert plan.total_latency == pytest.approx(
            sum(latency(q) for q in questions)
        )

    @given(n_elements=st.integers(2, 25), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_latency_non_increasing_in_budget(self, n_elements, data):
        budget = data.draw(st.integers(n_elements - 1, 3 * n_elements))
        latency = LinearLatency(50, 1.0)
        lower = solve_min_latency(n_elements, budget, latency)
        higher = solve_min_latency(n_elements, budget + 1, latency)
        assert higher.total_latency <= lower.total_latency + 1e-9


class TestBudgetLimiting:
    def test_convex_latency_caps_budget_early(self, quadratic_latency):
        """Figure 14(b): under p = 2 tDP uses far fewer questions than
        available."""
        plan = solve_min_latency(500, 32000, quadratic_latency)
        assert plan.questions_used < 4000

    def test_stronger_convexity_caps_earlier(self):
        mild = PowerLawLatency(239, 0.06, 1.2)
        strong = PowerLawLatency(239, 0.06, 1.8)
        budget = 16000
        used_mild = solve_min_latency(500, budget, mild).questions_used
        used_strong = solve_min_latency(500, budget, strong).questions_used
        assert used_strong <= used_mild

    def test_zero_overhead_prefers_many_cheap_rounds(self):
        """With delta = 0 rounds are free, so the knockout (one question at
        a time is allowed but pairing is just as cheap) minimum of c0 - 1
        questions is optimal."""
        plan = solve_min_latency(16, 200, LinearLatency(0, 1.0))
        assert plan.questions_used == 15
        assert plan.total_latency == pytest.approx(15.0)

    def test_huge_overhead_prefers_single_round(self):
        plan = solve_min_latency(16, 120, LinearLatency(10_000, 0.001))
        assert plan.sequence == (16, 1)


class TestValidation:
    def test_infeasible_budget(self, mturk_latency):
        with pytest.raises(InvalidParameterError):
            solve_min_latency(10, 8, mturk_latency)

    def test_invalid_element_count(self, mturk_latency):
        with pytest.raises(InvalidParameterError):
            solve_min_latency(0, 10, mturk_latency)

    def test_allocator_name(self, mturk_latency):
        allocation = TDPAllocator().allocate(10, 20, mturk_latency)
        assert allocation.allocator_name == "tDP"


class TestPaperScale:
    def test_largest_paper_workload_is_practical(self, mturk_latency):
        """The solver handles the paper's biggest Figure 15 cell (c0=2000,
        b=32000) quickly and returns a structurally sound plan."""
        import time

        start = time.perf_counter()
        plan = solve_min_latency(2000, 32000, mturk_latency)
        elapsed = time.perf_counter() - start
        assert elapsed < 30.0  # generous bound; typically ~1-2 s
        assert plan.sequence[0] == 2000
        assert plan.sequence[-1] == 1
        assert plan.questions_used <= 32000
        # A frontier-based solver cannot be budget-sensitive: the same plan
        # must come back for any larger budget too.
        again = solve_min_latency(2000, 64000, mturk_latency)
        assert again.total_latency <= plan.total_latency + 1e-9


class TestDiagnostics:
    def test_frontier_sizes_reported(self, mturk_latency):
        plan = solve_min_latency(50, 400, mturk_latency)
        assert len(plan.frontier_sizes) == 50
        assert plan.frontier_sizes[0] == 1  # P(1) is the single base point
        assert all(size >= 1 for size in plan.frontier_sizes)

    def test_frontiers_stay_small_for_linear_latency(self, mturk_latency):
        """For linear L the frontier of c has at most ~log2(c) + 1 points
        (one per useful round count)."""
        plan = solve_min_latency(200, 4000, mturk_latency)
        assert max(plan.frontier_sizes) <= 12

    def test_rounds_property(self, mturk_latency):
        plan = solve_min_latency(500, 4000, mturk_latency)
        assert plan.rounds == len(plan.sequence) - 1 == 2
