"""Tests for the HE / HF / uHE / uHF heuristics (Section 5.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heuristics import (
    HeavyEnd,
    HeavyFront,
    UniformHeavyEnd,
    UniformHeavyFront,
    _uniform_split,
)
from repro.core.latency import LinearLatency
from repro.core.questions import tournament_questions
from repro.errors import InfeasibleBudgetError

LATENCY = LinearLatency(239, 0.06)


class TestPaperExamples:
    """Figure 10: 24 elements, budget of 51 questions."""

    def test_heavy_end(self):
        allocation = HeavyEnd().allocate(24, 51, LATENCY)
        assert allocation.round_budgets == (12, 6, 33)

    def test_heavy_front(self):
        allocation = HeavyFront().allocate(24, 51, LATENCY)
        assert allocation.round_budgets == (44, 4, 2, 1)

    def test_uniform_heavy_end(self):
        allocation = UniformHeavyEnd().allocate(24, 51, LATENCY)
        assert allocation.round_budgets == (17, 17, 17)

    def test_uniform_heavy_front(self):
        allocation = UniformHeavyFront().allocate(24, 51, LATENCY)
        assert allocation.round_budgets == (13, 13, 13, 12)


class TestUniformSplit:
    def test_remainder_goes_to_front(self):
        assert _uniform_split(51, 4) == (13, 13, 13, 12)

    def test_even_split(self):
        assert _uniform_split(51, 3) == (17, 17, 17)

    @given(st.integers(1, 10_000), st.integers(1, 50))
    def test_split_conserves_budget(self, budget, rounds):
        split = _uniform_split(budget, rounds)
        assert sum(split) == budget
        assert max(split) - min(split) <= 1


ALL_HEURISTICS = [HeavyEnd, HeavyFront, UniformHeavyEnd, UniformHeavyFront]


@pytest.mark.parametrize("heuristic_cls", ALL_HEURISTICS)
class TestCommonProperties:
    @given(n_elements=st.integers(2, 120), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_budget_never_exceeded(self, heuristic_cls, n_elements, data):
        budget = data.draw(
            st.integers(n_elements - 1, n_elements * (n_elements - 1) // 2)
        )
        allocation = heuristic_cls().allocate(n_elements, budget, LATENCY)
        assert allocation.total_questions <= budget
        assert all(b >= 0 for b in allocation.round_budgets)

    def test_minimum_budget_is_feasible(self, heuristic_cls):
        """Theorem 1 boundary: b = c0 - 1 must be accepted by every
        heuristic (knockout halving fits exactly)."""
        for n_elements in range(2, 40):
            allocation = heuristic_cls().allocate(
                n_elements, n_elements - 1, LATENCY
            )
            assert allocation.total_questions <= n_elements - 1

    def test_infeasible_budget_rejected(self, heuristic_cls):
        with pytest.raises(InfeasibleBudgetError):
            heuristic_cls().allocate(24, 22, LATENCY)

    def test_allocator_name_recorded(self, heuristic_cls):
        allocation = heuristic_cls().allocate(24, 51, LATENCY)
        assert allocation.allocator_name == heuristic_cls.name


class TestHeavyEndStructure:
    def test_halving_prefix(self):
        """Every round before the last halves the candidates with one
        question per element."""
        allocation = HeavyEnd().allocate(100, 300, LATENCY)
        candidates = 100
        for budget in allocation.round_budgets[:-1]:
            assert budget == candidates // 2
            candidates = (candidates + 1) // 2

    def test_last_round_takes_all_remaining_budget(self):
        allocation = HeavyEnd().allocate(100, 300, LATENCY)
        assert allocation.total_questions == 300

    def test_single_round_when_budget_is_lavish(self):
        allocation = HeavyEnd().allocate(10, 45, LATENCY)
        assert allocation.round_budgets == (45,)

    def test_uses_whole_budget_always(self):
        for budget in (99, 150, 1000, 4950):
            allocation = HeavyEnd().allocate(100, budget, LATENCY)
            assert allocation.total_questions == budget


class TestHeavyFrontStructure:
    def test_halving_suffix(self):
        """After the heavy first round the budgets are a pure halving tail:
        m/2, m/4, ..., 1 for a power-of-two entry point m."""
        allocation = HeavyFront().allocate(100, 300, LATENCY)
        tail = allocation.round_budgets[1:]
        assert list(tail) == sorted(tail, reverse=True)
        assert tail[-1] == 1
        for bigger, smaller in zip(tail, tail[1:]):
            assert bigger == 2 * smaller

    def test_first_round_jump_is_affordable(self):
        allocation = HeavyFront().allocate(100, 300, LATENCY)
        tail_entry = 2 * allocation.round_budgets[1]
        assert tournament_questions(100, tail_entry) <= allocation.round_budgets[0]

    def test_uses_whole_budget_always(self):
        for budget in (99, 150, 1000, 4950):
            allocation = HeavyFront().allocate(100, budget, LATENCY)
            assert allocation.total_questions == budget

    def test_tight_budget_degenerates_to_halving(self):
        allocation = HeavyFront().allocate(64, 63, LATENCY)
        assert allocation.round_budgets == (32, 16, 8, 4, 2, 1)


class TestUniformVariants:
    def test_uhe_round_count_matches_he(self):
        for budget in (51, 120, 276):
            he_rounds = HeavyEnd().allocate(24, budget, LATENCY).rounds
            uhe = UniformHeavyEnd().allocate(24, budget, LATENCY)
            assert uhe.rounds == he_rounds
            assert uhe.total_questions == budget

    def test_uhf_round_count_matches_hf(self):
        for budget in (51, 120, 276):
            hf_rounds = HeavyFront().allocate(24, budget, LATENCY).rounds
            uhf = UniformHeavyFront().allocate(24, budget, LATENCY)
            assert uhf.rounds == hf_rounds
            assert uhf.total_questions == budget

    def test_heuristics_ignore_latency_function(self):
        """Section 6: only tDP consults L(q); heuristic output must be
        identical under wildly different latency models."""
        steep = LinearLatency(10_000, 50)
        for heuristic_cls in ALL_HEURISTICS:
            flat_alloc = heuristic_cls().allocate(60, 400, LATENCY)
            steep_alloc = heuristic_cls().allocate(60, 400, steep)
            assert flat_alloc.round_budgets == steep_alloc.round_budgets
