"""Tests for the bounded-rounds MinLatency solver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.brute_force import iter_sequences
from repro.core.latency import LinearLatency
from repro.core.questions import tournament_questions
from repro.core.tdp import (
    solve_min_latency,
    solve_min_latency_bounded_rounds,
)
from repro.errors import InvalidParameterError

MTURK = LinearLatency(239, 0.06)


def brute_force_bounded(n, budget, latency, max_rounds):
    best = None
    for sequence in iter_sequences(n):
        if len(sequence) - 1 > max_rounds:
            continue
        questions = [
            tournament_questions(a, b)
            for a, b in zip(sequence, sequence[1:])
        ]
        if sum(questions) > budget:
            continue
        total = sum(latency(q) for q in questions)
        if best is None or total < best:
            best = total
    return best


class TestAgainstBruteForce:
    @given(
        n=st.integers(2, 10),
        data=st.data(),
        delta=st.floats(0, 400),
        alpha=st.floats(0.01, 2),
        max_rounds=st.integers(1, 5),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_exhaustive(self, n, data, delta, alpha, max_rounds):
        budget = data.draw(
            st.integers(n - 1, n * (n - 1) // 2 + 3)
        )
        latency = LinearLatency(delta, alpha)
        expected = brute_force_bounded(n, budget, latency, max_rounds)
        if expected is None:
            with pytest.raises(InvalidParameterError):
                solve_min_latency_bounded_rounds(n, budget, latency, max_rounds)
        else:
            plan = solve_min_latency_bounded_rounds(
                n, budget, latency, max_rounds
            )
            assert plan.total_latency == pytest.approx(expected)
            assert plan.rounds <= max_rounds
            assert plan.questions_used <= budget


class TestBehaviour:
    def test_generous_cap_matches_unbounded(self):
        unbounded = solve_min_latency(500, 4000, MTURK)
        bounded = solve_min_latency_bounded_rounds(500, 4000, MTURK, 10)
        assert bounded.total_latency == pytest.approx(unbounded.total_latency)
        assert bounded.sequence == unbounded.sequence

    def test_single_round_cap_forces_complete_tournament(self):
        plan = solve_min_latency_bounded_rounds(40, 1000, MTURK, 1)
        assert plan.sequence == (40, 1)
        assert plan.questions_used == 780

    def test_single_round_cap_infeasible_on_tight_budget(self):
        with pytest.raises(InvalidParameterError):
            solve_min_latency_bounded_rounds(40, 500, MTURK, 1)

    def test_tighter_cap_never_faster(self):
        values = [
            solve_min_latency_bounded_rounds(200, 1500, MTURK, r).total_latency
            for r in (2, 3, 5, 8)
        ]
        assert values == sorted(values, reverse=True)

    def test_constant_latency_minimizes_rounds(self):
        """With L(q) = delta the objective is delta * rounds: the solver
        must find the minimum feasible round count (the rounds-as-latency
        model of related work [23])."""
        constant = LinearLatency(100, 0.0)
        # Budget 127 for 128 elements forces halving: 7 rounds minimum.
        plan = solve_min_latency_bounded_rounds(128, 127, constant, 10)
        assert plan.rounds == 7
        assert plan.total_latency == pytest.approx(700.0)
        # A lavish budget allows the single round.
        plan = solve_min_latency_bounded_rounds(128, 10_000, constant, 10)
        assert plan.rounds == 1

    def test_single_element(self):
        plan = solve_min_latency_bounded_rounds(1, 0, MTURK, 3)
        assert plan.sequence == (1,)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            solve_min_latency_bounded_rounds(0, 10, MTURK, 2)
        with pytest.raises(InvalidParameterError):
            solve_min_latency_bounded_rounds(10, 5, MTURK, 2)
        with pytest.raises(InvalidParameterError):
            solve_min_latency_bounded_rounds(10, 20, MTURK, 0)
