"""White-box tests of the Pareto-frontier machinery inside the tDP solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.latency import LinearLatency, PowerLawLatency
from repro.core.questions import tournament_questions
from repro.core.tdp import (
    _FrontierTable,
    _build_frontiers,
    _transition_questions,
)


class TestTransitionQuestions:
    @given(st.integers(2, 300))
    @settings(max_examples=50, deadline=None)
    def test_matches_scalar_q(self, c):
        vector = _transition_questions(c)
        assert len(vector) == c - 1
        for target in range(1, c):
            assert vector[target - 1] == tournament_questions(c, target)


class TestFrontierTable:
    def test_grow_preserves_contents(self):
        table = _FrontierTable(5, width=2)
        table.set_row(
            1,
            cost=np.zeros(1, np.int64),
            lat=np.zeros(1),
            parent_c=np.zeros(1, np.int32),
            parent_i=np.zeros(1, np.int32),
        )
        table.grow(8)
        assert table.width == 8
        assert table.size[1] == 1
        assert table.cost[1, 0] == 0
        assert table.lat[1, 1] == np.inf  # padding intact

    def test_set_row_wider_than_table_grows(self):
        table = _FrontierTable(4, width=2)
        table.set_row(
            2,
            cost=np.array([1, 2, 3], dtype=np.int64),
            lat=np.array([3.0, 2.0, 1.0]),
            parent_c=np.ones(3, np.int32),
            parent_i=np.zeros(3, np.int32),
        )
        assert table.width >= 3
        assert table.size[2] == 3


class TestFrontierInvariants:
    @given(
        n=st.integers(2, 60),
        data=st.data(),
        delta=st.floats(0, 300),
        alpha=st.floats(0.0, 2.0),
        p=st.floats(0.5, 2.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_frontiers_are_strict_pareto_sets(self, n, data, delta, alpha, p):
        budget = data.draw(st.integers(n - 1, n * (n - 1) // 2))
        latency = PowerLawLatency(delta, max(alpha, 1e-9), p)
        table = _build_frontiers(n, budget, latency)
        for c in range(1, n + 1):
            count = int(table.size[c])
            assert count >= 1
            costs = table.cost[c, :count]
            lats = table.lat[c, :count]
            # Cost strictly ascending, latency strictly descending.
            assert all(b > a for a, b in zip(costs, costs[1:]))
            assert all(b < a for a, b in zip(lats, lats[1:]))
            # Every point respects the global budget.
            assert costs[-1] <= budget
            # Theorem 1 lower bound per candidate count.
            assert costs[0] >= c - 1

    def test_parents_reference_valid_points(self):
        latency = LinearLatency(239, 0.06)
        table = _build_frontiers(50, 400, latency)
        for c in range(2, 51):
            for i in range(int(table.size[c])):
                parent_c = int(table.parent_c[c, i])
                parent_i = int(table.parent_i[c, i])
                assert 1 <= parent_c < c
                assert 0 <= parent_i < int(table.size[parent_c])
                step = tournament_questions(c, parent_c)
                assert (
                    table.cost[c, i]
                    == step + table.cost[parent_c, parent_i]
                )
                assert table.lat[c, i] == pytest.approx(
                    latency(step) + table.lat[parent_c, parent_i]
                )
