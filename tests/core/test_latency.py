"""Tests for the latency-function models (Definition 3, Sections 6.1/6.6)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.latency import (
    LinearLatency,
    PiecewiseLinearLatency,
    PowerLawLatency,
    TabulatedLatency,
    fit_linear_latency,
    mturk_car_latency,
)
from repro.errors import InvalidParameterError


class TestLinearLatency:
    def test_paper_example(self):
        # Section 2.1: L(q) = 60 + q gives L(Q(24, 5)) = L(46) = 106.
        latency = LinearLatency(60, 1)
        assert latency(46) == 106

    def test_mturk_constants(self):
        latency = mturk_car_latency()
        assert latency.delta == 239.0
        assert latency.alpha == 0.06
        assert latency(0) == 239.0

    def test_batch_matches_scalar(self):
        latency = LinearLatency(10, 0.5)
        qs = np.array([0, 1, 10, 100])
        assert np.allclose(latency.batch(qs), [latency(int(q)) for q in qs])

    def test_negative_batch_size_rejected(self):
        with pytest.raises(InvalidParameterError):
            LinearLatency(1, 1)(-1)
        with pytest.raises(InvalidParameterError):
            LinearLatency(1, 1).batch(np.array([3, -1]))

    def test_negative_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            LinearLatency(-1, 0)
        with pytest.raises(InvalidParameterError):
            LinearLatency(0, -0.5)

    def test_equality_and_hash(self):
        assert LinearLatency(1, 2) == LinearLatency(1, 2)
        assert LinearLatency(1, 2) != LinearLatency(1, 3)
        assert hash(LinearLatency(1, 2)) == hash(LinearLatency(1, 2))

    @given(st.floats(0, 1e3), st.floats(0, 10), st.integers(0, 10_000))
    def test_non_negative_and_increasing(self, delta, alpha, q):
        latency = LinearLatency(delta, alpha)
        assert latency(q) >= 0
        assert latency(q + 1) >= latency(q)


class TestPowerLawLatency:
    def test_reduces_to_linear_at_p1(self):
        power = PowerLawLatency(239, 0.06, 1.0)
        linear = LinearLatency(239, 0.06)
        for q in (0, 1, 17, 4000):
            assert power(q) == pytest.approx(linear(q))

    def test_superlinear_grows_faster(self):
        p2 = PowerLawLatency(0, 1, 2.0)
        assert p2(10) == 100

    def test_batch_matches_scalar(self):
        latency = PowerLawLatency(5, 0.1, 1.7)
        qs = np.array([0, 3, 50])
        assert np.allclose(latency.batch(qs), [latency(int(q)) for q in qs])

    def test_invalid_exponent(self):
        with pytest.raises(InvalidParameterError):
            PowerLawLatency(1, 1, 0)
        with pytest.raises(InvalidParameterError):
            PowerLawLatency(1, 1, -1)


class TestPiecewiseLinearLatency:
    def test_interpolates_between_knots(self):
        latency = PiecewiseLinearLatency([(0, 100.0), (10, 200.0)])
        assert latency(5) == 150.0

    def test_clamps_below_first_knot(self):
        latency = PiecewiseLinearLatency([(10, 100.0), (20, 200.0)])
        assert latency(0) == 100.0

    def test_extrapolates_last_segment(self):
        latency = PiecewiseLinearLatency([(0, 0.0), (10, 10.0), (20, 30.0)])
        assert latency(30) == pytest.approx(50.0)

    def test_rejects_decreasing_knots(self):
        with pytest.raises(InvalidParameterError):
            PiecewiseLinearLatency([(0, 100.0), (10, 50.0)])

    def test_rejects_duplicate_batch_sizes(self):
        with pytest.raises(InvalidParameterError):
            PiecewiseLinearLatency([(5, 1.0), (5, 2.0)])

    def test_rejects_single_knot(self):
        with pytest.raises(InvalidParameterError):
            PiecewiseLinearLatency([(0, 1.0)])

    def test_saturation_shape(self):
        """Model the Figure 11(a) shape: flat then steep after saturation."""
        latency = PiecewiseLinearLatency([(0, 240.0), (1000, 300.0), (2000, 3000.0)])
        flat_slope = (latency(1000) - latency(0)) / 1000
        steep_slope = (latency(2000) - latency(1000)) / 1000
        assert steep_slope > 10 * flat_slope


class TestTabulatedLatency:
    def test_isotonic_cleanup_of_noisy_samples(self):
        # The 40-question sample dips below the 20-question one; the table
        # must still be non-decreasing.
        latency = TabulatedLatency([(10, 250.0), (20, 280.0), (40, 260.0)])
        assert latency(40) >= latency(20) >= latency(10)

    def test_duplicate_sizes_collapse_to_running_max(self):
        latency = TabulatedLatency([(10, 250.0), (10, 300.0), (20, 310.0)])
        assert latency(10) == 300.0

    def test_monotone_everywhere(self):
        latency = TabulatedLatency([(1, 5.0), (4, 3.0), (9, 20.0), (16, 18.0)])
        values = [latency(q) for q in range(0, 30)]
        assert all(b >= a for a, b in zip(values, values[1:]))


class TestFitLinearLatency:
    def test_exact_fit_on_linear_data(self):
        truth = LinearLatency(239, 0.06)
        samples = [(q, truth(q)) for q in (10, 20, 40, 80, 160, 320)]
        fitted = fit_linear_latency(samples)
        assert fitted.delta == pytest.approx(239, abs=1e-9)
        assert fitted.alpha == pytest.approx(0.06, abs=1e-12)

    def test_negative_slope_clamped(self):
        fitted = fit_linear_latency([(0, 100.0), (10, 50.0)])
        assert fitted.alpha == 0.0

    def test_rejects_degenerate_input(self):
        with pytest.raises(InvalidParameterError):
            fit_linear_latency([(10, 5.0)])
        with pytest.raises(InvalidParameterError):
            fit_linear_latency([(10, 5.0), (10, 6.0)])

    @given(
        st.lists(
            st.tuples(st.integers(0, 2000), st.floats(0, 1e5)),
            min_size=2,
            max_size=30,
        )
    )
    def test_fit_never_produces_invalid_model(self, samples):
        sizes = {q for q, _ in samples}
        if len(sizes) < 2:
            return  # degenerate by construction; rejected separately
        fitted = fit_linear_latency(samples)
        assert fitted.delta >= 0
        assert fitted.alpha >= 0


class TestReprRendersFullParameterization:
    """Regression: the repr keys the service plan cache and the journal
    header, so every model must render ALL of its constructor parameters —
    two differently-parameterized instances must never share a repr."""

    CASES = [
        (
            LinearLatency(delta=239.0, alpha=0.06),
            LinearLatency(delta=239.0, alpha=0.07),
        ),
        (
            PowerLawLatency(delta=10.0, alpha=2.0, p=0.5),
            PowerLawLatency(delta=10.0, alpha=2.0, p=0.6),
        ),
        (
            PiecewiseLinearLatency([(1, 10.0), (5, 20.0)]),
            PiecewiseLinearLatency([(1, 10.0), (5, 21.0)]),
        ),
        (
            TabulatedLatency([(1, 10.0), (5, 20.0)]),
            TabulatedLatency([(1, 10.0), (5, 21.0)]),
        ),
    ]

    @pytest.mark.parametrize(
        "model, tweaked", CASES, ids=[type(m).__name__ for m, _ in CASES]
    )
    def test_distinct_parameters_give_distinct_reprs(self, model, tweaked):
        assert repr(model) != repr(tweaked)
        assert type(model).__name__ in repr(model)

    def test_every_concrete_model_has_a_parameterized_repr(self):
        """Each model's repr must differ from the inherited object repr
        and round-trip through eval to an equal-behaving function."""
        models = [
            LinearLatency(delta=239.0, alpha=0.06),
            PowerLawLatency(delta=10.0, alpha=2.0, p=0.5),
            PiecewiseLinearLatency([(1, 10.0), (5, 20.0)]),
            TabulatedLatency([(1, 10.0), (5, 20.0)]),
        ]
        namespace = {
            cls.__name__: cls
            for cls in (
                LinearLatency,
                PowerLawLatency,
                PiecewiseLinearLatency,
                TabulatedLatency,
            )
        }
        for model in models:
            rendered = repr(model)
            assert "object at 0x" not in rendered
            rebuilt = eval(rendered, namespace)  # noqa: S307 - own reprs
            for q in (1, 3, 5):
                assert rebuilt(q) == model(q)
