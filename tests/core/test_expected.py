"""Tests for the eDP expected-case allocator extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expected import (
    ExpectedCaseAllocator,
    _expected_costs,
    expected_survivors,
    expected_transition_cost,
    solve_expected_min_latency,
)
from repro.core.latency import LinearLatency
from repro.core.questions import max_useful_budget, tournament_questions
from repro.core.tdp import solve_min_latency
from repro.errors import InvalidParameterError
from repro.graphs.candidates import expected_remaining_candidates

LATENCY = LinearLatency(239, 0.06)


class TestExpectedSurvivors:
    def test_matches_lemma4_on_regular_graphs(self):
        """For a cycle (2-regular) the closed form must equal the Lemma 4
        sum over the actual graph."""
        n = 12
        edges = [(i, (i + 1) % n) for i in range(n)]
        assert expected_survivors(n, len(edges)) == pytest.approx(
            expected_remaining_candidates(range(n), edges)
        )

    def test_zero_questions(self):
        assert expected_survivors(10, 0) == 10

    def test_complete_graph_keeps_one(self):
        assert expected_survivors(10, 45) == pytest.approx(1.0)

    @given(st.integers(2, 60), st.data())
    @settings(max_examples=40, deadline=None)
    def test_decreasing_in_questions(self, n, data):
        q = data.draw(st.integers(0, max_useful_budget(n) - 1))
        assert expected_survivors(n, q + 1) <= expected_survivors(n, q)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            expected_survivors(0, 1)
        with pytest.raises(InvalidParameterError):
            expected_survivors(3, -1)
        with pytest.raises(InvalidParameterError):
            expected_survivors(3, 4)


class TestTransitionCost:
    def test_cheaper_than_worst_case(self):
        """The expected-case cost never exceeds the worst-case tournament
        cost Q(c, c')."""
        for c in (5, 10, 50, 100):
            for target in (1, 2, c // 2, c - 1):
                if target < 1 or target >= c:
                    continue
                assert expected_transition_cost(c, target) <= (
                    tournament_questions(c, target)
                )

    def test_cost_reaches_the_target(self):
        for c in (7, 24, 60):
            for target in range(1, c):
                q = expected_transition_cost(c, target)
                assert int(expected_survivors(c, q) + 0.5) <= target
                if q > 1:
                    assert int(expected_survivors(c, q - 1) + 0.5) > target

    @given(st.integers(2, 80))
    @settings(max_examples=30, deadline=None)
    def test_vectorized_costs_match_scalar(self, c):
        vector = _expected_costs(c)
        assert len(vector) == c - 1
        for target in range(1, c):
            assert vector[target - 1] == expected_transition_cost(c, target)

    def test_invalid_target(self):
        with pytest.raises(InvalidParameterError):
            expected_transition_cost(5, 0)
        with pytest.raises(InvalidParameterError):
            expected_transition_cost(5, 5)


class TestSolver:
    def test_never_slower_than_tdp_plan(self):
        """eDP's *planned* latency lower-bounds tDP's: every expected-case
        transition is at most as expensive as the worst-case one."""
        for budget in (600, 1000, 4000):
            expected_plan = solve_expected_min_latency(500, budget, LATENCY)
            worst_plan = solve_min_latency(500, budget, LATENCY)
            assert expected_plan.total_latency <= worst_plan.total_latency + 1e-9

    def test_paper_workload_plan(self):
        plan = solve_expected_min_latency(500, 4000, LATENCY)
        assert plan.sequence[0] == 500
        assert plan.sequence[-1] == 1
        assert plan.questions_used <= 4000

    def test_infeasible_budget(self):
        with pytest.raises(InvalidParameterError):
            solve_expected_min_latency(10, 8, LATENCY)


class TestAllocator:
    def test_allocation_structure(self):
        allocation = ExpectedCaseAllocator().allocate(100, 700, LATENCY)
        assert allocation.allocator_name == "eDP"
        assert allocation.total_questions <= 700
        assert allocation.element_sequence is None  # counts are not promises

    def test_runs_end_to_end(self):
        """eDP plans execute; termination is not guaranteed, correctness of
        the run machinery is."""
        from repro.engine.simulation import aggregate
        from repro.selection.tournament import TournamentFormation

        stats = aggregate(
            60,
            400,
            ExpectedCaseAllocator(),
            TournamentFormation(),
            LATENCY,
            n_runs=10,
            seed=3,
        )
        assert stats.mean_latency > 0
        assert 0.0 <= stats.singleton_rate <= 1.0

    def test_registered(self):
        from repro.core.registry import allocator_by_name

        assert allocator_by_name("eDP").name == "eDP"
