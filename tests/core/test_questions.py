"""Tests for the tournament question-count function Q (Definitions 1-2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.questions import (
    fewest_tournaments_within,
    halving_questions,
    halving_survivors,
    max_useful_budget,
    min_feasible_budget,
    tournament_questions,
    tournament_sizes,
)
from repro.errors import InvalidParameterError


class TestTournamentSizes:
    def test_paper_example_g20_5(self):
        assert tournament_sizes(20, 5) == [4, 4, 4, 4, 4]

    def test_paper_example_g24_5(self):
        # Figure 3: four 5-element tournaments and one 4-element tournament.
        assert tournament_sizes(24, 5) == [5, 5, 5, 5, 4]

    def test_single_tournament(self):
        assert tournament_sizes(7, 1) == [7]

    def test_all_singletons(self):
        assert tournament_sizes(4, 4) == [1, 1, 1, 1]

    def test_sizes_sum_to_element_count(self):
        for c_prev in range(1, 40):
            for c_next in range(1, c_prev + 1):
                assert sum(tournament_sizes(c_prev, c_next)) == c_prev

    def test_sizes_differ_by_at_most_one(self):
        for c_prev in range(1, 40):
            for c_next in range(1, c_prev + 1):
                sizes = tournament_sizes(c_prev, c_next)
                assert max(sizes) - min(sizes) <= 1

    def test_rejects_more_tournaments_than_elements(self):
        with pytest.raises(InvalidParameterError):
            tournament_sizes(3, 4)

    def test_rejects_zero_tournaments(self):
        with pytest.raises(InvalidParameterError):
            tournament_sizes(3, 0)


class TestTournamentQuestions:
    def test_paper_example_g20_5(self):
        assert tournament_questions(20, 5) == 30

    def test_paper_example_g24_5(self):
        assert tournament_questions(24, 5) == 46

    def test_fig5_transition(self):
        # Figure 5: reaching 25 elements from 100 costs Q(100, 25) = 150.
        assert tournament_questions(100, 25) == 150

    def test_pairing_round(self):
        assert tournament_questions(24, 12) == 12

    def test_complete_tournament(self):
        assert tournament_questions(5, 1) == 10

    def test_no_op_transition_costs_nothing(self):
        assert tournament_questions(9, 9) == 0

    def test_equals_clique_sum(self):
        for c_prev in range(1, 30):
            for c_next in range(1, c_prev + 1):
                expected = sum(
                    s * (s - 1) // 2 for s in tournament_sizes(c_prev, c_next)
                )
                assert tournament_questions(c_prev, c_next) == expected

    @given(st.integers(1, 200), st.data())
    def test_at_least_one_question_per_elimination(self, c_prev, data):
        c_next = data.draw(st.integers(1, c_prev))
        assert tournament_questions(c_prev, c_next) >= c_prev - c_next

    @given(st.integers(2, 150), st.data())
    def test_non_increasing_in_target_count(self, c_prev, data):
        c_next = data.draw(st.integers(1, c_prev - 1))
        assert tournament_questions(c_prev, c_next) >= tournament_questions(
            c_prev, c_next + 1
        )

    @given(st.integers(1, 60), st.integers(1, 60))
    def test_multiple_case_matches_equation_one(self, c_next, multiplier):
        """When c_prev is a multiple of c_next, equation (1) applies."""
        c_prev = c_next * multiplier
        group = multiplier
        assert (
            tournament_questions(c_prev, c_next)
            == group * (group - 1) // 2 * c_next
        )


class TestBudgetBounds:
    def test_min_feasible_budget_theorem1(self):
        assert min_feasible_budget(1) == 0
        assert min_feasible_budget(2) == 1
        assert min_feasible_budget(500) == 499

    def test_max_useful_budget_is_complete_tournament(self):
        assert max_useful_budget(500) == 124750  # the paper's C(500, 2)

    def test_invalid_element_counts(self):
        with pytest.raises(InvalidParameterError):
            min_feasible_budget(0)
        with pytest.raises(InvalidParameterError):
            max_useful_budget(-1)


class TestFewestTournaments:
    def test_exact_fit(self):
        # Q(20, 5) = 30, so a budget of exactly 30 allows 5 tournaments.
        assert fewest_tournaments_within(20, 30) == 5

    def test_one_less_budget_needs_more_tournaments(self):
        assert fewest_tournaments_within(20, 29) == 6

    def test_huge_budget_gives_single_tournament(self):
        assert fewest_tournaments_within(20, 10_000) == 1

    def test_zero_budget_keeps_everyone(self):
        assert fewest_tournaments_within(20, 0) == 20

    def test_single_element(self):
        assert fewest_tournaments_within(1, 0) == 1

    @given(st.integers(1, 120), st.integers(0, 2000))
    def test_result_is_minimal_and_feasible(self, c_prev, budget):
        c_next = fewest_tournaments_within(c_prev, budget)
        assert tournament_questions(c_prev, c_next) <= budget
        if c_next > 1:
            assert tournament_questions(c_prev, c_next - 1) > budget

    def test_negative_budget_rejected(self):
        with pytest.raises(InvalidParameterError):
            fewest_tournaments_within(5, -1)


class TestHalving:
    def test_even_count(self):
        assert halving_questions(24) == 12
        assert halving_survivors(24) == 12

    def test_odd_count_gives_bye(self):
        assert halving_questions(7) == 3
        assert halving_survivors(7) == 4

    def test_consistent_with_q_function(self):
        for c in range(2, 50):
            survivors = halving_survivors(c)
            assert tournament_questions(c, survivors) == halving_questions(c)

    def test_single_element(self):
        assert halving_questions(1) == 0
        assert halving_survivors(1) == 1
