"""Tests for the Allocation value type and the allocator interface."""

import pytest

from repro.core.allocation import Allocation, BudgetAllocator
from repro.core.latency import LinearLatency
from repro.errors import InfeasibleBudgetError, InvalidParameterError


class TestAllocation:
    def test_from_element_sequence_fig4(self):
        # Figure 4(b): (40, 8, 1) costs 80 + 28 = 108 questions.
        allocation = Allocation.from_element_sequence((40, 8, 1))
        assert allocation.round_budgets == (80, 28)
        assert allocation.total_questions == 108
        assert allocation.rounds == 2

    def test_predicted_latency_fig4(self):
        allocation = Allocation.from_element_sequence((40, 8, 1))
        assert allocation.predicted_latency(LinearLatency(100, 1)) == 308

    def test_fig4a_alternative_sequence(self):
        allocation = Allocation.from_element_sequence((40, 20, 5, 1))
        assert allocation.round_budgets == (20, 30, 10)
        assert allocation.predicted_latency(LinearLatency(100, 1)) == 360

    def test_plain_round_budgets(self):
        allocation = Allocation(round_budgets=(17, 17, 17))
        assert allocation.total_questions == 51
        assert allocation.element_sequence is None

    def test_degenerate_single_element(self):
        allocation = Allocation(round_budgets=(), element_sequence=(1,))
        assert allocation.rounds == 0
        assert allocation.predicted_latency(LinearLatency(100, 1)) == 0

    def test_rejects_negative_budget(self):
        with pytest.raises(InvalidParameterError):
            Allocation(round_budgets=(5, -1))

    def test_rejects_sequence_not_ending_at_one(self):
        with pytest.raises(InvalidParameterError):
            Allocation(round_budgets=(3,), element_sequence=(4, 2))

    def test_rejects_non_decreasing_sequence(self):
        with pytest.raises(InvalidParameterError):
            Allocation(round_budgets=(1, 1), element_sequence=(4, 4, 1))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(InvalidParameterError):
            Allocation(round_budgets=(3, 3), element_sequence=(4, 1))

    def test_check_within_budget(self):
        allocation = Allocation(round_budgets=(50, 50))
        allocation.check_within_budget(100)
        with pytest.raises(InvalidParameterError):
            allocation.check_within_budget(99)


class _NullAllocator(BudgetAllocator):
    name = "null"

    def _allocate(self, n_elements, budget, latency):
        return Allocation(round_budgets=(budget,), allocator_name=self.name)


class TestBudgetAllocatorInterface:
    def test_infeasible_budget_raises_theorem1(self):
        with pytest.raises(InfeasibleBudgetError) as excinfo:
            _NullAllocator().allocate(10, 8, LinearLatency(1, 1))
        assert excinfo.value.n_elements == 10
        assert excinfo.value.budget == 8

    def test_minimum_feasible_budget_accepted(self):
        allocation = _NullAllocator().allocate(10, 9, LinearLatency(1, 1))
        assert allocation.round_budgets == (9,)

    def test_single_element_needs_no_questions(self):
        allocation = _NullAllocator().allocate(1, 0, LinearLatency(1, 1))
        assert allocation.rounds == 0
        assert allocation.element_sequence == (1,)

    def test_zero_elements_rejected(self):
        with pytest.raises(InvalidParameterError):
            _NullAllocator().allocate(0, 5, LinearLatency(1, 1))
