"""Integration tests of the paper's theorems against the implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.latency import LinearLatency
from repro.core.tdp import TDPAllocator, solve_min_latency
from repro.crowd.ground_truth import GroundTruth
from repro.engine.max_engine import MaxEngine, OracleAnswerSource
from repro.errors import InfeasibleBudgetError
from repro.graphs.candidates import max_independent_set
from repro.selection.tournament import TournamentFormation

LATENCY = LinearLatency(50, 1.0)


class TestTheorem1:
    """MinLatency has a solution iff b >= c0 - 1."""

    @given(st.integers(2, 50))
    @settings(max_examples=20, deadline=None)
    def test_boundary_budget_solves(self, n):
        plan = solve_min_latency(n, n - 1, LATENCY)
        assert plan.questions_used == n - 1
        assert plan.sequence[-1] == 1

    @given(st.integers(2, 50))
    @settings(max_examples=20, deadline=None)
    def test_below_boundary_infeasible(self, n):
        with pytest.raises(Exception):
            solve_min_latency(n, n - 2, LATENCY)

    def test_boundary_budget_runs_to_singleton(self):
        """Executing the minimum-budget plan really does isolate the MAX."""
        allocator = TDPAllocator()
        for n in (2, 5, 16, 33):
            allocation = allocator.allocate(n, n - 1, LATENCY)
            rng = np.random.default_rng(n)
            truth = GroundTruth.random(n, rng)
            engine = MaxEngine(
                TournamentFormation(), OracleAnswerSource(truth, LATENCY), rng
            )
            result = engine.run(truth, allocation)
            assert result.singleton_termination
            assert result.winner == truth.max_element

    def test_allocator_raises_infeasible(self):
        with pytest.raises(InfeasibleBudgetError):
            TDPAllocator().allocate(10, 8, LATENCY)


class TestSingletonGuarantee:
    """tDP + Tournament formation always singleton-terminates in the
    error-free setting (Section 6.8 finding (1))."""

    @given(
        n=st.integers(2, 60),
        budget_factor=st.floats(1.0, 6.0),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_always_singleton_and_correct(self, n, budget_factor, seed):
        budget = max(n - 1, int(budget_factor * n))
        allocation = TDPAllocator().allocate(n, budget, LATENCY)
        rng = np.random.default_rng(seed)
        truth = GroundTruth.random(n, rng)
        engine = MaxEngine(
            TournamentFormation(), OracleAnswerSource(truth, LATENCY), rng
        )
        result = engine.run(truth, allocation)
        assert result.singleton_termination
        assert result.winner == truth.max_element
        assert result.total_questions <= budget


def random_graph_on(nodes, rng, density):
    edges = []
    nodes = list(nodes)
    for i, a in enumerate(nodes):
        for b in nodes[i + 1 :]:
            if rng.random() < density:
                edges.append((a, b))
    return edges


class TestTheorem4WorstCase:
    """tDP's optimum lower-bounds every strategy under worst-case answers.

    We simulate arbitrary round strategies: each round asks a random graph
    over the surviving candidates and the adversary answers so that the
    maxRC set survives (the Generalized Worst MinLatency dynamics).  The
    total latency of any such strategy that stays within budget must be at
    least OL(b, c0).
    """

    @given(
        n=st.integers(3, 12),
        seed=st.integers(0, 10_000),
        density=st.floats(0.2, 0.9),
    )
    @settings(max_examples=40, deadline=None)
    def test_no_strategy_beats_tdp_in_the_worst_case(self, n, seed, density):
        rng = np.random.default_rng(seed)
        budget = n * (n - 1) // 2
        total_latency = 0.0
        total_questions = 0
        candidates = list(range(n))
        for _ in range(n):  # at most n rounds needed
            if len(candidates) == 1:
                break
            edges = random_graph_on(candidates, rng, density)
            if not edges:
                continue  # an empty round costs nothing and changes nothing
            total_latency += LATENCY(len(edges))
            total_questions += len(edges)
            survivors = max_independent_set(candidates, edges)
            # Worst case: the maximum possible number of candidates remains.
            candidates = sorted(survivors)
        if len(candidates) > 1 or total_questions > budget:
            return  # strategy failed or overspent; no claim to check
        optimal = solve_min_latency(n, total_questions, LATENCY)
        assert optimal.total_latency <= total_latency + 1e-9


class TestWorstCaseExecutionMatchesPlan:
    """Under tournament selection the planned candidate counts ARE the worst
    case: execution follows the tDP sequence exactly."""

    def test_execution_follows_planned_sequence(self):
        allocation = TDPAllocator().allocate(64, 400, LATENCY)
        rng = np.random.default_rng(0)
        truth = GroundTruth.random(64, rng)
        engine = MaxEngine(
            TournamentFormation(), OracleAnswerSource(truth, LATENCY), rng
        )
        result = engine.run(truth, allocation)
        executed = [r.candidates_before for r in result.records] + [
            result.records[-1].candidates_after
        ]
        assert tuple(executed) == allocation.element_sequence
