"""Golden end-to-end regression tests.

Every case runs a fully seeded solve/simulate pipeline and compares the
outcome against ``golden/golden_runs.json``.  Any behavioural drift in
the solver, the engines, the platform simulation or the fault layer shows
up here as a diff against the committed snapshot.

To regenerate the snapshot after an *intentional* behaviour change::

    PYTHONPATH=src python tests/integration/test_golden_runs.py

then review the JSON diff like any other code change.
"""

import json
import pathlib

import numpy as np
import pytest

from repro.core.latency import LinearLatency
from repro.core.tdp import TDPAllocator, solve_min_latency
from repro.crowd.faults import RetryPolicy, fault_profile_by_name
from repro.engine.simulation import (
    AggregateStats,
    run_many,
    run_once,
    run_once_on_platform,
)
from repro.selection.tournament import TournamentFormation

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "golden_runs.json"

# The paper's fitted MTurk model (Section 6.1): L(q) = 529 + 251*q.
LATENCY = LinearLatency(delta=529.0, alpha=251.0)


def _run_summary(result):
    return {
        "winner": int(result.winner),
        "correct": bool(result.correct),
        "singleton": bool(result.singleton_termination),
        "rounds": int(result.rounds_run),
        "total_latency": round(float(result.total_latency), 6),
        "total_questions": int(result.total_questions),
    }


def compute_golden():
    """Execute every golden scenario and return its summary dict."""
    cases = {}

    plan = solve_min_latency(30, 60, LATENCY)
    cases["solver_c30_b60"] = {
        "sequence": list(plan.sequence),
        "total_latency": round(plan.total_latency, 6),
        "questions_used": plan.questions_used,
    }

    cases["oracle_tdp_tournament"] = _run_summary(
        run_once(
            20,
            40,
            TDPAllocator(),
            TournamentFormation(),
            LATENCY,
            np.random.default_rng(123),
        )
    )

    cases["platform_clean"] = _run_summary(
        run_once_on_platform(
            16,
            30,
            TDPAllocator(),
            TournamentFormation(),
            LATENCY,
            seed=7,
        )
    )

    cases["platform_lossy_faults_with_retry"] = _run_summary(
        run_once_on_platform(
            30,
            60,
            TDPAllocator(),
            TournamentFormation(),
            LATENCY,
            seed=7,
            fault_profile=fault_profile_by_name("lossy"),
            retry_policy=RetryPolicy(max_attempts=6),
        )
    )
    cases["platform_clean_c30"] = _run_summary(
        run_once_on_platform(
            30,
            60,
            TDPAllocator(),
            TournamentFormation(),
            LATENCY,
            seed=7,
        )
    )

    cases["adaptive_platform"] = _run_summary(
        run_once_on_platform(
            16,
            30,
            TDPAllocator(),
            TournamentFormation(),
            LATENCY,
            seed=7,
            adaptive=True,
        )
    )

    stats = AggregateStats.from_results(
        run_many(
            12,
            22,
            TDPAllocator(),
            TournamentFormation(),
            LATENCY,
            n_runs=5,
            seed=42,
        )
    )
    cases["aggregate_oracle_5_runs"] = {
        "n_runs": stats.n_runs,
        "mean_latency": round(stats.mean_latency, 6),
        "std_latency": round(stats.std_latency, 6),
        "singleton_rate": stats.singleton_rate,
        "accuracy": stats.accuracy,
        "mean_questions": stats.mean_questions,
        "mean_rounds": stats.mean_rounds,
    }

    return cases


@pytest.fixture(scope="module")
def golden():
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"missing golden snapshot {GOLDEN_PATH}; regenerate with "
            "`PYTHONPATH=src python tests/integration/test_golden_runs.py`"
        )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def current():
    return compute_golden()


def test_no_unknown_or_missing_cases(golden, current):
    assert sorted(golden) == sorted(current)


@pytest.mark.parametrize(
    "case",
    [
        "solver_c30_b60",
        "oracle_tdp_tournament",
        "platform_clean",
        "platform_clean_c30",
        "platform_lossy_faults_with_retry",
        "adaptive_platform",
        "aggregate_oracle_5_runs",
    ],
)
def test_golden_case(golden, current, case):
    assert current[case] == golden[case]


def test_lossy_faults_cost_latency_in_the_snapshot(golden):
    """The committed snapshot itself must witness the acceptance criterion."""
    clean = golden["platform_clean_c30"]
    faulty = golden["platform_lossy_faults_with_retry"]
    assert faulty["total_latency"] > clean["total_latency"]
    assert faulty["correct"] and clean["correct"]


if __name__ == "__main__":
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(compute_golden(), indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH}")
