"""Registry-wide fuzzing: every allocator x selector combination must
produce internally consistent runs.

These tests treat the whole pipeline as a black box and check only the
universal invariants (via :mod:`repro.engine.validation`) plus the
error-free guarantee: whenever a run singleton-terminates, the winner is
the true MAX.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.latency import LinearLatency, PowerLawLatency
from repro.core.registry import allocator_by_name, available_allocators
from repro.crowd.ground_truth import GroundTruth
from repro.engine.max_engine import MaxEngine, OracleAnswerSource
from repro.engine.validation import validate_run, validate_selection
from repro.graphs.answer_graph import AnswerGraph
from repro.selection.base import SelectionContext
from repro.selection.registry import available_selectors, selector_by_name


@pytest.mark.parametrize("allocator_name", available_allocators())
@pytest.mark.parametrize("selector_name", available_selectors())
def test_every_combination_runs_consistently(allocator_name, selector_name):
    n_elements, budget = 30, 200
    latency = LinearLatency(100, 0.5)
    allocator = allocator_by_name(allocator_name)
    allocation = allocator.allocate(n_elements, budget, latency)
    rng = np.random.default_rng(7)
    truth = GroundTruth.random(n_elements, rng)
    engine = MaxEngine(
        selector_by_name(selector_name),
        OracleAnswerSource(truth, latency),
        rng,
    )
    result = engine.run(truth, allocation)
    validate_run(result, n_elements, budget)
    if result.singleton_termination:
        assert result.winner == truth.max_element


@given(
    n_elements=st.integers(2, 50),
    budget_factor=st.floats(1.0, 8.0),
    seed=st.integers(0, 500),
    allocator_name=st.sampled_from(available_allocators()),
    selector_name=st.sampled_from(available_selectors()),
    delta=st.floats(0, 500),
    alpha=st.floats(0.0, 2.0),
    p=st.floats(0.5, 2.0),
)
@settings(max_examples=60, deadline=None)
def test_random_configurations(
    n_elements, budget_factor, seed, allocator_name, selector_name, delta,
    alpha, p,
):
    budget = max(n_elements - 1, int(budget_factor * n_elements))
    latency = PowerLawLatency(delta, alpha, p) if alpha > 0 else LinearLatency(
        delta, 0.0
    )
    allocation = allocator_by_name(allocator_name).allocate(
        n_elements, budget, latency
    )
    rng = np.random.default_rng(seed)
    truth = GroundTruth.random(n_elements, rng)
    engine = MaxEngine(
        selector_by_name(selector_name),
        OracleAnswerSource(truth, latency),
        rng,
    )
    result = engine.run(truth, allocation)
    validate_run(result, n_elements, budget)
    if result.singleton_termination:
        assert result.winner == truth.max_element
    assert 0 <= result.winner < n_elements


@given(
    n_elements=st.integers(2, 40),
    budget_factor=st.floats(1.0, 6.0),
    seed=st.integers(0, 300),
    allocator_name=st.sampled_from(available_allocators()),
)
@settings(max_examples=40, deadline=None)
def test_run_latency_bounded_by_predicted(
    n_elements, budget_factor, seed, allocator_name
):
    """In oracle mode with tournament selection, a run's measured latency
    never exceeds the allocation's predicted latency: rounds post at most
    their budget (monotone L) and early stopping only removes rounds."""
    budget = max(n_elements - 1, int(budget_factor * n_elements))
    latency = LinearLatency(120, 0.8)
    allocation = allocator_by_name(allocator_name).allocate(
        n_elements, budget, latency
    )
    rng = np.random.default_rng(seed)
    truth = GroundTruth.random(n_elements, rng)
    engine = MaxEngine(
        selector_by_name("Tournament"),
        OracleAnswerSource(truth, latency),
        rng,
    )
    result = engine.run(truth, allocation)
    assert result.total_latency <= allocation.predicted_latency(latency) + 1e-9


@given(
    n_elements=st.integers(2, 40),
    budget=st.integers(0, 200),
    seed=st.integers(0, 200),
    selector_name=st.sampled_from(available_selectors()),
)
@settings(max_examples=60, deadline=None)
def test_every_selector_honours_the_contract(
    n_elements, budget, seed, selector_name
):
    context = SelectionContext(
        budget=budget,
        candidates=tuple(range(n_elements)),
        evidence=AnswerGraph(range(n_elements)),
        round_index=0,
        total_rounds=2,
        rng=np.random.default_rng(seed),
    )
    questions = selector_by_name(selector_name).select(context)
    validate_selection(context, questions)
