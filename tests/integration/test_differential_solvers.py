"""Differential tests: tDP vs the memoized DP vs exhaustive search.

Three independent implementations of MinLatency exist in the repo:

* :func:`repro.core.tdp.solve_min_latency` — the paper's Pareto-frontier
  DP (Algorithm 1 as published);
* :func:`repro.core.tdp_memo.solve_min_latency_memo` — a state-memoized
  reformulation;
* :func:`repro.analysis.brute_force.brute_force_min_latency` — exhaustive
  enumeration of every tournament sequence.

They share no code beyond the latency functions, so agreement across
randomized instances is strong evidence of correctness.  Brute force is
exponential in ``c_0``, which caps the instance size at ``c_0 <= 12`` —
exactly the regime the paper uses for its own optimality checks.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.brute_force import brute_force_min_latency
from repro.core.latency import LinearLatency, PowerLawLatency
from repro.core.questions import tournament_questions
from repro.core.tdp import solve_min_latency
from repro.core.tdp_memo import solve_min_latency_memo

pytestmark = pytest.mark.slow


# Concave (p < 1) and affine (p == 1) latency models — the regime where
# Theorem 2's optimality argument applies.
latency_functions = st.one_of(
    st.builds(
        LinearLatency,
        delta=st.floats(0.0, 500.0, allow_nan=False),
        alpha=st.floats(0.1, 60.0, allow_nan=False),
    ),
    st.builds(
        PowerLawLatency,
        delta=st.floats(0.0, 500.0, allow_nan=False),
        alpha=st.floats(0.1, 60.0, allow_nan=False),
        p=st.sampled_from([0.5, 0.75, 1.0]),
    ),
)

instances = st.tuples(
    st.integers(2, 12),  # c0: brute force is exponential beyond this
    st.integers(0, 8),  # extra budget beyond the Theorem 1 minimum
    latency_functions,
)


def _validate_sequence(plan, n_elements, budget):
    """Structural checks every solver's output must satisfy."""
    sequence = plan.sequence
    assert sequence[0] == n_elements
    assert sequence[-1] == 1
    assert all(a > b for a, b in zip(sequence, sequence[1:])), sequence
    questions = [
        tournament_questions(a, b) for a, b in zip(sequence, sequence[1:])
    ]
    assert sum(questions) == plan.questions_used
    assert plan.questions_used <= budget


@settings(max_examples=60, deadline=None)
@given(instance=instances)
def test_three_solvers_agree(instance):
    c0, extra, latency = instance
    budget = min(20, (c0 - 1) + extra)

    tdp = solve_min_latency(c0, budget, latency)
    memo = solve_min_latency_memo(c0, budget, latency)
    brute = brute_force_min_latency(c0, budget, latency)

    # All three must achieve the same optimal latency...
    assert math.isclose(
        tdp.total_latency, brute.total_latency, rel_tol=1e-9, abs_tol=1e-9
    ), (tdp.sequence, brute.sequence)
    assert math.isclose(
        memo.total_latency, brute.total_latency, rel_tol=1e-9, abs_tol=1e-9
    ), (memo.sequence, brute.sequence)

    # ...via a structurally valid tournament sequence.
    _validate_sequence(tdp, c0, budget)
    _validate_sequence(memo, c0, budget)
    _validate_sequence(brute, c0, budget)

    # The reported latency must match the sequence it claims.
    for plan in (tdp, memo, brute):
        recomputed = sum(
            latency(tournament_questions(a, b))
            for a, b in zip(plan.sequence, plan.sequence[1:])
        )
        assert math.isclose(
            recomputed, plan.total_latency, rel_tol=1e-9, abs_tol=1e-9
        )


@settings(max_examples=40, deadline=None)
@given(
    c0=st.integers(2, 12),
    extra=st.integers(0, 8),
    delta=st.floats(1.0, 500.0, allow_nan=False),
    alpha=st.floats(0.1, 60.0, allow_nan=False),
)
def test_extra_budget_never_hurts(c0, extra, delta, alpha):
    """Optimal latency is monotone non-increasing in the budget."""
    latency = LinearLatency(delta=delta, alpha=alpha)
    tight = solve_min_latency(c0, c0 - 1, latency)
    slack = solve_min_latency(c0, min(20, c0 - 1 + extra), latency)
    assert slack.total_latency <= tight.total_latency + 1e-9


@settings(max_examples=40, deadline=None)
@given(c0=st.integers(2, 12), latency=latency_functions)
def test_minimum_budget_spends_exactly_c0_minus_1(c0, latency):
    """At b = c0 - 1 every feasible plan spends the whole budget.

    Each question eliminates at most one candidate (Theorem 1), so any
    sequence reaching a single candidate uses at least — hence, at the
    boundary, exactly — ``c0 - 1`` questions.
    """
    plan = solve_min_latency(c0, c0 - 1, latency)
    assert plan.questions_used == c0 - 1
    _validate_sequence(plan, c0, c0 - 1)
