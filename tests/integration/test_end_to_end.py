"""Full-pipeline integration tests: platform -> estimate -> tDP -> MAX."""

import numpy as np
import pytest

from repro.core.latency import fit_linear_latency
from repro.core.registry import allocator_by_name
from repro.core.tdp import TDPAllocator
from repro.crowd.error_models import UniformError
from repro.crowd.ground_truth import GroundTruth
from repro.crowd.platform import SimulatedPlatform
from repro.crowd.rwl import ReliableWorkerLayer
from repro.engine.max_engine import MaxEngine, PlatformAnswerSource
from repro.experiments.fig11a import _random_batch
from repro.selection.tournament import TournamentFormation


class TestCalibrateThenSolve:
    """The Section 6.1 -> 6.2 workflow end to end."""

    def test_estimate_feeds_tdp_and_finds_the_max(self):
        rng = np.random.default_rng(0)
        probe_truth = GroundTruth.random(100, rng)
        probe_platform = SimulatedPlatform(probe_truth, rng)
        samples = []
        for size in (10, 50, 200):
            for _ in range(3):
                batch = _random_batch(100, size, rng)
                samples.append(
                    (size, probe_platform.post_batch(batch).completion_time)
                )
        estimate = fit_linear_latency(samples)
        assert estimate.delta > 0

        allocation = TDPAllocator().allocate(60, 350, estimate)
        run_rng = np.random.default_rng(1)
        truth = GroundTruth.random(60, run_rng)
        platform = SimulatedPlatform(truth, run_rng)
        engine = MaxEngine(
            TournamentFormation(),
            PlatformAnswerSource(ReliableWorkerLayer(platform, run_rng)),
            run_rng,
        )
        result = engine.run(truth, allocation)
        assert result.singleton_termination
        assert result.winner == truth.max_element
        assert result.total_latency > 0


class TestAllAllocatorsEndToEnd:
    @pytest.mark.parametrize("name", ["tDP", "HE", "HF", "uHE", "uHF"])
    def test_every_allocator_finds_the_max_on_the_platform(self, name):
        rng = np.random.default_rng(42)
        truth = GroundTruth.random(40, rng)
        platform = SimulatedPlatform(truth, rng)
        from repro.core.latency import mturk_car_latency

        allocation = allocator_by_name(name).allocate(
            40, 300, mturk_car_latency()
        )
        engine = MaxEngine(
            TournamentFormation(),
            PlatformAnswerSource(ReliableWorkerLayer(platform, rng)),
            rng,
        )
        result = engine.run(truth, allocation)
        assert result.winner == truth.max_element
        assert result.total_questions <= 300


class TestNoisyEndToEnd:
    def test_rwl_shields_the_operator_from_errors(self):
        """With 20% worker error and 5x repetition the pipeline still finds
        the exact MAX in most runs, and never crashes on inconsistencies."""
        hits = 0
        for seed in range(12):
            rng = np.random.default_rng(seed)
            truth = GroundTruth.random(16, rng)
            platform = SimulatedPlatform(
                truth, rng, error_model=UniformError(0.2)
            )
            rwl = ReliableWorkerLayer(platform, rng, repetition=5)
            from repro.core.latency import mturk_car_latency

            allocation = TDPAllocator().allocate(16, 80, mturk_car_latency())
            engine = MaxEngine(
                TournamentFormation(), PlatformAnswerSource(rwl), rng
            )
            result = engine.run(truth, allocation)
            hits += result.winner == truth.max_element
        assert hits >= 8

    def test_repetition_multiplies_platform_load_not_rounds(self):
        """Repetition inflates batch sizes (and hence platform load) but
        does not add rounds — the RWL folds the copies into each round."""

        def run_with(repetition, seed=3):
            rng = np.random.default_rng(seed)
            truth = GroundTruth.random(30, rng)
            platform = SimulatedPlatform(truth, rng)
            rwl = ReliableWorkerLayer(platform, rng, repetition=repetition)
            from repro.core.latency import mturk_car_latency

            allocation = TDPAllocator().allocate(30, 200, mturk_car_latency())
            engine = MaxEngine(
                TournamentFormation(), PlatformAnswerSource(rwl), rng
            )
            result = engine.run(truth, allocation)
            return result, platform

        plain_result, plain_platform = run_with(1)
        redundant_result, redundant_platform = run_with(9)
        assert redundant_result.rounds_run == plain_result.rounds_run
        assert redundant_result.total_questions == plain_result.total_questions
        assert (
            redundant_platform.stats.questions_posted
            == 9 * plain_platform.stats.questions_posted
        )
