"""Tests for the synthetic labelled collections."""

import numpy as np
import pytest

from repro.datasets import (
    Collection,
    car_collection,
    debate_responses,
    photo_collection,
)
from repro.errors import InvalidParameterError

GENERATORS = [car_collection, photo_collection, debate_responses]


@pytest.mark.parametrize("generator", GENERATORS)
class TestGenerators:
    def test_sizes_and_labels(self, generator, rng):
        collection = generator(50, rng)
        assert len(collection) == 50
        assert len(set(collection.labels)) >= 1
        assert all(isinstance(label, str) for label in collection.labels)

    def test_values_are_distinct(self, generator, rng):
        collection = generator(200, rng)
        assert len(set(collection.values)) == 200

    def test_ground_truth_orders_by_value(self, generator, rng):
        collection = generator(30, rng)
        truth = collection.ground_truth()
        best = truth.max_element
        assert collection.values[best] == max(collection.values)
        ranked = sorted(range(30), key=truth.rank)
        values = [collection.values[e] for e in ranked]
        assert values == sorted(values, reverse=True)

    def test_deterministic_per_seed(self, generator):
        first = generator(20, np.random.default_rng(3))
        second = generator(20, np.random.default_rng(3))
        assert first.values == second.values
        assert first.labels == second.labels

    def test_rejects_empty(self, generator, rng):
        with pytest.raises(InvalidParameterError):
            generator(0, rng)


class TestCollectionType:
    def test_label_accessor(self, rng):
        collection = car_collection(5, rng)
        assert collection.label(0) == collection.labels[0]
        with pytest.raises(InvalidParameterError):
            collection.label(99)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(InvalidParameterError):
            Collection(name="x", labels=("a",), values=(1.0, 2.0))

    def test_duplicate_values_rejected(self):
        with pytest.raises(InvalidParameterError):
            Collection(name="x", labels=("a", "b"), values=(1.0, 1.0))

    def test_car_prices_realistic(self, rng):
        collection = car_collection(300, rng, mean_price=40_000)
        mean = sum(collection.values) / len(collection)
        assert 25_000 < mean < 60_000

    def test_end_to_end_with_engine(self, rng, mturk_latency):
        """A collection's ground truth plugs straight into the pipeline."""
        from repro.core.tdp import TDPAllocator
        from repro.engine.max_engine import MaxEngine, OracleAnswerSource
        from repro.selection.tournament import TournamentFormation

        collection = car_collection(40, rng)
        truth = collection.ground_truth()
        allocation = TDPAllocator().allocate(40, 200, mturk_latency)
        engine = MaxEngine(
            TournamentFormation(),
            OracleAnswerSource(truth, mturk_latency),
            rng,
        )
        result = engine.run(truth, allocation)
        assert result.winner == truth.max_element
        assert collection.values[result.winner] == max(collection.values)
