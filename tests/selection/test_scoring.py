"""Tests for the Appendix B.2 scoring function (Algorithm 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.permutations import p_max
from repro.graphs.answer_graph import AnswerGraph
from repro.selection.scoring import score_candidates
from repro.types import Answer


def fig17_graph() -> AnswerGraph:
    """The example of Figures 17(a)-(c): 5 elements a..e = 0..4."""
    a, b, c, d, e = range(5)
    graph = AnswerGraph(range(5))
    graph.record_all(
        [
            Answer(winner=c, loser=a),
            Answer(winner=d, loser=a),
            Answer(winner=d, loser=b),
            Answer(winner=e, loser=d),
        ]
    )
    return graph


class TestPaperExample:
    def test_fig17_energies(self):
        """The worked example ends with energy 3/10 on c and 7/10 on e."""
        scores = score_candidates(fig17_graph())
        assert set(scores) == {2, 4}  # c and e are the remaining candidates
        assert scores[2] == pytest.approx(3 / 10)
        assert scores[4] == pytest.approx(7 / 10)


class TestBasicProperties:
    def test_no_answers_gives_uniform_scores(self):
        graph = AnswerGraph(range(4))
        scores = score_candidates(graph)
        assert set(scores) == set(range(4))
        assert all(s == pytest.approx(0.25) for s in scores.values())

    def test_only_remaining_candidates_scored(self):
        scores = score_candidates(fig17_graph())
        assert set(scores) == fig17_graph().remaining_candidates()

    def test_scores_sum_to_one(self):
        assert sum(score_candidates(fig17_graph()).values()) == pytest.approx(1.0)

    def test_scores_are_positive(self):
        assert all(s > 0 for s in score_candidates(fig17_graph()).values())

    def test_clear_winner_takes_all(self):
        graph = AnswerGraph(range(3))
        graph.record_all([Answer(winner=0, loser=1), Answer(winner=0, loser=2)])
        scores = score_candidates(graph)
        assert scores == {0: pytest.approx(1.0)}


def random_dag(n, data):
    """A random answer DAG oriented by a hidden permutation (hence acyclic)."""
    order = data.draw(st.permutations(list(range(n))))
    rank = {e: i for i, e in enumerate(order)}
    pairs = data.draw(
        st.sets(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda t: t[0] < t[1]
            ),
            max_size=n * (n - 1) // 2,
        )
    )
    graph = AnswerGraph(range(n))
    for a, b in pairs:
        winner = a if rank[a] < rank[b] else b
        loser = b if winner == a else a
        graph.record(Answer(winner=winner, loser=loser))
    return graph


class TestAgainstExactProbabilities:
    @given(st.integers(2, 7), st.data())
    @settings(max_examples=30, deadline=None)
    def test_support_matches_p_max(self, n, data):
        """Scores are positive exactly on the elements with positive MAX
        probability (the remaining candidates)."""
        graph = random_dag(n, data)
        scores = score_candidates(graph)
        exact = p_max(graph)
        positive_score = set(scores)
        positive_probability = {e for e, prob in exact.items() if prob > 0}
        assert positive_score == positive_probability

    @given(st.integers(2, 7), st.data())
    @settings(max_examples=30, deadline=None)
    def test_scores_always_sum_to_one(self, n, data):
        graph = random_dag(n, data)
        assert sum(score_candidates(graph).values()) == pytest.approx(1.0)

    def test_exact_on_two_candidate_chain(self):
        """For graphs where one candidate beat k elements and the other
        none, the surrogate and exact probabilities agree qualitatively:
        more wins => higher score."""
        graph = AnswerGraph(range(4))
        graph.record_all([Answer(winner=0, loser=1), Answer(winner=0, loser=2)])
        scores = score_candidates(graph)
        exact = p_max(graph)
        assert scores[0] > scores[3]
        assert exact[0] > exact[3]
