"""Tests for the SPREAD selector (balanced random questions)."""

from collections import Counter

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.answer_graph import AnswerGraph
from repro.selection.base import SelectionContext
from repro.selection.spread import Spread


def make_context(candidates, budget, seed=0):
    return SelectionContext(
        budget=budget,
        candidates=tuple(candidates),
        evidence=AnswerGraph(candidates),
        round_index=0,
        total_rounds=1,
        rng=np.random.default_rng(seed),
    )


class TestBasics:
    def test_empty_for_single_candidate(self):
        assert Spread().select(make_context([0], 5)) == []

    def test_empty_for_zero_budget(self):
        assert Spread().select(make_context(range(4), 0)) == []

    def test_budget_capped_by_pair_space(self):
        questions = Spread().select(make_context(range(4), 100))
        assert len(questions) == 6


class TestDegreeBalance:
    def test_full_sweep_is_a_matching(self):
        """A budget of n/2 questions must touch every element exactly once."""
        questions = Spread().select(make_context(range(10), 5))
        degrees = Counter(e for q in questions for e in q)
        assert all(degrees[e] == 1 for e in range(10))

    def test_two_sweeps_give_degree_two(self):
        questions = Spread().select(make_context(range(10), 10))
        degrees = Counter(e for q in questions for e in q)
        assert all(degrees[e] == 2 for e in range(10))

    @given(st.integers(4, 30), st.data())
    @settings(max_examples=40, deadline=None)
    def test_degrees_near_equal(self, n, data):
        """Each element is involved in (almost) the same number of
        questions — the SPREAD defining property."""
        budget = data.draw(st.integers(1, n))
        questions = Spread().select(
            make_context(range(n), budget, seed=data.draw(st.integers(0, 50)))
        )
        degrees = Counter(e for q in questions for e in q)
        values = [degrees.get(e, 0) for e in range(n)]
        assert max(values) - min(values) <= 2

    @given(st.integers(2, 25), st.data())
    @settings(max_examples=40, deadline=None)
    def test_contract(self, n, data):
        max_pairs = n * (n - 1) // 2
        budget = data.draw(st.integers(0, max_pairs + 10))
        questions = Spread().select(
            make_context(range(n), budget, seed=data.draw(st.integers(0, 50)))
        )
        assert len(questions) == min(budget, max_pairs)
        assert len(set(questions)) == len(questions)
        assert all(0 <= a < b < n for a, b in questions)


class TestRandomness:
    def test_deterministic_under_seed(self):
        first = Spread().select(make_context(range(12), 9, seed=4))
        second = Spread().select(make_context(range(12), 9, seed=4))
        assert first == second

    def test_varies_across_seeds(self):
        selections = {
            tuple(Spread().select(make_context(range(12), 9, seed=s)))
            for s in range(8)
        }
        assert len(selections) > 1
