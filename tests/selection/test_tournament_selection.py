"""Tests for the Tournament-formation question selector (Section 5.2)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.questions import fewest_tournaments_within, tournament_questions
from repro.graphs.answer_graph import AnswerGraph
from repro.selection.base import SelectionContext
from repro.selection.tournament import TournamentFormation


def make_context(candidates, budget, seed=0, round_index=0, total_rounds=1):
    return SelectionContext(
        budget=budget,
        candidates=tuple(candidates),
        evidence=AnswerGraph(candidates),
        round_index=round_index,
        total_rounds=total_rounds,
        rng=np.random.default_rng(seed),
    )


class TestBasics:
    def test_no_questions_for_single_candidate(self):
        assert TournamentFormation().select(make_context([7], 10)) == []

    def test_no_questions_for_zero_budget(self):
        assert TournamentFormation().select(make_context([1, 2, 3], 0)) == []

    def test_exact_tournament_budget(self):
        """Budget Q(20, 5) = 30 forms exactly five 4-cliques."""
        questions = TournamentFormation().select(make_context(range(20), 30))
        assert len(questions) == 30

    def test_lavish_budget_forms_single_clique(self):
        questions = TournamentFormation().select(make_context(range(6), 1000))
        assert sorted(questions) == [
            (a, b) for a in range(6) for b in range(6) if a < b
        ]

    def test_minimal_budget_pairs_everyone(self):
        """One question per two candidates (the halving round)."""
        questions = TournamentFormation().select(make_context(range(10), 5))
        assert len(questions) == 5
        involved = [e for q in questions for e in q]
        assert len(set(involved)) == 10  # a perfect matching


class TestLeftoverSpending:
    def test_leftover_spent_across_tournaments(self):
        """Budget 35 over 20 candidates: Q(20, 5) = 30 plus 5 extras."""
        questions = TournamentFormation().select(make_context(range(20), 35))
        assert len(questions) == 35

    def test_leftover_unspendable_with_single_tournament(self):
        """With a full clique there is no cross-tournament pair left."""
        questions = TournamentFormation().select(make_context(range(6), 100))
        assert len(questions) == 15  # C(6, 2)

    def test_extras_connect_different_tournaments(self):
        rng_seed = 3
        candidates = tuple(range(20))
        context = make_context(candidates, 35, seed=rng_seed)
        selector = TournamentFormation()
        questions = selector.select(context)
        clique_questions = questions[:30]
        # Rebuild group membership from the clique edges.
        parent = {e: e for e in candidates}

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for a, b in clique_questions:
            parent[find(a)] = find(b)
        for a, b in questions[30:]:
            assert find(a) != find(b)


class TestContract:
    @given(st.integers(2, 40), st.data())
    @settings(max_examples=40, deadline=None)
    def test_budget_distinctness_and_canonical_form(self, n, data):
        budget = data.draw(st.integers(0, n * (n - 1) // 2 + 20))
        questions = TournamentFormation().select(
            make_context(range(n), budget, seed=data.draw(st.integers(0, 99)))
        )
        assert len(questions) <= budget
        assert len(set(questions)) == len(questions)
        assert all(0 <= a < b < n for a, b in questions)

    @given(st.integers(2, 40), st.data())
    @settings(max_examples=40, deadline=None)
    def test_spends_the_budget_when_pairs_exist(self, n, data):
        max_pairs = n * (n - 1) // 2
        budget = data.draw(st.integers(1, max_pairs + 20))
        questions = TournamentFormation().select(
            make_context(range(n), budget, seed=1)
        )
        assert len(questions) == min(budget, max_pairs)

    @given(st.integers(2, 30), st.data())
    @settings(max_examples=40, deadline=None)
    def test_worst_case_survivors_match_tournament_count(self, n, data):
        """The clique structure guarantees exactly `fewest tournaments
        within budget` winners, regardless of the hidden order."""
        budget = data.draw(st.integers(1, n * (n - 1) // 2))
        expected_tournaments = fewest_tournaments_within(n, budget)
        base_questions = tournament_questions(n, expected_tournaments)
        questions = TournamentFormation().select(
            make_context(range(n), budget, seed=2)
        )
        # Answer everything by the identity order and count survivors.
        losers = {max(a, b) for a, b in questions}
        survivors = n - len(losers)
        # Extras can only reduce the survivor count below the tournament
        # count, never increase it.
        assert survivors <= expected_tournaments
        if len(questions) == base_questions:
            assert survivors == expected_tournaments
