"""Tests for the GREEDY and SPREAD+GREEDY selectors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.graphs.answer_graph import AnswerGraph
from repro.selection.base import SelectionContext
from repro.selection.greedy import Greedy, SpreadGreedy
from repro.types import Answer


def make_context(candidates, budget, seed=0, evidence=None, round_index=0,
                 total_rounds=1):
    return SelectionContext(
        budget=budget,
        candidates=tuple(candidates),
        evidence=evidence if evidence is not None else AnswerGraph(candidates),
        round_index=round_index,
        total_rounds=total_rounds,
        rng=np.random.default_rng(seed),
    )


class TestGreedy:
    def test_pairs_strongest_candidates_first(self):
        """With clear score differences the first question compares the two
        highest-scoring candidates."""
        evidence = AnswerGraph(range(6))
        # 4 beat three elements, 5 beat two, 3 beat one; 0-2 eliminated.
        evidence.record_all(
            [
                Answer(winner=4, loser=0),
                Answer(winner=4, loser=1),
                Answer(winner=5, loser=2),
            ]
        )
        questions = Greedy().select(
            make_context((3, 4, 5), 1, evidence=evidence)
        )
        assert questions == [(4, 5)]

    def test_uniform_scores_still_fill_budget(self):
        questions = Greedy().select(make_context(range(8), 10))
        assert len(questions) == 10
        assert len(set(questions)) == 10

    def test_no_questions_for_single_candidate(self):
        assert Greedy().select(make_context([1], 5)) == []

    @given(st.integers(2, 20), st.data())
    @settings(max_examples=30, deadline=None)
    def test_contract(self, n, data):
        budget = data.draw(st.integers(0, n * (n - 1) // 2 + 5))
        questions = Greedy().select(
            make_context(range(n), budget, seed=data.draw(st.integers(0, 20)))
        )
        assert len(questions) == min(budget, n * (n - 1) // 2)
        assert len(set(questions)) == len(questions)
        assert all(0 <= a < b < n for a, b in questions)


class TestSpreadGreedy:
    def test_name_and_split(self):
        selector = SpreadGreedy()
        assert selector.name == "SG25"
        assert selector.spread_rounds(4) == 1
        assert selector.spread_rounds(8) == 2

    def test_first_round_is_spread(self):
        from collections import Counter

        questions = SpreadGreedy().select(
            make_context(range(10), 5, round_index=0, total_rounds=4)
        )
        degrees = Counter(e for q in questions for e in q)
        assert all(count == 1 for count in degrees.values())

    def test_later_round_is_greedy(self):
        evidence = AnswerGraph(range(4))
        evidence.record_all(
            [Answer(winner=2, loser=0), Answer(winner=3, loser=1)]
        )
        questions = SpreadGreedy().select(
            make_context((2, 3), 1, evidence=evidence, round_index=3,
                         total_rounds=4)
        )
        assert questions == [(2, 3)]

    def test_fraction_validation(self):
        with pytest.raises(InvalidParameterError):
            SpreadGreedy(0.0)
        with pytest.raises(InvalidParameterError):
            SpreadGreedy(1.0)

    def test_registered(self):
        from repro.selection.registry import selector_by_name

        assert selector_by_name("GREEDY").name == "GREEDY"
        assert selector_by_name("SG25").name == "SG25"
