"""Tests for the CT selectors (SPREAD early, COMPLETE late)."""

from collections import Counter

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.graphs.answer_graph import AnswerGraph
from repro.selection.base import SelectionContext
from repro.selection.ct import CTSelector, ct25, ct50, ct75


def make_context(candidates, budget, round_index, total_rounds, seed=0):
    return SelectionContext(
        budget=budget,
        candidates=tuple(candidates),
        evidence=AnswerGraph(candidates),
        round_index=round_index,
        total_rounds=total_rounds,
        rng=np.random.default_rng(seed),
    )


class TestSpreadRounds:
    def test_paper_example_four_rounds(self):
        """CT25 with a 4-round allocation: SPREAD in round 1, COMPLETE in
        the last 3."""
        assert ct25().spread_rounds(4) == 1

    def test_eight_rounds(self):
        assert ct25().spread_rounds(8) == 2

    def test_always_at_least_one_spread_round(self):
        assert ct25().spread_rounds(1) == 1
        assert ct25().spread_rounds(2) == 1

    def test_ct50_and_ct75(self):
        assert ct50().spread_rounds(4) == 2
        assert ct75().spread_rounds(4) == 3

    def test_names(self):
        assert ct25().name == "CT25"
        assert ct50().name == "CT50"
        assert ct75().name == "CT75"


class TestDispatch:
    def test_early_round_behaves_like_spread(self):
        """In the SPREAD phase the questions form a matching for a budget of
        n/2."""
        questions = ct25().select(
            make_context(range(10), 5, round_index=0, total_rounds=4)
        )
        degrees = Counter(e for q in questions for e in q)
        assert all(count == 1 for count in degrees.values())

    def test_late_round_behaves_like_complete(self):
        """In the COMPLETE phase a lavish budget yields the full clique on
        the candidates (coverage + clique + leftovers)."""
        questions = ct25().select(
            make_context(range(6), 15, round_index=3, total_rounds=4)
        )
        assert sorted(questions) == [
            (a, b) for a in range(6) for b in range(6) if a < b
        ]

    def test_boundary_round_is_complete(self):
        """Round index == spread_rounds is the first COMPLETE round."""
        selector = ct25()
        boundary = selector.spread_rounds(8)
        questions = selector.select(
            make_context(range(8), 28, round_index=boundary, total_rounds=8)
        )
        assert len(questions) == 28  # full clique C(8,2): COMPLETE territory


class TestValidation:
    def test_fraction_bounds(self):
        with pytest.raises(InvalidParameterError):
            CTSelector(0.0)
        with pytest.raises(InvalidParameterError):
            CTSelector(1.0)
        with pytest.raises(InvalidParameterError):
            CTSelector(-0.5)
