"""Tests for the selector registry."""

import pytest

from repro.errors import InvalidParameterError
from repro.selection.base import QuestionSelector
from repro.selection.registry import available_selectors, selector_by_name


def test_paper_selectors_registered():
    names = available_selectors()
    for expected in ("Tournament", "SPREAD", "COMPLETE", "CT25"):
        assert expected in names


def test_lookup_returns_selector_instances():
    for name in available_selectors():
        assert isinstance(selector_by_name(name), QuestionSelector)


def test_case_insensitive():
    assert selector_by_name("tournament").name == "Tournament"
    assert selector_by_name("ct25").name == "CT25"


def test_unknown_selector():
    with pytest.raises(InvalidParameterError):
        selector_by_name("oracle")
