"""Tests for the COMPLETE selector (clique of strong candidates)."""

from collections import Counter

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.answer_graph import AnswerGraph
from repro.selection.base import SelectionContext
from repro.selection.complete import Complete, _largest_clique_size
from repro.types import Answer


def make_context(candidates, budget, seed=0, evidence=None):
    return SelectionContext(
        budget=budget,
        candidates=tuple(candidates),
        evidence=evidence if evidence is not None else AnswerGraph(candidates),
        round_index=0,
        total_rounds=1,
        rng=np.random.default_rng(seed),
    )


class TestCliqueSizing:
    def test_exact_fit(self):
        # 10 candidates, k = 4: C(4,2) + 6 = 12.
        assert _largest_clique_size(10, 12) == 4

    def test_whole_collection_when_budget_is_huge(self):
        assert _largest_clique_size(10, 1000) == 10

    def test_too_small_budget_gives_zero(self):
        # k = 2 needs 1 + (n - 2) questions; with n = 10 that is 9.
        assert _largest_clique_size(10, 8) == 0
        assert _largest_clique_size(10, 9) == 2


class TestStructure:
    def test_covers_every_candidate(self):
        """Each candidate is involved in at least one question (the COMPLETE
        coverage guarantee)."""
        context = make_context(range(10), 12)
        questions = Complete().select(context)
        involved = {e for q in questions for e in q}
        assert involved == set(range(10))

    def test_clique_among_strongest(self):
        """With evidence, the top-scored candidates form the clique."""
        evidence = AnswerGraph(range(6))
        # 4 and 5 beat two eliminated elements each, so they score highest.
        evidence.record_all(
            [
                Answer(winner=4, loser=0),
                Answer(winner=4, loser=1),
                Answer(winner=5, loser=2),
                Answer(winner=5, loser=3),
            ]
        )
        candidates = (4, 5)
        context = make_context(candidates, 1, evidence=evidence)
        questions = Complete().select(context)
        assert questions == [(4, 5)]

    def test_falls_back_to_spread_when_budget_tiny(self):
        """Budget below the coverage threshold degrades to SPREAD."""
        context = make_context(range(10), 4)
        questions = Complete().select(context)
        assert len(questions) == 4
        degrees = Counter(e for q in questions for e in q)
        assert max(degrees.values()) == 1  # a matching, i.e. SPREAD behaviour

    def test_leftover_budget_spent(self):
        context = make_context(range(10), 20)
        questions = Complete().select(context)
        assert len(questions) == 20

    def test_no_questions_for_single_candidate(self):
        assert Complete().select(make_context([3], 10)) == []


class TestContract:
    @given(st.integers(2, 25), st.data())
    @settings(max_examples=40, deadline=None)
    def test_budget_and_distinctness(self, n, data):
        budget = data.draw(st.integers(0, n * (n - 1) // 2 + 10))
        questions = Complete().select(
            make_context(range(n), budget, seed=data.draw(st.integers(0, 30)))
        )
        assert len(questions) <= budget
        assert len(set(questions)) == len(questions)
        assert all(0 <= a < b < n for a, b in questions)

    @given(st.integers(3, 25), st.data())
    @settings(max_examples=40, deadline=None)
    def test_coverage_when_budget_allows(self, n, data):
        budget = data.draw(st.integers(n - 1 + 1, n * (n - 1) // 2))
        questions = Complete().select(make_context(range(n), budget, seed=7))
        involved = {e for q in questions for e in q}
        assert involved == set(range(n))
