"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    ExperimentError,
    InconsistentAnswersError,
    InfeasibleBudgetError,
    InvalidParameterError,
    PlatformError,
    ReproError,
)


def test_all_errors_derive_from_repro_error():
    for error_cls in (
        InvalidParameterError,
        InfeasibleBudgetError,
        InconsistentAnswersError,
        PlatformError,
        ExperimentError,
    ):
        assert issubclass(error_cls, ReproError)


def test_invalid_parameter_is_a_value_error():
    assert issubclass(InvalidParameterError, ValueError)


def test_infeasible_budget_message_cites_theorem1():
    error = InfeasibleBudgetError(n_elements=10, budget=5)
    assert "Theorem 1" in str(error)
    assert error.n_elements == 10
    assert error.budget == 5


def test_catching_base_class():
    with pytest.raises(ReproError):
        raise InfeasibleBudgetError(3, 1)
