"""Repo-hygiene gate (``scripts/check_hygiene.py``).

The CI lint job runs the script; these tests pin its verdict on the
committed tree and exercise the individual checks against synthetic
trees so regressions in the checker itself are caught.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_hygiene.py"


def _load_module():
    spec = importlib.util.spec_from_file_location("check_hygiene", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCommittedTree:
    def test_script_passes_on_this_repo(self):
        result = subprocess.run(
            [sys.executable, str(SCRIPT)],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr
        assert "hygiene check passed" in result.stdout

    def test_no_tracked_bytecode(self):
        module = _load_module()
        assert module.tracked_bytecode() == []


class TestBytecodeOnlyDetection:
    def test_empty_and_bytecode_only_dirs_are_flagged(self, tmp_path):
        module = _load_module()
        empty = tmp_path / "empty"
        empty.mkdir()
        assert module._is_bytecode_only(empty)
        cache = tmp_path / "stale" / "__pycache__"
        cache.mkdir(parents=True)
        (cache / "mod.cpython-312.pyc").write_bytes(b"\x00")
        assert module._is_bytecode_only(tmp_path / "stale")

    def test_real_source_is_not_flagged(self, tmp_path):
        module = _load_module()
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("", encoding="utf-8")
        assert not module._is_bytecode_only(pkg)


class TestTreeScans:
    def _fake_src(self, tmp_path, monkeypatch):
        module = _load_module()
        src = tmp_path / "src"
        src.mkdir()
        monkeypatch.setattr(module, "REPO_ROOT", tmp_path)
        monkeypatch.setattr(module, "SRC_ROOT", src)
        return module, src

    def test_orphaned_directory_is_reported(self, tmp_path, monkeypatch):
        module, src = self._fake_src(tmp_path, monkeypatch)
        good = src / "good"
        good.mkdir()
        (good / "__init__.py").write_text("", encoding="utf-8")
        orphan = src / "good" / "leftover" / "__pycache__"
        orphan.mkdir(parents=True)
        (orphan / "gone.cpython-312.pyc").write_bytes(b"\x00")
        reported = module.orphaned_directories()
        assert any(path.endswith("leftover") for path in reported)
        assert not any(path.endswith("good") for path in reported)

    def test_module_dir_without_init_is_reported(self, tmp_path, monkeypatch):
        module, src = self._fake_src(tmp_path, monkeypatch)
        bare = src / "bare"
        bare.mkdir()
        (bare / "util.py").write_text("x = 1\n", encoding="utf-8")
        assert any(
            path.endswith("bare") for path in module.packages_missing_init()
        )

    def test_clean_tree_reports_nothing(self, tmp_path, monkeypatch):
        module, src = self._fake_src(tmp_path, monkeypatch)
        pkg = src / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("", encoding="utf-8")
        (pkg / "core.py").write_text("x = 1\n", encoding="utf-8")
        assert module.orphaned_directories() == []
        assert module.packages_missing_init() == []
