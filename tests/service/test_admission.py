"""Tests for the admission controller."""

import pytest

from repro.errors import InvalidParameterError
from repro.service import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
)


def controller(max_active=2, max_queue=2, overload="defer"):
    return AdmissionController(
        AdmissionConfig(
            max_active_queries=max_active,
            max_queue_depth=max_queue,
            overload_policy=overload,
        )
    )


class TestDecisions:
    def test_admits_below_active_bound(self):
        gate = controller()
        assert gate.decide(n_active=0, n_waiting=0) is AdmissionDecision.ADMIT
        assert gate.decide(n_active=1, n_waiting=2) is AdmissionDecision.ADMIT

    def test_admits_into_queue_when_active_full(self):
        gate = controller()
        assert gate.decide(n_active=2, n_waiting=1) is AdmissionDecision.ADMIT

    def test_defers_when_both_full(self):
        gate = controller(overload="defer")
        assert gate.decide(n_active=2, n_waiting=2) is AdmissionDecision.DEFER

    def test_sheds_when_both_full(self):
        gate = controller(overload="shed")
        assert gate.decide(n_active=2, n_waiting=2) is AdmissionDecision.SHED

    def test_zero_queue_depth_means_active_bound_only(self):
        gate = controller(max_active=1, max_queue=0, overload="shed")
        assert gate.decide(n_active=0, n_waiting=0) is AdmissionDecision.ADMIT
        assert gate.decide(n_active=1, n_waiting=0) is AdmissionDecision.SHED

    def test_describe_overload_names_the_bounds(self):
        reason = controller(max_active=3, max_queue=7).describe_overload()
        assert "3 active" in reason
        assert "7 waiting" in reason


class TestValidation:
    def test_rejects_zero_active(self):
        with pytest.raises(InvalidParameterError):
            AdmissionConfig(max_active_queries=0)

    def test_rejects_negative_queue(self):
        with pytest.raises(InvalidParameterError):
            AdmissionConfig(max_queue_depth=-1)

    def test_rejects_unknown_policy(self):
        with pytest.raises(InvalidParameterError):
            AdmissionConfig(overload_policy="panic")
