"""Scheduler integration tests for the SLO engine and flight recorder.

The contracts under test:

* **zero overhead when disabled** — an SLO-less run is bit-identical to
  pre-SLO behaviour, and an armed engine never changes scheduling
  decisions (only observes them);
* **deterministic alerting** — the journal's alert records replay
  bit-identically through kill/recover at any tick boundary, and the
  engine/ring snapshot round-trips at every tick;
* **surfacing** — tick samples, events, report, dashboard header and
  metrics all carry the health/alert state, identically live or
  replayed.
"""

import dataclasses

import pytest

from repro.chaos import (
    build_scheduler,
    run_with_crash,
    scenario_by_name,
)
from repro.core.latency import LinearLatency
from repro.obs.dashboard import render_frame
from repro.obs.events import events_of
from repro.obs.metrics import get_registry
from repro.obs.slo import (
    BurnRateRule,
    SLOConfig,
    SLOEngine,
    SLOTarget,
    ThresholdRule,
    default_slo_config,
)
from repro.obs.tracer import RecordingTracer, use_tracer
from repro.service import (
    MaxScheduler,
    QuerySpec,
    SchedulerJournal,
    ServiceConfig,
    alert_transitions_from_records,
    generate_workload,
    read_journal,
    recover_scheduler,
    samples_from_records,
    workload_by_name,
)

LATENCY = LinearLatency(239, 0.06)


def _run(config=None, seed=0, workload="smoke"):
    specs = generate_workload(workload_by_name(workload), seed=seed)
    scheduler = MaxScheduler(specs, LATENCY, seed=seed, config=config)
    return scheduler.run(), scheduler


def _stormy_slo(bundle_dir=None):
    """Rules tight enough to fire on a congested single-backend run."""
    return SLOConfig(
        targets=(
            SLOTarget(name="attain", objective="deadline",
                      target=0.90, window=40),
        ),
        burn_rates=(
            BurnRateRule(name="burn", slo="attain", fast_window=3,
                         slow_window=9, burn_threshold=1.0),
        ),
        thresholds=(
            ThresholdRule(name="queue-wait", signal="queue_wait_p95",
                          threshold=300.0),
        ),
        ring=32,
        bundle_dir=bundle_dir,
    )


def _congested_scheduler(slo, journal=None, n=14):
    config = ServiceConfig(
        policy="priority",
        max_active_queries=1,
        max_queue_depth=4,
        default_deadline=2000.0,
        slo=slo,
    )
    specs = [
        QuerySpec(query_id=i, n_elements=16, budget=80, priority=i % 2)
        for i in range(n)
    ]
    return MaxScheduler(specs, LATENCY, seed=0, config=config,
                        journal=journal)


class TestDisabledBitIdentity:
    def test_armed_engine_never_changes_scheduling(self):
        plain, _ = _run(workload="steady")
        armed, scheduler = _run(
            config=ServiceConfig(slo=default_slo_config()),
            workload="steady",
        )
        # The engine observes; it must not steer.  Everything except the
        # health stamp is bit-identical.
        assert dataclasses.replace(armed, health=None) == plain
        assert armed.health is not None

    def test_unarmed_samples_carry_no_health(self):
        _, scheduler = _run(workload="smoke")
        assert all(s.health == "" for s in scheduler.tick_history)
        assert all(s.alerts_active == 0 for s in scheduler.tick_history)

    def test_armed_samples_carry_health(self):
        _, scheduler = _run(
            config=ServiceConfig(slo=default_slo_config()),
            workload="smoke",
        )
        assert all(s.health != "" for s in scheduler.tick_history)

    def test_report_renders_health_only_when_armed(self):
        plain, _ = _run(workload="smoke")
        armed, _ = _run(
            config=ServiceConfig(slo=default_slo_config()),
            workload="smoke",
        )
        assert "health:" not in plain.render()
        assert "health:" in armed.render()


class TestAlertingEndToEnd:
    def test_alerts_fire_and_resolve_with_events_and_metrics(self):
        registry = get_registry()
        registry.reset()
        tracer = RecordingTracer()
        with use_tracer(tracer):
            scheduler = build_scheduler(scenario_by_name("alert-storm"))
            scheduler.run()
        assert scheduler.slo.fired_total > 0
        assert scheduler.slo.resolved_total > 0
        fired = events_of(tracer.records, "AlertFired")
        resolved = events_of(tracer.records, "AlertResolved")
        assert len(fired) == scheduler.slo.fired_total
        assert len(resolved) == scheduler.slo.resolved_total
        snapshot = registry.snapshot()
        assert snapshot["alerts.fired"]["value"] == scheduler.slo.fired_total
        assert (
            snapshot["alerts.resolved"]["value"]
            == scheduler.slo.resolved_total
        )
        # The tick stream carries the live alert state for the dashboard.
        assert any(s.alerts_active > 0 for s in scheduler.tick_history)
        assert any(s.health != "ok" for s in scheduler.tick_history)

    def test_bundle_written_when_alert_fires(self, tmp_path):
        from repro.obs.flight import validate_bundle

        bundles = tmp_path / "bundles"
        scheduler = _congested_scheduler(_stormy_slo(str(bundles)))
        scheduler.run()
        assert scheduler.slo.fired_total > 0
        written = sorted(p.name for p in bundles.iterdir())
        assert len(written) == scheduler.slo.fired_total
        for bundle in bundles.iterdir():
            manifest = validate_bundle(bundle)
            assert manifest["reason"].startswith("alert:")

    def test_dashboard_header_shows_health(self):
        scheduler = _congested_scheduler(_stormy_slo())
        scheduler.run()
        frame = render_frame(list(scheduler.tick_history))
        header = frame.splitlines()[0]
        assert "health=" in header
        assert "alerts=" in header
        # Unarmed samples keep the pre-SLO header, byte for byte.
        _, plain = _run(workload="smoke")
        plain_header = render_frame(list(plain.tick_history)).splitlines()[0]
        assert "health=" not in plain_header


class TestJournalRoundTrip:
    def test_engine_and_ring_state_round_trip_at_every_tick(self, tmp_path):
        # Drive a journaled run to completion (snapshot every tick), then
        # for every snapshot rebuild a scheduler and check the restored
        # engine + ring state equal the snapshot exactly.
        path = tmp_path / "run.jsonl"
        journal = SchedulerJournal.create(path, snapshot_interval=1)
        scheduler = _congested_scheduler(_stormy_slo(), journal=journal)
        scheduler.run()
        journal.close()
        contents = read_journal(path)
        snapshots = [
            r["payload"] for r in contents.records
            if r["record"] == "snapshot"
        ]
        assert len(snapshots) > 2
        from repro.service.journal import (
            restore_scheduler_state,
            scheduler_from_header,
        )

        for snapshot in snapshots:
            restored = scheduler_from_header(contents.header)
            restore_scheduler_state(restored, snapshot)
            assert restored.slo.state_dict() == snapshot["slo"]
            assert restored.flight.state_dict() == snapshot["flight"]

    @pytest.mark.parametrize("crash_after", [2, 5, 9])
    def test_kill_recover_replays_the_same_alert_sequence(
        self, tmp_path, crash_after
    ):
        scenario = scenario_by_name("alert-storm")
        clean_path = tmp_path / "clean.jsonl"
        clean = build_scheduler(
            scenario,
            journal=SchedulerJournal.create(clean_path, snapshot_interval=1),
        )
        baseline = clean.run()
        clean.journal.close()
        clean_alerts = alert_transitions_from_records(
            read_journal(clean_path).records
        )
        assert any(t.action == "fired" for t in clean_alerts)
        assert any(t.action == "resolved" for t in clean_alerts)

        crash_path = tmp_path / "crash.jsonl"
        outcome = run_with_crash(
            scenario,
            crash_after=crash_after,
            journal_path=crash_path,
            baseline=baseline,
        )
        assert outcome.mismatch is None
        recovered_alerts = alert_transitions_from_records(
            read_journal(crash_path).records
        )
        assert recovered_alerts == clean_alerts

    def test_recovered_engine_resumes_mid_alert(self, tmp_path):
        # Kill while an alert is active; the recovered scheduler must
        # come back with the same active alerts and health, not a reset
        # engine.
        path = tmp_path / "crash.jsonl"
        journal = SchedulerJournal.create(path, snapshot_interval=1)
        scheduler = _congested_scheduler(_stormy_slo(), journal=journal)
        crashed_at = None
        while scheduler.step():
            if scheduler.slo.active_alerts():
                crashed_at = scheduler.ticks
                break
        assert crashed_at is not None
        active = scheduler.slo.active_alerts()
        health = scheduler.slo.health()
        ring = scheduler.flight.entries()
        journal.close()
        recovered = recover_scheduler(path, resume_journal=False)
        assert recovered.slo.active_alerts() == active
        assert recovered.slo.health() == health
        assert recovered.flight.entries() == ring

    def test_replayed_samples_match_live_header(self, tmp_path):
        # serve-vs-top byte identity: frames rendered from the journal's
        # samples equal frames rendered from the live tick history.
        path = tmp_path / "run.jsonl"
        journal = SchedulerJournal.create(path, snapshot_interval=1)
        scheduler = _congested_scheduler(_stormy_slo(), journal=journal)
        scheduler.run()
        journal.close()
        replayed = samples_from_records(read_journal(path).records)
        live = list(scheduler.tick_history)
        assert replayed == live
        assert render_frame(replayed) == render_frame(live)


class TestEngineInScheduler:
    def test_slo_config_survives_the_journal_header(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = SchedulerJournal.create(path, snapshot_interval=1)
        config = _stormy_slo()
        scheduler = _congested_scheduler(config, journal=journal)
        scheduler.run()
        journal.close()
        recovered = recover_scheduler(path, resume_journal=False)
        assert recovered.config.slo == config
        assert isinstance(recovered.slo, SLOEngine)

    def test_report_health_matches_engine(self):
        scheduler = _congested_scheduler(_stormy_slo())
        report = scheduler.run()
        assert report.health == scheduler.slo.health()
