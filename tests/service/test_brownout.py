"""Tests for the overload brownout controller (repro.service.deadline).

Covers the pure :class:`BrownoutController` state machine (one level per
tick, hysteresis, snapshot round-trip) and its scheduler integration:
shedding low-priority admissions, widening repetition reduction and
suspending hedging — restored in reverse order as the queue drains.
"""

import pytest

from repro.core.latency import LinearLatency
from repro.errors import InvalidParameterError
from repro.obs.tracer import RecordingTracer, use_tracer
from repro.service import (
    DEADLINE_SHED,
    BrownoutConfig,
    BrownoutController,
    MaxScheduler,
    QuerySpec,
    QueryState,
    ServiceConfig,
)
from repro.service.deadline import queue_wait_p95

LATENCY = LinearLatency(239, 0.06)


def spec(query_id, n=10, budget=50, **kwargs):
    return QuerySpec(query_id=query_id, n_elements=n, budget=budget, **kwargs)


class TestBrownoutController:
    def test_escalates_one_level_per_observation(self):
        controller = BrownoutController(BrownoutConfig(queue_wait_threshold=100.0))
        assert controller.observe(500.0) == (0, 1)
        assert controller.observe(500.0) == (1, 2)
        assert controller.observe(500.0) == (2, 3)
        # Saturated at max_level: no further transition.
        assert controller.observe(500.0) is None
        assert controller.level == 3
        assert controller.transitions == 3

    def test_restores_one_level_per_observation_in_reverse(self):
        controller = BrownoutController(BrownoutConfig(queue_wait_threshold=100.0))
        for _ in range(3):
            controller.observe(500.0)
        assert controller.hedging_disabled
        assert controller.observe(0.0) == (3, 2)
        # Hedging comes back first, repetition next, admissions last.
        assert not controller.hedging_disabled
        assert controller.reduce_repetition
        assert controller.observe(0.0) == (2, 1)
        assert not controller.reduce_repetition
        assert controller.shed_low_priority
        assert controller.observe(0.0) == (1, 0)
        assert not controller.shed_low_priority
        assert controller.transitions == 6

    def test_hysteresis_band_holds_the_level(self):
        config = BrownoutConfig(queue_wait_threshold=100.0, clear_fraction=0.75)
        controller = BrownoutController(config)
        controller.observe(100.0)
        assert controller.level == 1
        # Between clear (75) and escalate (100): no movement either way.
        assert controller.observe(80.0) is None
        assert controller.level == 1
        assert controller.observe(74.9) == (1, 0)

    def test_max_level_caps_the_effects(self):
        config = BrownoutConfig(queue_wait_threshold=100.0, max_level=1)
        controller = BrownoutController(config)
        controller.observe(500.0)
        assert controller.observe(500.0) is None
        assert controller.shed_low_priority
        assert not controller.reduce_repetition
        assert not controller.hedging_disabled

    def test_state_dict_round_trip(self):
        config = BrownoutConfig(queue_wait_threshold=100.0)
        controller = BrownoutController(config)
        controller.observe(500.0)
        controller.observe(500.0)
        clone = BrownoutController(config)
        clone.load_state_dict(controller.state_dict())
        assert clone.level == controller.level
        assert clone.transitions == controller.transitions

    def test_config_validation(self):
        with pytest.raises(InvalidParameterError):
            BrownoutConfig(queue_wait_threshold=0.0)
        with pytest.raises(InvalidParameterError):
            BrownoutConfig(clear_fraction=0.0)
        with pytest.raises(InvalidParameterError):
            BrownoutConfig(max_level=4)

    def test_queue_wait_p95_empty_and_nearest_rank(self):
        assert queue_wait_p95([]) == 0.0
        waits = [float(i) for i in range(1, 101)]
        assert queue_wait_p95(waits) == 95.0


class TestBrownoutScheduling:
    def _congested(self, brownout, n=14, deadline=None):
        # One slot + a crawling queue: waits blow past any threshold.
        config = ServiceConfig(
            policy="priority",
            max_active_queries=1,
            max_queue_depth=4,
            brownout=brownout,
            default_deadline=deadline,
        )
        specs = [
            spec(i, n=16, budget=80, priority=i % 2)
            for i in range(n)
        ]
        return MaxScheduler(specs, LATENCY, seed=0, config=config)

    def test_brownout_sheds_low_priority_admissions(self):
        scheduler = self._congested(BrownoutConfig(queue_wait_threshold=300.0))
        report = scheduler.run()
        shed = [r for r in report.results if r.state is QueryState.SHED]
        assert shed
        assert all(r.spec.priority <= 0 for r in shed)
        assert scheduler.brownout.transitions > 0

    def test_brownout_shed_records_deadline_outcome(self):
        scheduler = self._congested(
            BrownoutConfig(queue_wait_threshold=300.0), deadline=1e6
        )
        report = scheduler.run()
        shed = [r for r in report.results if r.state is QueryState.SHED]
        assert shed
        assert all(r.deadline_outcome == DEADLINE_SHED for r in shed)

    def test_high_priority_admissions_survive_brownout(self):
        scheduler = self._congested(BrownoutConfig(queue_wait_threshold=300.0))
        report = scheduler.run()
        high = [r for r in report.results if r.spec.priority > 0]
        assert all(r.state is not QueryState.SHED for r in high)

    def test_brownout_reduces_repetition(self):
        config = ServiceConfig(
            max_active_queries=1,
            max_queue_depth=8,
            repetition=3,
            brownout=BrownoutConfig(queue_wait_threshold=200.0),
        )
        # A burst to trip the brownout, then lone stragglers whose empty
        # queue drives the restoration while the scheduler still steps.
        specs = [spec(i, n=16, budget=80) for i in range(10)] + [
            spec(10 + i, n=8, budget=40, arrival_time=50000.0 + 5000.0 * i)
            for i in range(4)
        ]
        scheduler = MaxScheduler(specs, LATENCY, seed=0, config=config)
        while scheduler.step():
            if scheduler.brownout.level >= 2:
                break
        assert scheduler._rwl.repetition == 1
        # Drain; once the queue empties the controller restores the
        # configured repetition on the way back down.
        while scheduler.step():
            pass
        assert scheduler.brownout.level < 2
        assert scheduler._rwl.repetition == 3

    def test_transitions_emit_events_and_journal_samples(self):
        tracer = RecordingTracer()
        with use_tracer(tracer):
            scheduler = self._congested(
                BrownoutConfig(queue_wait_threshold=300.0)
            )
            scheduler.run()
        changes = [
            r.event for r in tracer.records
            if r.event.kind == "BrownoutStateChanged"
        ]
        assert changes
        assert changes[0].previous == 0
        assert changes[0].level == 1
        assert all(c.queue_wait_p95 >= 0.0 for c in changes)
        # The tick stream carries the live level for the dashboard.
        assert any(s.brownout_level > 0 for s in scheduler.tick_history)

    def test_brownout_off_keeps_results_identical(self):
        plain = self._congested(None).run()
        # A threshold no queue wait can reach: controller armed but inert.
        inert = self._congested(
            BrownoutConfig(queue_wait_threshold=1e12)
        ).run()
        assert plain == inert
