"""End-to-end tests of the multi-query MAX scheduler."""

import pytest

from repro.core.latency import LinearLatency
from repro.crowd.faults import FaultProfile, RetryPolicy
from repro.errors import InvalidParameterError
from repro.obs.metrics import get_registry
from repro.obs.tracer import RecordingTracer, use_tracer
from repro.service import (
    MaxScheduler,
    PlanCache,
    QuerySpec,
    QueryState,
    ServiceConfig,
    generate_workload,
    workload_by_name,
)

LATENCY = LinearLatency(239, 0.06)


def spec(query_id, n=10, budget=50, **kwargs):
    return QuerySpec(query_id=query_id, n_elements=n, budget=budget, **kwargs)


def run_workload(specs, config=None, seed=0, **kwargs):
    return MaxScheduler(specs, LATENCY, seed=seed, config=config, **kwargs).run()


class TestHappyPath:
    def test_single_query_finds_its_max(self):
        report = run_workload([spec(0, n=20, budget=100)])
        assert report.n_queries == 1
        result = report.results[0]
        assert result.state is QueryState.COMPLETED
        assert result.correct
        assert 0 <= result.winner < 20

    def test_concurrent_queries_all_find_their_max(self):
        """Queries sharing one platform stay isolated: every winner is
        the true MAX of the query's own slice of the element space."""
        specs = [spec(i, n=12, budget=70) for i in range(8)]
        report = run_workload(specs)
        assert len(report.completed) == 8
        assert report.accuracy == 1.0

    def test_results_are_in_query_id_order(self):
        specs = [
            spec(2, arrival_time=0.0),
            spec(0, arrival_time=50.0),
            spec(1, arrival_time=25.0),
        ]
        report = run_workload(specs)
        assert [r.spec.query_id for r in report.results] == [0, 1, 2]

    def test_staggered_arrivals_wait_for_their_time(self):
        specs = [spec(0, arrival_time=0.0), spec(1, arrival_time=5000.0)]
        report = run_workload(specs)
        late = report.results[1]
        assert late.state is QueryState.COMPLETED
        # Latency is measured from arrival, not from service start.
        assert late.latency < report.makespan

    def test_trivial_single_element_query(self):
        report = run_workload([spec(0, n=1, budget=0)])
        result = report.results[0]
        assert result.state is QueryState.COMPLETED
        assert result.winner == 0
        assert result.correct
        assert result.questions_posted == 0

    def test_queries_share_rounds(self):
        """Simultaneous same-shape queries ride the same shared rounds."""
        specs = [spec(i, n=10, budget=50) for i in range(6)]
        report = run_workload(specs)
        assert report.shared_rounds < sum(r.rounds for r in report.results)


class TestValidation:
    def test_empty_workload_rejected(self):
        with pytest.raises(InvalidParameterError):
            MaxScheduler([], LATENCY, seed=0)

    def test_duplicate_query_ids_rejected(self):
        with pytest.raises(InvalidParameterError):
            MaxScheduler([spec(0), spec(0)], LATENCY, seed=0)

    def test_config_validation(self):
        with pytest.raises(InvalidParameterError):
            ServiceConfig(max_inflight_questions=0)
        with pytest.raises(InvalidParameterError):
            ServiceConfig(repetition=0)
        with pytest.raises(InvalidParameterError):
            ServiceConfig(overload_policy="panic")


class TestAdmissionControl:
    def burst(self, n=6):
        return [spec(i) for i in range(n)]

    def test_shed_policy_drops_overflow(self):
        config = ServiceConfig(
            max_active_queries=1, max_queue_depth=1, overload_policy="shed"
        )
        report = run_workload(self.burst(), config=config)
        assert len(report.shed) > 0
        assert len(report.finished) + len(report.shed) == 6
        for result in report.shed:
            assert result.state is QueryState.SHED
            assert result.winner is None
            assert "queue full" in result.shed_reason

    def test_defer_policy_finishes_everything(self):
        config = ServiceConfig(
            max_active_queries=1, max_queue_depth=1, overload_policy="defer"
        )
        report = run_workload(self.burst(), config=config)
        assert len(report.shed) == 0
        assert len(report.finished) == 6

    def test_narrow_active_window_serializes(self):
        wide = run_workload(self.burst(), config=ServiceConfig())
        narrow = run_workload(
            self.burst(), config=ServiceConfig(max_active_queries=1)
        )
        assert len(narrow.finished) == len(wide.finished) == 6
        assert narrow.shared_rounds > wide.shared_rounds


class TestBackpressure:
    def test_small_inflight_cap_spreads_rounds(self):
        specs = [spec(i, n=10, budget=50) for i in range(5)]
        unlimited = run_workload(specs, config=ServiceConfig())
        squeezed = run_workload(
            specs, config=ServiceConfig(max_inflight_questions=30)
        )
        assert len(squeezed.finished) == 5
        assert squeezed.accuracy == 1.0
        assert squeezed.shared_rounds > unlimited.shared_rounds

    def test_oversized_round_still_runs_alone(self):
        """A single round larger than the cap must not starve forever."""
        report = run_workload(
            [spec(0, n=20, budget=100)],
            config=ServiceConfig(max_inflight_questions=5),
        )
        assert report.results[0].state is QueryState.COMPLETED


class TestSLO:
    def test_slo_flags_follow_latency(self):
        specs = [
            spec(0, latency_slo=1e9),  # impossible to miss
            spec(1, latency_slo=1e-3),  # impossible to meet
            spec(2),  # no SLO
        ]
        report = run_workload(specs)
        by_id = {r.spec.query_id: r for r in report.results}
        assert by_id[0].slo_met is True
        assert by_id[1].slo_met is False
        assert by_id[2].slo_met is None
        assert report.slo_attainment == 0.5


class TestFaults:
    def test_faulty_run_with_retries_completes(self):
        specs = [spec(i, n=12, budget=70) for i in range(4)]
        report = run_workload(
            specs,
            fault_profile=FaultProfile(abandon_prob=0.05, drop_prob=0.15),
            retry_policy=RetryPolicy(max_attempts=3),
        )
        assert len(report.finished) == 4

    def test_pathological_loss_degrades_not_hangs(self):
        """With almost every answer lost and a tight attempt cap, queries
        must degrade gracefully instead of looping forever."""
        specs = [spec(i, n=10, budget=50) for i in range(3)]
        report = run_workload(
            specs,
            config=ServiceConfig(max_round_attempts=2),
            fault_profile=FaultProfile(drop_prob=0.95, abandon_prob=0.9),
        )
        assert len(report.finished) == 3
        assert len(report.degraded) > 0
        for result in report.degraded:
            assert result.winner is not None
            assert result.state is QueryState.DEGRADED


class TestPlanCacheIntegration:
    def test_same_shape_queries_hit_the_cache(self):
        specs = [spec(i, n=10, budget=50) for i in range(5)]
        report = run_workload(specs)
        assert report.cache_misses == 1
        assert report.cache_hits == 4
        hits = [r.plan_cache_hit for r in report.results]
        assert hits.count(False) == 1

    def test_cache_can_be_shared_across_schedulers(self):
        cache = PlanCache(capacity=16)
        run_workload([spec(0)], plan_cache=cache)
        report = run_workload([spec(1)], plan_cache=cache)
        assert report.cache_hits >= 1


class TestObservability:
    def test_trace_events_cover_the_lifecycle(self):
        tracer = RecordingTracer()
        with use_tracer(tracer):
            run_workload([spec(i) for i in range(3)])
        assert len(tracer.events("QueryAdmitted")) == 3
        assert len(tracer.events("QueryScheduled")) >= 3
        assert len(tracer.events("QueryCompleted")) == 3
        completed = tracer.events("QueryCompleted")[0]
        assert completed.state == "completed"

    def test_shed_event_carries_the_reason(self):
        tracer = RecordingTracer()
        config = ServiceConfig(
            max_active_queries=1, max_queue_depth=0, overload_policy="shed"
        )
        with use_tracer(tracer):
            run_workload([spec(i) for i in range(4)], config=config)
        shed = tracer.events("QueryShed")
        assert shed
        assert "queue full" in shed[0].reason

    def test_service_metrics_accumulate(self):
        registry = get_registry()
        registry.reset()
        report = run_workload([spec(i) for i in range(3)])
        assert registry.counter("service.queries_admitted").value == 3
        assert registry.counter("service.queries_completed").value == 3
        assert registry.counter("service.rounds").value == report.shared_rounds
        assert registry.histogram("service.query_latency").count == 3


class TestPresetWorkloads:
    @pytest.mark.parametrize("preset", ["smoke", "steady", "sla"])
    def test_presets_run_clean(self, preset):
        specs = generate_workload(workload_by_name(preset), seed=3)
        report = run_workload(specs, seed=3)
        assert len(report.finished) == len(specs)
        assert report.makespan > 0
        rendered = report.render(per_query=True)
        assert f"queries:          {len(specs)}" in rendered
