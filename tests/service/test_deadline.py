"""Tests for end-to-end deadline propagation (repro.service.deadline).

The brownout controller has its own module (``test_brownout.py``); this
one covers the :class:`LatencyBudget` primitive and the scheduler's
deadline enforcement: met / replanned / degraded / exceeded outcomes,
the report's attainment breakdown, and the bit-identity of the
deadline-free path.
"""

import math

import pytest

from repro.core.latency import LinearLatency
from repro.errors import InvalidParameterError
from repro.obs.tracer import RecordingTracer, use_tracer
from repro.service import (
    DEADLINE_DEGRADED,
    DEADLINE_EXCEEDED,
    DEADLINE_MET,
    DEADLINE_OUTCOMES,
    DEADLINE_SHED,
    LatencyBudget,
    MaxScheduler,
    QuerySpec,
    QueryState,
    ServiceConfig,
    generate_workload,
    workload_by_name,
)

LATENCY = LinearLatency(239, 0.06)


def spec(query_id, n=10, budget=50, **kwargs):
    return QuerySpec(query_id=query_id, n_elements=n, budget=budget, **kwargs)


def run_workload(specs, config=None, seed=0, **kwargs):
    return MaxScheduler(specs, LATENCY, seed=seed, config=config, **kwargs).run()


class TestLatencyBudget:
    def test_expiry_accounting(self):
        budget = LatencyBudget(deadline=100.0, arrival=50.0)
        assert budget.expires_at == 150.0
        assert budget.remaining(100.0) == 50.0
        assert not budget.expired(150.0)
        assert budget.expired(150.1)

    def test_resolve_prefers_the_spec_deadline(self):
        budget = LatencyBudget.resolve(30.0, 99.0, arrival=10.0)
        assert budget.deadline == 30.0
        assert budget.expires_at == 40.0

    def test_resolve_falls_back_to_the_default(self):
        budget = LatencyBudget.resolve(None, 99.0, arrival=0.0)
        assert budget.deadline == 99.0

    def test_resolve_none_and_inf_disable(self):
        assert LatencyBudget.resolve(None, None, arrival=0.0) is None
        assert LatencyBudget.resolve(math.inf, None, arrival=0.0) is None

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            LatencyBudget(deadline=0.0, arrival=0.0)
        with pytest.raises(InvalidParameterError):
            LatencyBudget(deadline=10.0, arrival=-1.0)


class TestDeadlineOutcomes:
    def test_loose_deadline_is_met(self):
        report = run_workload([spec(0, deadline=1e6)])
        result = report.results[0]
        assert result.state is QueryState.COMPLETED
        assert result.deadline == 1e6
        assert result.deadline_outcome == DEADLINE_MET

    def test_impossible_deadline_degrades_proactively(self):
        # Tighter than a single round: the query degrades at its first
        # packing opportunity instead of burning rounds it cannot finish.
        report = run_workload([spec(0, n=20, budget=100, deadline=10.0)])
        result = report.results[0]
        assert result.state is QueryState.DEGRADED
        assert result.deadline_outcome == DEADLINE_DEGRADED

    def test_default_deadline_applies_to_bare_specs(self):
        config = ServiceConfig(default_deadline=10.0)
        report = run_workload([spec(0, n=20, budget=100)], config=config)
        assert report.results[0].deadline == 10.0
        assert report.results[0].deadline_outcome == DEADLINE_DEGRADED

    def test_spec_deadline_overrides_the_default(self):
        config = ServiceConfig(default_deadline=10.0)
        report = run_workload(
            [spec(0, n=20, budget=100, deadline=1e6)], config=config
        )
        assert report.results[0].deadline == 1e6
        assert report.results[0].deadline_outcome == DEADLINE_MET

    def test_queries_without_deadlines_are_untouched(self):
        report = run_workload([spec(0), spec(1, deadline=1e6)])
        bare, budgeted = report.results
        assert bare.deadline is None
        assert bare.deadline_outcome is None
        assert budgeted.deadline_outcome == DEADLINE_MET

    def test_replanning_merges_future_rounds(self):
        # uHF plans n=24/budget=120 as three rounds of 40.  Planned cost
        # is 3 * L(40) ~ 724 s; the merged two-round plan costs
        # L(40) + L(80) ~ 485 s.  A 600 s deadline sits between the two,
        # so the scheduler must take the merge path, not degrade.
        from repro.obs.metrics import get_registry

        registry = get_registry()
        registry.reset()
        config = ServiceConfig(allocator="uHF", default_deadline=600.0)
        report = run_workload([spec(0, n=24, budget=120)], config=config)
        assert registry.counter("deadline.replans").value >= 1
        result = report.results[0]
        assert result.state is QueryState.COMPLETED
        assert result.deadline_outcome == DEADLINE_MET

    def test_exceeded_while_stuck_behind_a_full_active_set(self):
        # Query 1 waits for query 0's slot; its budget expires mid-wait,
        # which is only discoverable reactively — outcome "exceeded",
        # never a silent loss.
        config = ServiceConfig(max_active_queries=1)
        specs = [
            spec(0, n=40, budget=320),
            spec(1, n=8, budget=40, deadline=100.0),
        ]
        report = run_workload(specs, config=config)
        stuck = report.results[1]
        assert stuck.state is QueryState.DEGRADED
        assert stuck.deadline_outcome == DEADLINE_EXCEEDED

    def test_every_query_reaches_a_terminal_state(self):
        config = ServiceConfig(default_deadline=500.0, max_active_queries=2)
        specs = [spec(i, n=12, budget=60) for i in range(10)]
        report = run_workload(specs, config=config)
        assert len(report.results) == 10
        assert all(r.deadline_outcome in DEADLINE_OUTCOMES for r in report.results)


class TestDeadlineAttainment:
    def test_attainment_counts_every_outcome(self):
        config = ServiceConfig(default_deadline=500.0, max_active_queries=2)
        specs = [spec(i, n=12, budget=60) for i in range(10)]
        report = run_workload(specs, config=config)
        attainment = report.deadline_attainment
        assert attainment is not None
        assert sum(attainment.values()) == 10
        assert list(attainment) == list(DEADLINE_OUTCOMES)

    def test_attainment_is_none_without_deadlines(self):
        report = run_workload([spec(0), spec(1)])
        assert report.deadline_attainment is None

    def test_render_includes_the_breakdown(self):
        report = run_workload([spec(0, deadline=1e6)])
        assert "deadlines:" in report.render()
        assert "1 met" in report.render()

    def test_render_omits_the_line_without_deadlines(self):
        report = run_workload([spec(0)])
        assert "deadlines:" not in report.render()

    def test_per_query_lines_carry_the_outcome(self):
        report = run_workload([spec(0, deadline=1e6)])
        rendered = report.render(per_query=True)
        assert "deadline met" in rendered


class TestDeadlineEvents:
    def test_degradation_emits_deadline_exceeded(self):
        tracer = RecordingTracer()
        with use_tracer(tracer):
            run_workload([spec(0, n=20, budget=100, deadline=10.0)])
        events = [
            r.event for r in tracer.records
            if r.event.kind == "DeadlineExceeded"
        ]
        assert len(events) == 1
        assert events[0].outcome == DEADLINE_DEGRADED
        assert events[0].deadline == 10.0

    def test_met_deadlines_stay_silent(self):
        tracer = RecordingTracer()
        with use_tracer(tracer):
            run_workload([spec(0, deadline=1e6)])
        assert not [
            r for r in tracer.records
            if r.event.kind == "DeadlineExceeded"
        ]


class TestDeadlineFreeBitIdentity:
    def test_disabled_path_is_identical_to_the_deadline_free_run(self):
        # default_deadline=None + no per-spec deadlines must leave every
        # result byte-identical: no extra RNG draws, no replans, nothing.
        specs = generate_workload(workload_by_name("steady"), seed=3)
        plain = run_workload(specs, seed=3)
        configured = run_workload(specs, config=ServiceConfig(), seed=3)
        assert plain == configured

    def test_infinite_spec_deadline_disables_enforcement(self):
        specs = [spec(0, deadline=math.inf), spec(1)]
        report = run_workload(specs)
        assert report.results[0].deadline is None
        assert report.results[0].deadline_outcome is None
        assert report.deadline_attainment is None

    def test_shed_queries_report_a_shed_outcome(self):
        config = ServiceConfig(
            default_deadline=1e6,
            max_active_queries=1,
            max_queue_depth=1,
            overload_policy="shed",
        )
        specs = [spec(i) for i in range(6)]
        report = run_workload(specs, config=config)
        shed = [
            r for r in report.results
            if r.deadline_outcome == DEADLINE_SHED
        ]
        assert shed
        assert all(r.state is QueryState.SHED for r in shed)
