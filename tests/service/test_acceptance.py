"""Acceptance tests from the subsystem's issue: determinism at scale and
plan-cache fidelity.

* A seeded serve run with >= 50 concurrent queries over one shared
  platform is bit-identical across two invocations;
* the same holds under a fault profile (replays identically);
* on a repeated-shape workload the plan cache reports a non-zero hit
  rate while every cached allocation equals the freshly solved tDP
  allocation.
"""

from repro.core.latency import mturk_car_latency
from repro.core.tdp import TDPAllocator
from repro.crowd.faults import RetryPolicy, fault_profile_by_name
from repro.service import (
    MaxScheduler,
    ServiceConfig,
    generate_workload,
    workload_by_name,
)

LATENCY = mturk_car_latency()


def serve(seed=42, workload="burst", **scheduler_kwargs):
    specs = generate_workload(workload_by_name(workload), seed=seed)
    scheduler = MaxScheduler(specs, LATENCY, seed=seed, **scheduler_kwargs)
    return scheduler, scheduler.run()


class TestBitIdenticalReplay:
    def test_burst_run_replays_bit_identically(self):
        """>= 50 queries arriving at once on one shared platform: two
        invocations under the same seed produce the same report, field
        for field (frozen dataclasses compare exactly, floats included)."""
        _, first = serve()
        _, second = serve()
        assert first.n_queries >= 50
        assert first == second

    def test_burst_run_replays_identically_under_faults(self):
        kwargs = dict(
            fault_profile=fault_profile_by_name("lossy"),
            retry_policy=RetryPolicy(max_attempts=3),
        )
        _, first = serve(**kwargs)
        _, second = serve(**kwargs)
        assert first == second
        assert len(first.finished) == first.n_queries

    def test_fault_free_and_faulted_runs_differ(self):
        """Sanity check that the equality above is not vacuous."""
        _, plain = serve()
        _, faulted = serve(
            fault_profile=fault_profile_by_name("lossy"),
            retry_policy=RetryPolicy(max_attempts=3),
        )
        assert plain != faulted

    def test_different_seeds_differ(self):
        _, first = serve(seed=42)
        _, second = serve(seed=43)
        assert first != second


class TestPlanCacheFidelity:
    def test_repeated_workload_hits_and_matches_fresh_solves(self):
        """The repeated-shape workload must produce a non-zero hit rate,
        and every allocation the cache serves must equal a fresh tDP
        solve of the same (c0, budget, latency) inputs."""
        config = ServiceConfig(allocator="tDP")
        scheduler, report = serve(workload="repeated", config=config)
        assert report.cache_hit_rate > 0
        assert report.cache_hits > 0
        entries = scheduler.plan_cache.items()
        assert entries
        allocator = TDPAllocator()
        for key, cached in entries:
            fresh = allocator.allocate(key.n_elements, key.budget, LATENCY)
            assert cached == fresh, (
                f"cached allocation for {key} diverged from a fresh solve"
            )

    def test_one_miss_per_distinct_shape(self):
        """Only the first query of each (c0, budget) shape pays a solve;
        every later same-shape query is served from the cache."""
        _, report = serve(workload="repeated")
        shapes = {
            (r.spec.n_elements, r.spec.budget)
            for r in report.results
            if r.finished
        }
        assert report.cache_misses == len(shapes)
        assert report.cache_hits == len(report.finished) - len(shapes)
