"""Span-id stability across journal crash/recovery.

Span ids are structural (``q3/r1``, ``t42``), not allocated from a
counter, so a recovered scheduler re-emits *identical* ids for the
ticks it replays.  Traces from before and after a crash can therefore
be concatenated and assembled into one coherent tree — the whole
point of keeping the ids deterministic.
"""

import dataclasses

from repro.core.latency import mturk_car_latency
from repro.crowd.faults import RetryPolicy, fault_profile_by_name
from repro.obs.events import SpanClosed, SpanOpened
from repro.obs.tracer import RecordingTracer, use_tracer
from repro.service import (
    MaxScheduler,
    SchedulerJournal,
    generate_workload,
    recover_scheduler,
    workload_by_name,
)


def _specs(seed=7):
    return generate_workload(workload_by_name("smoke"), seed=seed)


def _scheduler(journal=None, **kwargs):
    return MaxScheduler(
        _specs(), mturk_car_latency(), seed=7, journal=journal, **kwargs
    )


def _traced_run(scheduler):
    tracer = RecordingTracer()
    with use_tracer(tracer):
        report = scheduler.run()
    return report, tracer.records


def _opens(records):
    return {
        (e.span_id, e.name, e.start, e.query_id)
        for e in (r.event for r in records)
        if isinstance(e, SpanOpened)
    }


def _closes(records):
    return {
        (e.span_id, e.end, e.status)
        for e in (r.event for r in records)
        if isinstance(e, SpanClosed)
    }


def _crash_then_recover(tmp_path, crash_after, **kwargs):
    path = tmp_path / "crash.jsonl"
    journal = SchedulerJournal.create(path)
    victim = _scheduler(journal=journal, **kwargs)
    steps = 0
    while steps < crash_after and victim.step():
        steps += 1
    journal.close()
    recovered = recover_scheduler(path, resume_journal=False)
    return recovered


def test_recovered_run_re_emits_identical_span_ids(tmp_path):
    _, reference = _traced_run(_scheduler())
    recovered = _crash_then_recover(tmp_path, crash_after=3)
    _, replayed = _traced_run(recovered)
    # Every span the recovered run opens must match one the uncrashed
    # run opened — same structural id, same name, same sim time, same
    # owner.  (Pre-crash spans are simply absent; none are re-invented
    # with different ids.)
    assert _opens(replayed) <= _opens(reference)
    assert _closes(replayed) <= _closes(reference)
    assert len(_opens(replayed)) > 0


def test_span_ids_stable_under_faults_and_retries(tmp_path):
    kwargs = {
        "fault_profile": fault_profile_by_name("outages"),
        "retry_policy": RetryPolicy(),
    }
    _, reference = _traced_run(_scheduler(**kwargs))
    recovered = _crash_then_recover(tmp_path, crash_after=4, **kwargs)
    _, replayed = _traced_run(recovered)
    assert _opens(replayed) <= _opens(reference)
    assert _closes(replayed) <= _closes(reference)


def test_recovered_report_matches_modulo_attribution(tmp_path):
    # Attribution chunks gathered before the crash are gone — only the
    # replayed ticks are attributed — but everything else in the report
    # is bit-identical to the uncrashed traced run.
    baseline_report, _ = _traced_run(_scheduler())
    recovered = _crash_then_recover(tmp_path, crash_after=3)
    replay_report, _ = _traced_run(recovered)
    assert dataclasses.replace(replay_report, attribution=None) == (
        dataclasses.replace(baseline_report, attribution=None)
    )
