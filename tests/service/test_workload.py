"""Tests for the synthetic workload generator."""

import pytest

from repro.errors import InvalidParameterError
from repro.service import (
    WorkloadConfig,
    available_workloads,
    generate_workload,
    workload_by_name,
)


class TestPresets:
    def test_all_presets_listed(self):
        assert available_workloads() == [
            "burst",
            "deadline",
            "repeated",
            "sla",
            "smoke",
            "steady",
        ]

    def test_every_preset_generates(self):
        for name in available_workloads():
            specs = generate_workload(workload_by_name(name), seed=0)
            assert len(specs) == workload_by_name(name).n_queries

    def test_unknown_preset(self):
        with pytest.raises(InvalidParameterError, match="steady"):
            workload_by_name("tsunami")

    def test_burst_arrives_at_once(self):
        """The burst preset is the >= 50 concurrent-queries scenario."""
        specs = generate_workload(workload_by_name("burst"), seed=0)
        assert len(specs) >= 50
        assert all(spec.arrival_time == 0.0 for spec in specs)

    def test_sla_preset_carries_slos(self):
        specs = generate_workload(workload_by_name("sla"), seed=0)
        assert all(spec.latency_slo == 4000.0 for spec in specs)


class TestGeneration:
    CONFIG = WorkloadConfig(
        n_queries=25,
        mean_interarrival=30.0,
        sizes=(8, 16),
        budget_factors=(2.0, 4.0),
        priorities=(0, 1, 2),
    )

    def test_same_seed_same_workload(self):
        assert generate_workload(self.CONFIG, seed=5) == generate_workload(
            self.CONFIG, seed=5
        )

    def test_different_seed_different_workload(self):
        assert generate_workload(self.CONFIG, seed=5) != generate_workload(
            self.CONFIG, seed=6
        )

    def test_specs_are_feasible_and_sorted(self):
        specs = generate_workload(self.CONFIG, seed=1)
        arrivals = [spec.arrival_time for spec in specs]
        assert arrivals == sorted(arrivals)
        for spec in specs:
            assert spec.budget >= spec.n_elements - 1  # Theorem 1
            assert spec.n_elements in self.CONFIG.sizes
            assert spec.priority in self.CONFIG.priorities

    def test_query_ids_are_arrival_ranks(self):
        specs = generate_workload(self.CONFIG, seed=2)
        assert [spec.query_id for spec in specs] == list(range(25))

    def test_n_queries_override(self):
        assert len(generate_workload(self.CONFIG, seed=0, n_queries=3)) == 3
        with pytest.raises(InvalidParameterError):
            generate_workload(self.CONFIG, seed=0, n_queries=0)


class TestConfigValidation:
    def test_rejects_bad_counts(self):
        with pytest.raises(InvalidParameterError):
            WorkloadConfig(
                n_queries=0, mean_interarrival=1.0, sizes=(4,), budget_factors=(2.0,)
            )

    def test_rejects_empty_sizes(self):
        with pytest.raises(InvalidParameterError):
            WorkloadConfig(
                n_queries=1, mean_interarrival=1.0, sizes=(), budget_factors=(2.0,)
            )

    def test_rejects_nonpositive_budget_factor(self):
        with pytest.raises(InvalidParameterError):
            WorkloadConfig(
                n_queries=1, mean_interarrival=1.0, sizes=(4,), budget_factors=(0.0,)
            )

    def test_rejects_nonpositive_slo(self):
        with pytest.raises(InvalidParameterError):
            WorkloadConfig(
                n_queries=1,
                mean_interarrival=1.0,
                sizes=(4,),
                budget_factors=(2.0,),
                slo_seconds=0.0,
            )
