"""Tests for the LRU plan cache."""

import pytest

from repro.core.allocation import Allocation
from repro.core.latency import LinearLatency, PowerLawLatency
from repro.errors import InvalidParameterError
from repro.service import PlanCache, PlanKey

LATENCY = LinearLatency(239, 0.06)


def key(n, b, latency=LATENCY, repetition=1):
    return PlanKey.for_query(n, b, latency, repetition)


def plan(*budgets):
    return Allocation(round_budgets=budgets)


class TestPlanKey:
    def test_same_shape_same_key(self):
        assert key(40, 200) == key(40, 200)

    def test_latency_model_distinguishes_keys(self):
        assert key(40, 200) != key(40, 200, latency=LinearLatency(239, 0.07))
        assert key(40, 200) != key(
            40, 200, latency=PowerLawLatency(239, 0.06, 1.5)
        )

    def test_repetition_distinguishes_keys(self):
        assert key(40, 200) != key(40, 200, repetition=3)

    def test_key_is_hashable(self):
        assert len({key(40, 200), key(40, 200), key(41, 200)}) == 2


class TestPlanCache:
    def test_get_miss_then_hit(self):
        cache = PlanCache(capacity=4)
        assert cache.get(key(10, 45)) is None
        cache.put(key(10, 45), plan(25, 10, 1))
        assert cache.get(key(10, 45)) == plan(25, 10, 1)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = PlanCache(capacity=2)
        cache.put(key(10, 45), plan(45))
        cache.put(key(20, 95), plan(95))
        cache.get(key(10, 45))  # refresh: 20/95 is now the LRU entry
        cache.put(key(30, 145), plan(145))
        assert cache.peek(key(20, 95)) is None
        assert cache.peek(key(10, 45)) is not None
        assert cache.stats.evictions == 1

    def test_peek_does_not_touch_recency_or_stats(self):
        cache = PlanCache(capacity=2)
        cache.put(key(10, 45), plan(45))
        cache.put(key(20, 95), plan(95))
        cache.peek(key(10, 45))  # must NOT refresh
        cache.put(key(30, 145), plan(145))
        assert cache.peek(key(10, 45)) is None  # still evicted as LRU
        assert cache.stats.hits == 0
        assert cache.stats.misses == 0

    def test_put_refreshes_existing_key(self):
        cache = PlanCache(capacity=2)
        cache.put(key(10, 45), plan(45))
        cache.put(key(20, 95), plan(95))
        cache.put(key(10, 45), plan(44, 1))  # refresh + replace
        cache.put(key(30, 145), plan(145))
        assert cache.peek(key(10, 45)) == plan(44, 1)
        assert cache.peek(key(20, 95)) is None
        assert len(cache) == 2

    def test_contains_and_clear(self):
        cache = PlanCache(capacity=2)
        cache.put(key(10, 45), plan(45))
        assert key(10, 45) in cache
        cache.clear()
        assert key(10, 45) not in cache
        assert len(cache) == 0

    def test_snapshot(self):
        cache = PlanCache(capacity=3)
        cache.put(key(10, 45), plan(45))
        cache.get(key(10, 45))
        cache.get(key(99, 999))
        snap = cache.snapshot()
        assert snap["capacity"] == 3
        assert snap["entries"] == 1
        assert snap["hits"] == 1
        assert snap["misses"] == 1
        assert snap["hit_rate"] == 0.5

    def test_capacity_validated(self):
        with pytest.raises(InvalidParameterError):
            PlanCache(capacity=0)
