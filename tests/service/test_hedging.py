"""Property tests for hedged posting at the service layer.

Two contracts, hunted with Hypothesis across seeds and workload shapes
on a mixed two-backend fleet:

* hedging may change *when* answers arrive, never *what* they are —
  every query's winner (and correctness) is invariant under hedging;
* ``HedgeConfig(hedge_after=math.inf)`` never arms, and such a run is
  bit-identical to one with hedging disabled entirely (no extra RNG
  draws, no report drift).
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.latency import LinearLatency
from repro.crowd.multibackend import BackendSpec, HedgeConfig
from repro.service import MaxScheduler, QuerySpec, ServiceConfig

LATENCY = LinearLatency(239, 0.06)

FLEET = [
    BackendSpec(
        name="steady", latency=LinearLatency(delta=300.0, alpha=0.08),
        capacity=400,
    ),
    BackendSpec(
        name="zippy", latency=LinearLatency(delta=120.0, alpha=0.05),
        capacity=400,
    ),
]

query_specs = st.lists(
    st.tuples(
        st.integers(min_value=2, max_value=16),      # n_elements
        st.integers(min_value=0, max_value=60),      # extra budget over n
        st.floats(min_value=0.0, max_value=2000.0,   # arrival time
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=4,
).map(
    lambda rows: [
        QuerySpec(
            query_id=i,
            n_elements=n,
            budget=n + extra,
            arrival_time=arrival,
        )
        for i, (n, extra, arrival) in enumerate(rows)
    ]
)


def _run(specs, seed, hedge):
    config = ServiceConfig(routing="least-loaded", hedge=hedge)
    scheduler = MaxScheduler(
        specs, LATENCY, seed=seed, config=config, backends=list(FLEET)
    )
    return scheduler.run(), scheduler


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(specs=query_specs, seed=st.integers(min_value=0, max_value=2**16))
def test_hedging_never_changes_the_answer(specs, seed):
    # An aggressive threshold so hedging actually fires when it can.
    hedged_report, _ = _run(
        specs, seed, HedgeConfig(hedge_after=1.0)
    )
    plain_report, _ = _run(specs, seed, None)
    assert len(hedged_report.results) == len(plain_report.results)
    for hedged, plain in zip(hedged_report.results, plain_report.results):
        assert hedged.winner == plain.winner
        assert hedged.correct == plain.correct
        assert hedged.state == plain.state


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(specs=query_specs, seed=st.integers(min_value=0, max_value=2**16))
def test_infinite_threshold_is_bit_identical_to_unhedged(specs, seed):
    inf_report, inf_scheduler = _run(
        specs, seed, HedgeConfig(hedge_after=math.inf)
    )
    plain_report, _ = _run(specs, seed, None)
    assert inf_scheduler.router.hedges == 0
    assert inf_report == plain_report


def test_hedging_fires_on_this_fleet():
    # Guard for the property above: with an aggressive threshold the
    # fleet does hedge, so answer-invariance is tested against real
    # mirrored rounds, not a vacuous no-op.
    specs = [
        QuerySpec(query_id=i, n_elements=12, budget=60) for i in range(4)
    ]
    _, scheduler = _run(specs, 0, HedgeConfig(hedge_after=1.0))
    assert scheduler.router.hedges > 0
