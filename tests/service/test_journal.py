"""Write-ahead journal and deterministic recovery."""

import json

import pytest

from repro.core.latency import mturk_car_latency
from repro.crowd.breaker import CircuitBreakerConfig
from repro.crowd.faults import RetryPolicy, fault_profile_by_name
from repro.errors import JournalCorruptError
from repro.obs import get_registry
from repro.service import (
    JOURNAL_VERSION,
    MaxScheduler,
    SchedulerJournal,
    generate_workload,
    read_journal,
    recover_scheduler,
    scheduler_from_header,
    workload_by_name,
)


def _specs(workload="smoke", seed=7, n_queries=None):
    return generate_workload(
        workload_by_name(workload), seed=seed, n_queries=n_queries
    )


def _scheduler(journal=None, workload="smoke", seed=7, **kwargs):
    return MaxScheduler(
        _specs(workload=workload, seed=seed),
        mturk_car_latency(),
        seed=seed,
        journal=journal,
        **kwargs,
    )


def _faulty_kwargs():
    return {
        "fault_profile": fault_profile_by_name("outages"),
        "retry_policy": RetryPolicy(),
    }


class TestJournalWriting:
    def test_journaled_run_matches_unjournaled(self, tmp_path):
        baseline = _scheduler().run()
        with SchedulerJournal.create(tmp_path / "run.jsonl") as journal:
            report = _scheduler(journal=journal).run()
        assert report == baseline

    def test_journal_is_line_delimited_json(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with SchedulerJournal.create(path) as journal:
            _scheduler(journal=journal).run()
        lines = path.read_text(encoding="utf-8").splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["record"] == "header"
        assert records[0]["payload"]["version"] == JOURNAL_VERSION
        assert records[-1]["record"] == "complete"
        assert [rec["seq"] for rec in records] == list(range(len(records)))
        kinds = {rec["record"] for rec in records}
        assert {"admit", "plan", "round_posted", "answers_collected",
                "finalize", "snapshot"} <= kinds

    def test_snapshot_interval_thins_snapshots(self, tmp_path):
        dense = tmp_path / "dense.jsonl"
        sparse = tmp_path / "sparse.jsonl"
        with SchedulerJournal.create(dense, snapshot_interval=1) as journal:
            _scheduler(journal=journal, workload="steady", seed=3).run()
        with SchedulerJournal.create(sparse, snapshot_interval=5) as journal:
            _scheduler(journal=journal, workload="steady", seed=3).run()

        def n_snapshots(path):
            return sum(
                1
                for line in path.read_text(encoding="utf-8").splitlines()
                if json.loads(line)["record"] == "snapshot"
            )

        assert n_snapshots(sparse) < n_snapshots(dense)

    def test_rejects_writes_after_close(self, tmp_path):
        journal = SchedulerJournal.create(tmp_path / "run.jsonl")
        journal.close()
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            journal.record("admit", {})
        journal.close()  # idempotent


class TestRecovery:
    @pytest.mark.parametrize("crash_after", [0, 1, 3])
    def test_recovery_is_bit_identical_under_faults(self, tmp_path, crash_after):
        baseline = _scheduler(**_faulty_kwargs()).run()
        path = tmp_path / "crash.jsonl"
        journal = SchedulerJournal.create(path)
        victim = _scheduler(journal=journal, **_faulty_kwargs())
        steps = 0
        while steps < crash_after and victim.step():
            steps += 1
        journal.close()
        recovered = recover_scheduler(path)
        report = recovered.run()
        recovered.journal.close()
        assert report == baseline

    def test_recovery_with_sparse_snapshots_replays_lost_ticks(self, tmp_path):
        baseline = _scheduler(workload="steady", seed=3).run()
        path = tmp_path / "sparse.jsonl"
        journal = SchedulerJournal.create(path, snapshot_interval=5)
        victim = _scheduler(journal=journal, workload="steady", seed=3)
        steps = 0
        while steps < 3 and victim.step():
            steps += 1
        journal.close()
        recovered = recover_scheduler(path)
        # The last snapshot is older than the crash point; the lost ticks
        # must be replayed deterministically.
        assert recovered.ticks < steps
        report = recovered.run()
        recovered.journal.close()
        assert report == baseline

    def test_recovered_run_is_itself_recoverable(self, tmp_path):
        """The resumed journal must support a second crash/recover cycle."""
        baseline = _scheduler().run()
        path = tmp_path / "twice.jsonl"
        journal = SchedulerJournal.create(path)
        first = _scheduler(journal=journal)
        first.step()
        journal.close()
        second = recover_scheduler(path)
        second.step()
        second.journal.close()
        third = recover_scheduler(path)
        report = third.run()
        third.journal.close()
        assert report == baseline

    def test_recover_without_resume_leaves_journal_untouched(self, tmp_path):
        path = tmp_path / "frozen.jsonl"
        journal = SchedulerJournal.create(path)
        victim = _scheduler(journal=journal)
        victim.step()
        journal.close()
        before = path.read_bytes()
        recovered = recover_scheduler(path, resume_journal=False)
        assert recovered.journal is None
        recovered.run()
        assert path.read_bytes() == before

    def test_recovery_preserves_breaker_and_fault_config(self, tmp_path):
        kwargs = dict(
            _faulty_kwargs(),
            breaker_config=CircuitBreakerConfig(failure_threshold=2),
        )
        baseline = _scheduler(seed=11, **kwargs).run()
        path = tmp_path / "breaker.jsonl"
        journal = SchedulerJournal.create(path)
        victim = _scheduler(journal=journal, seed=11, **kwargs)
        for _ in range(2):
            victim.step()
        journal.close()
        recovered = recover_scheduler(path)
        assert recovered.breaker is not None
        report = recovered.run()
        recovered.journal.close()
        assert report == baseline

    def test_recovery_counts_metric(self, tmp_path):
        path = tmp_path / "metric.jsonl"
        journal = SchedulerJournal.create(path)
        _scheduler(journal=journal).run()
        journal.close()
        counter = get_registry().counter("service.recoveries")
        before = counter.value
        recover_scheduler(path, resume_journal=False)
        assert counter.value == before + 1


class TestCorruption:
    def _journal_after_steps(self, tmp_path, steps=2):
        path = tmp_path / "base.jsonl"
        journal = SchedulerJournal.create(path)
        victim = _scheduler(journal=journal)
        for _ in range(steps):
            victim.step()
        journal.close()
        return path

    def test_missing_file_raises_typed_error(self, tmp_path):
        with pytest.raises(JournalCorruptError):
            recover_scheduler(tmp_path / "nope.jsonl")

    def test_empty_file_raises_typed_error(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(JournalCorruptError):
            recover_scheduler(path)

    def test_garbage_header_raises_typed_error(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text('{"record": "not-a-header", "seq": 0}\n')
        with pytest.raises(JournalCorruptError):
            recover_scheduler(path)

    def test_truncated_last_record_recovers_from_last_snapshot(self, tmp_path):
        baseline = _scheduler().run()
        path = self._journal_after_steps(tmp_path)
        text = path.read_text(encoding="utf-8")
        # Chop the last record mid-line, as a crash during a write would.
        path.write_text(text[: len(text) - 17], encoding="utf-8")
        contents = read_journal(path)
        assert contents.tail_corrupt
        recovered = recover_scheduler(path, resume_journal=False)
        assert recovered.run() == baseline

    def test_garbage_tail_recovers_from_last_snapshot(self, tmp_path):
        baseline = _scheduler().run()
        path = self._journal_after_steps(tmp_path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write("\x00\x00 not json at all\n")
        contents = read_journal(path)
        assert contents.tail_corrupt
        recovered = recover_scheduler(path, resume_journal=False)
        assert recovered.run() == baseline

    def test_unterminated_final_line_is_treated_as_truncated(self, tmp_path):
        path = self._journal_after_steps(tmp_path)
        text = path.read_text(encoding="utf-8")
        assert text.endswith("\n")
        path.write_text(text.rstrip("\n"), encoding="utf-8")
        # The final record parses as JSON, but without its newline it may
        # be a partial write — the reader must not trust it.
        assert read_journal(path).tail_corrupt

    def test_no_intact_snapshot_raises_typed_error(self, tmp_path):
        path = self._journal_after_steps(tmp_path)
        lines = path.read_text(encoding="utf-8").splitlines()
        kept = [
            line
            for line in lines
            if json.loads(line)["record"] != "snapshot"
        ]
        path.write_text("\n".join(kept) + "\n", encoding="utf-8")
        with pytest.raises(JournalCorruptError, match="snapshot"):
            recover_scheduler(path)

    def test_corruption_errors_never_leak_json_tracebacks(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text("{not json\n", encoding="utf-8")
        try:
            recover_scheduler(path)
        except JournalCorruptError:
            pass
        else:  # pragma: no cover - defensive
            pytest.fail("expected JournalCorruptError")

    def test_resume_requires_existing_file(self, tmp_path):
        with pytest.raises(JournalCorruptError):
            SchedulerJournal.resume(tmp_path / "absent.jsonl")


class TestHeaderRoundTrip:
    def test_header_rebuilds_equivalent_scheduler(self, tmp_path):
        path = tmp_path / "header.jsonl"
        journal = SchedulerJournal.create(path)
        kwargs = dict(
            _faulty_kwargs(),
            breaker_config=CircuitBreakerConfig(
                failure_threshold=2, cooldown_seconds=900.0
            ),
        )
        original = _scheduler(journal=journal, **kwargs)
        journal.close()
        header = read_journal(path).header
        rebuilt = scheduler_from_header(header)
        assert rebuilt.seed == original.seed
        assert rebuilt.config == original.config
        assert rebuilt.breaker.config == original.breaker.config
        # Both untouched schedulers must then run identically.
        assert rebuilt.run() == _scheduler(**kwargs).run()

    def test_header_with_missing_keys_raises_typed_error(self, tmp_path):
        with pytest.raises(JournalCorruptError):
            scheduler_from_header({"version": JOURNAL_VERSION})


class TestMidRoundCheckpoint:
    def test_snapshot_captures_pending_questions(self, tmp_path):
        """Sessions awaiting answers serialize their pending pairs."""
        path = tmp_path / "pending.jsonl"
        journal = SchedulerJournal.create(path, snapshot_interval=1)
        victim = _scheduler(journal=journal, **_faulty_kwargs())
        # After two ticks of the outages profile some sessions are
        # mid-round (questions swallowed by a fault, answers outstanding);
        # the snapshot must reproduce the exact pending state.
        victim.step()
        victim.step()
        journal.close()
        contents = read_journal(path)
        active = contents.last_snapshot["active"]
        assert any(
            entry["session"]["pending"] for entry in active
        ), "expected a mid-round session after two faulty ticks"
        recovered = recover_scheduler(path, resume_journal=False)
        for entry in active:
            query = next(
                q
                for q in recovered._active
                if q.spec.query_id == entry["spec"]["query_id"]
            )
            got = (
                [list(pair) for pair in query.session.pending]
                if query.session.pending is not None
                else None
            )
            want = entry["session"]["pending"]
            assert got == want
