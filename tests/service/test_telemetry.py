"""Tests for per-tick scheduler telemetry (``repro.service.telemetry``)."""

import json

import pytest

from repro.core.latency import mturk_car_latency
from repro.errors import InvalidParameterError
from repro.obs.metrics import get_registry
from repro.service import (
    MaxScheduler,
    SchedulerJournal,
    generate_workload,
    workload_by_name,
)
from repro.service.telemetry import (
    TickSample,
    follow_samples,
    samples_from_journal,
    samples_from_records,
)


def _scheduler(journal=None, workload="smoke", seed=0) -> MaxScheduler:
    specs = generate_workload(workload_by_name(workload), seed=seed)
    return MaxScheduler(
        specs, mturk_car_latency(), seed=seed, journal=journal
    )


class TestTickSample:
    def test_round_trips_through_dict(self):
        scheduler = _scheduler()
        scheduler.run()
        sample = scheduler.tick_history[-1]
        assert TickSample.from_dict(sample.to_dict()) == sample

    def test_missing_field_is_a_clear_error(self):
        with pytest.raises(InvalidParameterError):
            TickSample.from_dict({"tick": 1})

    def test_queue_depth_is_waiting_plus_backlog(self):
        scheduler = _scheduler(workload="burst")
        scheduler.run()
        for sample in scheduler.tick_history:
            assert sample.queue_depth == sample.waiting + sample.backlog


class TestSchedulerSampling:
    def test_one_sample_per_tick(self):
        scheduler = _scheduler()
        report = scheduler.run()
        assert len(scheduler.tick_history) == report.ticks
        assert [s.tick for s in scheduler.tick_history] == list(
            range(1, report.ticks + 1)
        )

    def test_final_sample_matches_report(self):
        scheduler = _scheduler(workload="steady")
        report = scheduler.run()
        last = scheduler.tick_history[-1]
        assert last.questions_total == report.questions_posted
        assert last.shared_rounds == report.shared_rounds
        assert last.completed == len(report.completed)
        assert last.degraded == len(report.degraded)
        assert last.shed == len(report.shed)
        assert last.now == report.makespan

    def test_gauges_track_queue_state(self):
        registry = get_registry()
        registry.reset()
        scheduler = _scheduler()
        scheduler.run()
        snapshot = registry.snapshot()
        # Drained run: both gauges end at zero (and were set at all).
        assert snapshot["service.queue_depth"]["value"] == 0
        assert snapshot["service.active_queries"]["value"] == 0
        assert (
            snapshot["service.round_latency"]["count"]
            == scheduler._shared_rounds
        )

    def test_on_tick_callback_sees_every_sample(self):
        seen = []
        scheduler = _scheduler()
        scheduler.run(on_tick=seen.append)
        assert seen == list(scheduler.tick_history)


class TestJournalReplay:
    def test_journal_replay_equals_live_history(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        scheduler = _scheduler(journal=SchedulerJournal.create(path))
        scheduler.run()
        scheduler.journal.close()
        assert samples_from_journal(path) == list(scheduler.tick_history)

    def test_duplicate_ticks_collapse_to_last(self):
        first = {"record": "tick", "payload": _tick_payload(1, questions=5)}
        replayed = {"record": "tick", "payload": _tick_payload(1, questions=5)}
        second = {"record": "tick", "payload": _tick_payload(2, questions=9)}
        samples = samples_from_records([first, second, replayed])
        assert [s.tick for s in samples] == [1, 2]
        assert samples[0].questions == 5

    def test_non_tick_records_are_ignored(self):
        samples = samples_from_records(
            [{"record": "admit", "payload": {"query_id": 1}}]
        )
        assert samples == []


class TestFollowSamples:
    def test_follows_to_completion(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        scheduler = _scheduler(journal=SchedulerJournal.create(path))
        scheduler.run()
        scheduler.journal.close()
        followed = list(
            follow_samples(path, poll_interval=0.01, timeout=5.0)
        )
        assert followed == list(scheduler.tick_history)

    def test_times_out_without_completion(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text(
            json.dumps({"record": "tick", "payload": _tick_payload(1)}) + "\n",
            encoding="utf-8",
        )
        ticks = [0.0]

        def clock():
            ticks[0] += 1.0
            return ticks[0]

        samples = list(
            follow_samples(
                path,
                poll_interval=0.01,
                timeout=3.0,
                _clock=clock,
                _sleep=lambda _s: None,
            )
        )
        assert [s.tick for s in samples] == [1]

    def test_rejects_bad_poll_interval(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            next(follow_samples(tmp_path / "j.jsonl", poll_interval=0))


class TestRecoverySampling:
    def test_recovered_run_resamples_consistently(self, tmp_path):
        from repro.service import recover_scheduler

        path = tmp_path / "journal.jsonl"
        baseline = _scheduler()
        baseline.run()

        victim = _scheduler(
            journal=SchedulerJournal.create(path, snapshot_interval=1)
        )
        victim.step()
        victim.step()
        victim.journal.close()  # kill between ticks

        recovered = recover_scheduler(path)
        recovered.run()
        recovered.journal.close()
        # The journal's deduped tick series equals the uninterrupted
        # run's — replayed ticks overwrite their first appearance with
        # bit-identical samples.
        assert samples_from_journal(path) == list(baseline.tick_history)


def _tick_payload(tick: int, **overrides) -> dict:
    payload = dict(
        tick=tick,
        now=10.0 * tick,
        active=1,
        waiting=0,
        backlog=0,
        breaker="none",
        cache_hit_rate=0.0,
        round_latency=1.0,
        questions=1,
        questions_total=tick,
        shared_rounds=tick,
        completed=0,
        degraded=0,
        shed=0,
        deferred=False,
    )
    payload.update(overrides)
    return payload
