"""Tests for the batching policies (packing order only)."""

from types import SimpleNamespace

import pytest

from repro.errors import InvalidParameterError
from repro.service import (
    FIFOPolicy,
    FairSharePolicy,
    PriorityPolicy,
    available_policies,
    policy_by_name,
)


def query(seq, priority=0, times_scheduled=0):
    """A minimal stand-in carrying the attributes policies consume."""
    return SimpleNamespace(
        seq=seq,
        spec=SimpleNamespace(priority=priority),
        times_scheduled=times_scheduled,
    )


class TestOrdering:
    def test_fifo_is_admission_order(self):
        queries = [query(2), query(0), query(1)]
        assert [q.seq for q in FIFOPolicy().order(queries)] == [0, 1, 2]

    def test_priority_ranks_urgent_first(self):
        queries = [query(0, priority=0), query(1, priority=2), query(2, priority=1)]
        assert [q.seq for q in PriorityPolicy().order(queries)] == [1, 2, 0]

    def test_priority_ties_break_by_admission(self):
        queries = [query(3, priority=1), query(1, priority=1), query(2, priority=1)]
        assert [q.seq for q in PriorityPolicy().order(queries)] == [1, 2, 3]

    def test_fair_share_prefers_least_scheduled(self):
        queries = [
            query(0, times_scheduled=5),
            query(1, times_scheduled=0),
            query(2, times_scheduled=2),
        ]
        assert [q.seq for q in FairSharePolicy().order(queries)] == [1, 2, 0]

    def test_fair_share_ties_break_by_admission(self):
        queries = [query(2, times_scheduled=1), query(0, times_scheduled=1)]
        assert [q.seq for q in FairSharePolicy().order(queries)] == [0, 2]

    def test_order_does_not_mutate_input(self):
        queries = [query(1), query(0)]
        FIFOPolicy().order(queries)
        assert [q.seq for q in queries] == [1, 0]


class TestRegistry:
    def test_available_policies(self):
        assert available_policies() == ["fair", "fifo", "priority"]

    def test_lookup_is_case_insensitive(self):
        assert isinstance(policy_by_name("FIFO"), FIFOPolicy)
        assert isinstance(policy_by_name("Fair"), FairSharePolicy)

    def test_unknown_policy_lists_available(self):
        with pytest.raises(InvalidParameterError, match="fair"):
            policy_by_name("round-robin")
