"""Property tests for the attribution invariant.

The contract (docs/observability.md): for every completed query the
waterfall chunks tile ``[arrival, completion]`` exactly, so the
per-component durations sum — bitwise, no epsilon — to the query's
end-to-end latency.  And recording spans must not perturb the service:
a traced run's report, minus the attribution table, equals the
untraced run's report bit for bit.

Hypothesis drives random workloads through fault, retry, and breaker
configurations to hunt for tilings the hand-written tests miss.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.latency import LinearLatency
from repro.crowd.breaker import CircuitBreakerConfig
from repro.crowd.faults import FaultProfile, RetryPolicy
from repro.obs.attribution import waterfalls_from_records
from repro.obs.tracer import RecordingTracer, use_tracer
from repro.service import MaxScheduler, QuerySpec

LATENCY = LinearLatency(239, 0.06)

query_specs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=25),      # n_elements
        st.integers(min_value=0, max_value=120),     # extra budget over n
        st.floats(min_value=0.0, max_value=4000.0,   # arrival time
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=5,
).map(
    lambda rows: [
        QuerySpec(
            query_id=i,
            n_elements=n,
            budget=(0 if n == 1 else n + extra),
            arrival_time=arrival,
        )
        for i, (n, extra, arrival) in enumerate(rows)
    ]
)

fault_profiles = st.one_of(
    st.none(),
    st.builds(
        FaultProfile,
        abandon_prob=st.floats(min_value=0.0, max_value=0.3),
        drop_prob=st.floats(min_value=0.0, max_value=0.3),
        outage_prob=st.floats(min_value=0.0, max_value=0.2),
    ),
)

breaker_configs = st.one_of(
    st.none(),
    st.builds(
        CircuitBreakerConfig,
        failure_threshold=st.integers(min_value=1, max_value=3),
        cooldown_seconds=st.floats(min_value=60.0, max_value=1200.0),
    ),
)


def _run(specs, seed, fault_profile, breaker_config, tracer=None):
    retry_policy = None
    if fault_profile is not None:
        retry_policy = RetryPolicy(max_attempts=3, base_backoff=30.0)
    scheduler = MaxScheduler(
        specs,
        LATENCY,
        seed=seed,
        fault_profile=fault_profile,
        retry_policy=retry_policy,
        breaker_config=breaker_config,
    )
    if tracer is None:
        return scheduler.run()
    with use_tracer(tracer):
        return scheduler.run()


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    specs=query_specs,
    seed=st.integers(min_value=0, max_value=2**16),
    fault_profile=fault_profiles,
    breaker_config=breaker_configs,
)
def test_waterfalls_tile_latency_exactly(
    specs, seed, fault_profile, breaker_config
):
    tracer = RecordingTracer()
    report = _run(specs, seed, fault_profile, breaker_config, tracer=tracer)
    waterfalls = waterfalls_from_records(tracer.records)
    assert set(waterfalls) == {s.query_id for s in specs}
    for result in report.results:
        wf = waterfalls[result.spec.query_id]
        wf.validate()
        # Bitwise equality: the tiling *is* the latency, not an estimate.
        assert wf.total == result.latency
        assert wf.chunk_sum == wf.total
        # Per-component floats each round once, so their plain sum may
        # drift by an ulp — that is the only slack allowed anywhere.
        assert sum(wf.components().values()) == pytest.approx(
            wf.total, rel=1e-12, abs=1e-9
        )


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    specs=query_specs,
    seed=st.integers(min_value=0, max_value=2**16),
    fault_profile=fault_profiles,
    breaker_config=breaker_configs,
)
def test_tracing_never_perturbs_the_report(
    specs, seed, fault_profile, breaker_config
):
    untraced = _run(specs, seed, fault_profile, breaker_config)
    traced = _run(
        specs, seed, fault_profile, breaker_config, tracer=RecordingTracer()
    )
    assert untraced.attribution is None
    # Only all-zero-latency workloads (instant trivial queries) produce
    # no chunks at all; anything that took time must be attributed.
    if any(r.latency for r in traced.results):
        assert traced.attribution is not None
    assert dataclasses.replace(traced, attribution=None) == untraced
