"""Scheduler-level multi-backend federation: identity, failover, recovery.

The three load-bearing contracts of the routing layer:

* a **solo fleet is free** — routing through a one-backend fleet is
  bit-identical to posting directly to the platform, in the report *and*
  the trace stream;
* **failover is real** — with one backend of a three-backend fleet in a
  sustained outage, every admitted query still completes, no questions
  are assigned to an open-breaker backend, and per-backend capacity is
  honoured in every routed round (hypothesis hunts over victim/seed);
* **recovery is exact** — a crashed multi-backend run replays the very
  same routing decisions and produces a bit-identical report.
"""

import dataclasses
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.latency import LinearLatency, mturk_car_latency
from repro.crowd.breaker import CircuitBreakerConfig
from repro.crowd.faults import FaultProfile, fault_profile_by_name
from repro.crowd.multibackend import BackendSpec, backend_preset_by_name
from repro.errors import InvalidParameterError
from repro.obs.tracer import RecordingTracer, use_tracer
from repro.service import (
    MaxScheduler,
    QueryState,
    SchedulerJournal,
    ServiceConfig,
    generate_workload,
    read_journal,
    recover_scheduler,
    workload_by_name,
)


def _specs(workload="smoke", seed=7):
    return generate_workload(workload_by_name(workload), seed=seed)


def _scheduler(backends=None, routing="latency", workload="smoke", seed=7,
               **kwargs):
    return MaxScheduler(
        _specs(workload=workload, seed=seed),
        mturk_car_latency(),
        seed=seed,
        config=ServiceConfig(routing=routing),
        backends=backends,
        **kwargs,
    )


def _normalized_trace(tracer):
    """Trace records with wall-clock profiling noise zeroed out.

    ``seconds`` fields (``SpanCompleted``, ``DPTableBuilt``) are the only
    wall-clock (non-simulated) payloads in the stream; everything else
    must match bit for bit.
    """
    normalized = []
    for record in tracer.records:
        event = record.event
        if hasattr(event, "seconds"):
            event = dataclasses.replace(event, seconds=0.0)
        normalized.append((event, record.sim_time))
    return normalized


def _route_records(path):
    """Journaled route payloads, deduplicated by tick (last write wins).

    A recovered run re-journals the ticks between the last snapshot and
    the crash point; the decisions must be identical, so keying by tick
    keeps exactly one record per routed round.
    """
    by_tick = {}
    for record in read_journal(path).records:
        if record["record"] == "route":
            by_tick[record["payload"]["tick"]] = record["payload"]
    return [by_tick[tick] for tick in sorted(by_tick)]


class TestConstruction:
    def test_backends_exclude_legacy_fault_arguments(self):
        fleet = backend_preset_by_name("trio")
        with pytest.raises(InvalidParameterError):
            _scheduler(
                backends=fleet,
                fault_profile=fault_profile_by_name("outages"),
            )
        with pytest.raises(InvalidParameterError):
            _scheduler(
                backends=fleet,
                breaker_config=CircuitBreakerConfig(),
            )

    def test_unknown_routing_policy_is_rejected(self):
        with pytest.raises(InvalidParameterError):
            ServiceConfig(routing="psychic")

    def test_router_property(self):
        assert _scheduler().router is None
        scheduler = _scheduler(backends=backend_preset_by_name("trio"))
        assert [b.name for b in scheduler.router.backends] == [
            "fast", "balanced", "cheap",
        ]


class TestSoloDifferential:
    """Satellite 1: the single-backend router is a no-op, provably."""

    def _traced_run(self, backends=None):
        tracer = RecordingTracer(clock=lambda: 0.0)
        with use_tracer(tracer):
            report = _scheduler(backends=backends).run()
        return report, tracer

    def test_report_and_trace_are_bit_identical(self):
        direct_report, direct_tracer = self._traced_run()
        routed_report, routed_tracer = self._traced_run(
            backends=backend_preset_by_name("solo")
        )
        assert routed_report == direct_report
        assert _normalized_trace(routed_tracer) == _normalized_trace(
            direct_tracer
        )

    def test_solo_fleet_emits_no_backend_spans_or_route_records(
        self, tmp_path
    ):
        path = tmp_path / "solo.jsonl"
        tracer = RecordingTracer(clock=lambda: 0.0)
        with use_tracer(tracer):
            with SchedulerJournal.create(path) as journal:
                _scheduler(
                    backends=backend_preset_by_name("solo"), journal=journal
                ).run()
        assert not _route_records(path)
        backend_spans = [
            r.event
            for r in tracer.records
            if getattr(r.event, "name", None) == "backend"
        ]
        assert not backend_spans


class TestMultiBackendRuns:
    def test_trio_completes_with_route_records_and_backend_spans(
        self, tmp_path
    ):
        path = tmp_path / "trio.jsonl"
        tracer = RecordingTracer(clock=lambda: 0.0)
        with use_tracer(tracer):
            with SchedulerJournal.create(path) as journal:
                scheduler = _scheduler(
                    backends=backend_preset_by_name("trio"), journal=journal
                )
                report = scheduler.run()
        assert all(r.state is QueryState.COMPLETED for r in report.results)

        routes = _route_records(path)
        assert len(routes) >= 1
        for payload in routes:
            assert set(payload["assignments"]) == {"fast", "balanced", "cheap"}
            assert set(payload["states"]) == {"fast", "balanced", "cheap"}
        routed = sum(
            sum(p["assignments"].values()) for p in routes
        )
        assert routed == report.questions_posted

        spans = [
            r.event
            for r in tracer.records
            if r.event.kind == "SpanOpened" and r.event.name == "backend"
        ]
        assert spans
        for span in spans:
            assert span.parent_id is not None
            assert span.span_id.startswith(span.parent_id + "/")

        summary = {row["name"]: row for row in scheduler.router.summary()}
        assert (
            sum(row["questions_posted"] for row in summary.values())
            == report.questions_posted
        )

    def test_fleet_accounting_reaches_the_registry(self):
        from repro.obs import get_registry
        from repro.obs.metrics import labeled_name

        get_registry().reset()
        scheduler = _scheduler(backends=backend_preset_by_name("trio"))
        scheduler.run()
        registry = get_registry()
        for row in scheduler.router.summary():
            posted = registry.counter(
                labeled_name(
                    "backend.questions_posted", {"backend": row["name"]}
                )
            )
            assert posted.value == row["questions_posted"]

    def test_capacity_starved_fleet_still_completes(self):
        tight = [
            dataclasses.replace(spec, capacity=20)
            for spec in backend_preset_by_name("trio")
        ]
        baseline = _scheduler(backends=backend_preset_by_name("trio")).run()
        report = _scheduler(backends=tight).run()
        # Capacity deferral chunks the rounds but must not burn retry
        # attempts or degrade anything.
        assert all(r.state is QueryState.COMPLETED for r in report.results)
        assert len(report.completed) == len(baseline.completed)
        assert report.questions_posted == baseline.questions_posted

    def test_weighted_price_spends_no_more_than_latency(self):
        costs = {}
        for policy in ("latency", "weighted-price"):
            scheduler = _scheduler(
                backends=backend_preset_by_name("trio"), routing=policy
            )
            scheduler.run()
            costs[policy] = sum(
                row["cost"] for row in scheduler.router.summary()
            )
        assert costs["weighted-price"] <= costs["latency"]


class TestMultiBackendRecovery:
    """The journal must replay routing decisions bit-identically."""

    @pytest.mark.parametrize("crash_after", [1, 3])
    def test_recovered_run_matches_report_and_routes(
        self, tmp_path, crash_after
    ):
        fleet = backend_preset_by_name("outage-trio")
        baseline_path = tmp_path / "baseline.jsonl"
        with SchedulerJournal.create(baseline_path) as journal:
            baseline = _scheduler(
                backends=fleet, workload="steady", seed=3, journal=journal
            ).run()

        crash_path = tmp_path / "crash.jsonl"
        journal = SchedulerJournal.create(crash_path)
        victim = _scheduler(
            backends=fleet, workload="steady", seed=3, journal=journal
        )
        steps = 0
        while steps < crash_after and victim.step():
            steps += 1
        journal.close()

        recovered = recover_scheduler(crash_path)
        assert recovered.router is not None
        report = recovered.run()
        recovered.journal.close()
        assert report == baseline
        assert _route_records(crash_path) == _route_records(baseline_path)

    def test_header_restores_the_exact_fleet(self, tmp_path):
        fleet = backend_preset_by_name("outage-trio")
        path = tmp_path / "fleet.jsonl"
        journal = SchedulerJournal.create(path)
        victim = _scheduler(backends=fleet, journal=journal)
        victim.step()
        journal.close()
        recovered = recover_scheduler(path, resume_journal=False)
        assert [b.spec for b in recovered.router.backends] == fleet

    def test_snapshot_fleet_mismatch_is_corruption(self, tmp_path):
        from repro.errors import JournalCorruptError
        from repro.service import restore_scheduler_state

        path = tmp_path / "mismatch.jsonl"
        journal = SchedulerJournal.create(path)
        victim = _scheduler(
            backends=backend_preset_by_name("trio"), journal=journal
        )
        victim.step()
        journal.close()
        contents = read_journal(path)
        impostor = _scheduler(backends=backend_preset_by_name("duo"))
        snapshot = dict(contents.last_snapshot)
        with pytest.raises(JournalCorruptError):
            restore_scheduler_state(impostor, snapshot)


def _failover_fleet(victim: int):
    """Three capacity-bounded backends; *victim* is dark for the whole run.

    Capacities are deliberately tight (a round outgrows any one backend)
    so every backend — whichever one is the victim — carries real load
    before and after the breaker trips.
    """
    breaker = CircuitBreakerConfig(
        failure_threshold=1, cooldown_seconds=10**8, probe_successes=1
    )
    specs = [
        BackendSpec(
            name="alpha",
            latency=LinearLatency(delta=150.0, alpha=0.20),
            capacity=24,
            price_per_question=0.05,
            breaker=breaker,
        ),
        BackendSpec(
            name="beta",
            latency=mturk_car_latency(),
            capacity=24,
            price_per_question=0.02,
            breaker=breaker,
        ),
        BackendSpec(
            name="gamma",
            latency=LinearLatency(delta=320.0, alpha=0.10),
            capacity=24,
            price_per_question=0.005,
            breaker=breaker,
        ),
    ]
    specs[victim] = dataclasses.replace(
        specs[victim],
        fault_profile=FaultProfile(
            outage_window=(0.0, 10**9),
            outage_detection_time=120.0,
        ),
    )
    return specs


class TestFailoverProperty:
    """ISSUE acceptance: sustained outage of any one backend is absorbed."""

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        victim=st.integers(min_value=0, max_value=2),
        seed=st.integers(min_value=0, max_value=5),
    )
    def test_sustained_single_backend_outage_is_absorbed(self, victim, seed):
        fleet = _failover_fleet(victim)
        capacities = {spec.name: spec.capacity for spec in fleet}
        victim_name = fleet[victim].name
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "failover.jsonl"
            with SchedulerJournal.create(path) as journal:
                scheduler = MaxScheduler(
                    _specs(seed=seed),
                    mturk_car_latency(),
                    seed=seed,
                    config=ServiceConfig(),
                    backends=fleet,
                    journal=journal,
                )
                report = scheduler.run()
            routes = _route_records(path)

        # Every admitted query completes despite the dead backend.
        assert report.results, "workload must admit at least one query"
        for result in report.results:
            assert result.state is QueryState.COMPLETED

        assert routes, "a three-backend run must journal route records"
        open_seen = False
        for payload in routes:
            for name, assigned in payload["assignments"].items():
                # Capacity is respected in every single routed round.
                assert assigned <= capacities[name]
                # No questions ride on an open circuit.
                if payload["states"][name] == "open":
                    assert assigned == 0
            open_seen = open_seen or payload["states"][victim_name] == "open"
        # The victim's breaker actually tripped (the scenario is live).
        assert open_seen
        assert scheduler.router.backend(victim_name).outages >= 1
