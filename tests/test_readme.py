"""Doc-sync tests: the README's claims and code must stay true."""

import io
import re
from contextlib import redirect_stdout
from pathlib import Path

README = Path(__file__).resolve().parent.parent / "README.md"


def python_blocks():
    text = README.read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadmeCode:
    def test_quickstart_block_runs_and_matches_claims(self):
        blocks = python_blocks()
        assert blocks, "README lost its python quickstart block"
        quickstart = blocks[0]
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            exec(compile(quickstart, "<README quickstart>", "exec"), {})
        output = buffer.getvalue()
        # The commented expectations in the block are real outputs.
        assert "(2250, 1225)" in output
        assert "(500, 50, 1)" in output
        assert "correct, singleton" in output


class TestReadmeClaims:
    def test_examples_table_lists_real_files(self):
        text = README.read_text(encoding="utf-8")
        examples_dir = README.parent / "examples"
        for name in re.findall(r"`(\w+\.py)`", text):
            if name in ("setup.py",):
                continue
            assert (examples_dir / name).exists(), f"README references {name}"

    def test_docs_referenced_exist(self):
        text = README.read_text(encoding="utf-8")
        for relative in ("docs/api.md", "docs/theory.md", "docs/extending.md",
                         "EXPERIMENTS.md"):
            if relative in text:
                assert (README.parent / relative).exists()

    def test_cli_commands_in_readme_are_registered(self):
        from repro.cli import _build_parser

        parser = _build_parser()
        text = README.read_text(encoding="utf-8")
        # Minimal required positionals per subcommand, so parse_args only
        # fails on commands the parser does not know.
        required = {
            "experiment": ["fig15"],
            "top": ["run.jsonl"],
            "metrics-export": ["snap.json"],
            "bench-check": ["baseline.json", "current"],
            "bench-history": ["bench-artifacts"],
            "explain": ["--trace", "trace.jsonl"],
            "health": ["run.jsonl"],
            "diagnose": ["run.jsonl", "--output", "bundle"],
        }
        for command in re.findall(r"tdp-repro ([\w-]+)", text):
            # argparse raises SystemExit(2) for unknown subcommands.
            try:
                parser.parse_args([command] + required.get(command, []))
            except SystemExit as error:
                assert error.code != 2, f"README shows unknown command {command}"
