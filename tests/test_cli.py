"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "tDP" in out
        assert "Tournament" in out
        assert "fig15" in out


class TestAllocate:
    def test_default_workload(self, capsys):
        assert main(["allocate"]) == 0
        out = capsys.readouterr().out
        assert "(2250, 1225)" in out
        assert "(500, 50, 1)" in out

    def test_heuristic_allocator(self, capsys):
        assert main(
            ["allocate", "--elements", "24", "--budget", "51", "--allocator", "HE"]
        ) == 0
        assert "(12, 6, 33)" in capsys.readouterr().out

    def test_power_law_latency(self, capsys):
        assert main(
            [
                "allocate",
                "--elements",
                "100",
                "--budget",
                "2000",
                "--exponent",
                "2.0",
            ]
        ) == 0
        assert "questions used" in capsys.readouterr().out

    def test_infeasible_budget_is_reported(self, capsys):
        assert main(["allocate", "--elements", "100", "--budget", "5"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_allocator(self, capsys):
        assert main(["allocate", "--allocator", "magic"]) == 2
        assert "unknown allocator" in capsys.readouterr().err


class TestSolve:
    def test_end_to_end(self, capsys):
        assert main(
            [
                "solve",
                "--elements",
                "30",
                "--budget",
                "120",
                "--seed",
                "5",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "MAX=" in out
        assert "correct" in out

    def test_ct25_selector(self, capsys):
        assert main(
            [
                "solve",
                "--elements",
                "30",
                "--budget",
                "200",
                "--selector",
                "CT25",
                "--allocator",
                "uHF",
            ]
        ) == 0
        assert "round" in capsys.readouterr().out


class TestAdaptiveSolve:
    def test_adaptive_flag(self, capsys):
        assert main(
            ["solve", "--elements", "30", "--budget", "120", "--adaptive"]
        ) == 0
        out = capsys.readouterr().out
        assert "adaptive" in out
        assert "MAX=" in out


class TestSimulate:
    def test_aggregate_output(self, capsys):
        assert main(
            [
                "simulate",
                "--elements",
                "20",
                "--budget",
                "100",
                "--runs",
                "5",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "singleton rate:       100%" in out
        assert "accuracy:             100%" in out

    def test_ct25_combo(self, capsys):
        assert main(
            [
                "simulate",
                "--elements",
                "20",
                "--budget",
                "100",
                "--runs",
                "3",
                "--allocator",
                "uHF",
                "--selector",
                "CT25",
            ]
        ) == 0
        assert "mean latency" in capsys.readouterr().out


class TestServe:
    def test_smoke_workload(self, capsys):
        assert main(["serve", "--workload", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "workload smoke (6 queries)" in out
        assert "plan cache:" in out
        assert "latency p50/p95:" in out

    def test_per_query_listing(self, capsys):
        assert main(
            ["serve", "--workload", "smoke", "--per-query"]
        ) == 0
        assert "query 0:" in capsys.readouterr().out

    def test_queries_override_and_policy(self, capsys):
        assert main(
            [
                "serve",
                "--workload",
                "steady",
                "--queries",
                "5",
                "--scheduling",
                "priority",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "(5 queries)" in out
        assert "policy priority" in out

    def test_faulted_serve_defaults_to_retries(self, capsys):
        assert main(
            ["serve", "--workload", "smoke", "--faults", "lossy"]
        ) == 0
        out = capsys.readouterr().out
        assert "faults=lossy" in out
        assert "retry x3" in out

    def test_serve_runs_are_reproducible(self, capsys):
        assert main(["serve", "--workload", "smoke", "--seed", "9"]) == 0
        first = capsys.readouterr().out
        assert main(["serve", "--workload", "smoke", "--seed", "9"]) == 0
        assert capsys.readouterr().out == first

    def test_unknown_workload(self, capsys):
        assert main(["serve", "--workload", "tsunami"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_shed_overload(self, capsys):
        assert main(
            [
                "serve",
                "--workload",
                "burst",
                "--queries",
                "10",
                "--max-active",
                "1",
                "--queue-depth",
                "1",
                "--overload",
                "shed",
            ]
        ) == 0
        assert "8 shed" in capsys.readouterr().out


class TestExperiment:
    def test_small_fig15(self, capsys):
        assert main(["experiment", "fig15", "--scale", "small"]) == 0
        assert "Running time of tDP" in capsys.readouterr().out

    def test_json_format(self, capsys):
        import json

        assert main(
            ["experiment", "fig15", "--scale", "small", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["name"] == "fig15"

    def test_markdown_format(self, capsys):
        assert main(
            ["experiment", "fig15", "--scale", "small", "--format", "markdown"]
        ) == 0
        assert "### fig15" in capsys.readouterr().out

    def test_csv_format(self, capsys):
        assert main(
            ["experiment", "fig15", "--scale", "small", "--format", "csv"]
        ) == 0
        assert capsys.readouterr().out.startswith("c0,")

    def test_plot_flag(self, capsys):
        assert main(
            ["experiment", "fig15", "--scale", "small", "--plot"]
        ) == 0
        out = capsys.readouterr().out
        assert "x: c0" in out or "#" in out

    def test_output_file(self, capsys, tmp_path):
        target = tmp_path / "out.json"
        assert main(
            [
                "experiment",
                "fig15",
                "--scale",
                "small",
                "--format",
                "json",
                "--output",
                str(target),
            ]
        ) == 0
        assert "wrote 1 table(s)" in capsys.readouterr().out
        assert target.exists()

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99", "--scale", "small"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_scale(self, capsys):
        assert main(["experiment", "fig15", "--scale", "huge"]) == 2
        assert "unknown scale" in capsys.readouterr().err


class TestArgparse:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestServeJournal:
    def test_journaled_serve_writes_a_journal(self, capsys, tmp_path):
        journal = tmp_path / "serve.jsonl"
        assert main(
            ["serve", "--workload", "smoke", "--journal", str(journal)]
        ) == 0
        out = capsys.readouterr().out
        assert "journal:" in out
        assert journal.exists()
        assert journal.stat().st_size > 0

    def test_resume_finishes_and_matches_the_original(self, capsys, tmp_path):
        journal = tmp_path / "serve.jsonl"
        assert main(
            ["serve", "--workload", "smoke", "--seed", "4", "--journal",
             str(journal)]
        ) == 0
        original = capsys.readouterr().out
        assert main(["serve", "--journal", str(journal), "--resume"]) == 0
        resumed = capsys.readouterr().out
        assert "resumed" in resumed
        # The report block (everything from "queries:") must be identical.
        tail = original[original.index("queries:"):]
        assert tail in resumed

    def test_resume_requires_journal_path(self, capsys):
        assert main(["serve", "--resume"]) == 2
        assert "--journal" in capsys.readouterr().err

    def test_resume_of_missing_journal_is_a_clean_error(self, capsys, tmp_path):
        assert main(
            ["serve", "--resume", "--journal", str(tmp_path / "absent.jsonl")]
        ) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    def test_breaker_flag_accepted(self, capsys):
        assert main(
            [
                "serve",
                "--workload",
                "smoke",
                "--seed",
                "11",
                "--faults",
                "sustained",
                "--breaker",
                "--breaker-threshold",
                "2",
            ]
        ) == 0
        assert "6 completed" in capsys.readouterr().out


class TestChaos:
    def test_explicit_crash_points(self, capsys):
        assert main(
            ["chaos", "--workload", "smoke", "--seed", "7",
             "--crash-points", "0,1"]
        ) == 0
        out = capsys.readouterr().out
        assert "kill after step" in out
        assert "all recoveries bit-identical" in out

    def test_seeded_crashes_under_faults(self, capsys):
        assert main(
            ["chaos", "--workload", "smoke", "--seed", "7", "--faults",
             "outages", "--crashes", "2"]
        ) == 0
        assert "all recoveries bit-identical" in capsys.readouterr().out

    def test_journal_dir_keeps_the_journals(self, capsys, tmp_path):
        assert main(
            ["chaos", "--workload", "smoke", "--crash-points", "1",
             "--journal-dir", str(tmp_path)]
        ) == 0
        assert (tmp_path / "crash-1.jsonl").exists()

    def test_malformed_crash_points_rejected(self, capsys):
        assert main(["chaos", "--crash-points", "1,x"]) == 2
        assert "comma-separated integers" in capsys.readouterr().err

    def test_sweep_flag(self, capsys):
        assert main(
            ["chaos", "--workload", "smoke", "--seed", "7", "--sweep"]
        ) == 0
        assert "all recoveries bit-identical" in capsys.readouterr().out


class TestDashboard:
    def test_headless_dashboard_prints_final_frame(self, capsys):
        assert main(
            ["serve", "--workload", "smoke", "--seed", "3", "--dashboard"]
        ) == 0
        out = capsys.readouterr().out
        assert "final: tick=" in out
        assert "breaker=" in out
        assert "\x1b[" not in out  # captured stream is not a TTY

    def test_serve_and_top_agree_on_final_counters(self, capsys, tmp_path):
        journal = tmp_path / "serve.jsonl"
        assert main(
            ["serve", "--workload", "smoke", "--seed", "3", "--dashboard",
             "--journal", str(journal)]
        ) == 0
        serve_out = capsys.readouterr().out
        assert main(["top", str(journal)]) == 0
        top_out = capsys.readouterr().out
        serve_final = [l for l in serve_out.splitlines() if l.startswith("final:")]
        top_final = [l for l in top_out.splitlines() if l.startswith("final:")]
        assert len(serve_final) == len(top_final) == 1
        assert serve_final == top_final

    def test_top_follow_stops_at_complete_record(self, capsys, tmp_path):
        journal = tmp_path / "serve.jsonl"
        assert main(
            ["serve", "--workload", "smoke", "--journal", str(journal)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["top", str(journal), "--follow", "--poll", "0.01",
             "--timeout", "5"]
        ) == 0
        assert "final: tick=" in capsys.readouterr().out

    def test_top_missing_journal_is_a_clean_error(self, capsys, tmp_path):
        assert main(["top", str(tmp_path / "absent.jsonl")]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err


class TestMetricsExport:
    def test_serve_metrics_out_writes_openmetrics(self, capsys, tmp_path):
        out_path = tmp_path / "metrics.prom"
        assert main(
            ["serve", "--workload", "smoke", "--metrics-out", str(out_path)]
        ) == 0
        text = out_path.read_text(encoding="utf-8")
        assert text.endswith("# EOF\n")
        assert "service_queue_depth" in text

    def test_metrics_json_then_export(self, capsys, tmp_path):
        snapshot = tmp_path / "metrics.json"
        assert main(
            ["serve", "--workload", "smoke", "--metrics-json", str(snapshot)]
        ) == 0
        assert "wrote metrics snapshot" in capsys.readouterr().out
        assert main(["metrics-export", str(snapshot)]) == 0
        exposition = capsys.readouterr().out
        assert exposition.endswith("# EOF\n")
        assert "_total" in exposition

    def test_export_to_file(self, capsys, tmp_path):
        snapshot = tmp_path / "metrics.json"
        assert main(
            ["solve", "--elements", "20", "--budget", "300", "--metrics-json",
             str(snapshot)]
        ) == 0
        capsys.readouterr()
        out_path = tmp_path / "metrics.prom"
        assert main(
            ["metrics-export", str(snapshot), "--output", str(out_path)]
        ) == 0
        assert "wrote OpenMetrics exposition" in capsys.readouterr().out
        assert out_path.read_text(encoding="utf-8").endswith("# EOF\n")

    def test_non_snapshot_file_is_a_clean_error(self, capsys, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"kind": "other"}', encoding="utf-8")
        assert main(["metrics-export", str(bogus)]) == 2
        assert "not a metrics snapshot" in capsys.readouterr().err


class TestStreamTrace:
    def test_streamed_trace_parses(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main(
            ["solve", "--elements", "20", "--budget", "300", "--trace",
             str(trace), "--stream-trace"]
        ) == 0
        out = capsys.readouterr().out
        assert "trace event(s)" in out
        from repro.obs.export import read_jsonl

        assert len(read_jsonl(trace)) > 0


class TestBenchCheck:
    @staticmethod
    def _times_file(tmp_path, name, times):
        import json as _json

        path = tmp_path / name
        path.write_text(
            _json.dumps(
                {
                    "schema": 1,
                    "benches": {
                        bench: {"wall_seconds": seconds}
                        for bench, seconds in times.items()
                    },
                }
            ),
            encoding="utf-8",
        )
        return path

    def test_identical_baselines_pass(self, capsys, tmp_path):
        baseline = self._times_file(tmp_path, "base.json", {"b": 1.0})
        current = self._times_file(tmp_path, "cur.json", {"b": 1.0})
        assert main(["bench-check", str(baseline), str(current)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_twofold_slowdown_fails(self, capsys, tmp_path):
        baseline = self._times_file(tmp_path, "base.json", {"b": 1.0})
        current = self._times_file(tmp_path, "cur.json", {"b": 2.0})
        assert main(["bench-check", str(baseline), str(current)]) == 1
        out = capsys.readouterr().out
        assert "regression" in out
        assert "FAIL" in out

    def test_warn_only_reports_but_passes(self, capsys, tmp_path):
        baseline = self._times_file(tmp_path, "base.json", {"b": 1.0})
        current = self._times_file(tmp_path, "cur.json", {"b": 2.0})
        assert main(
            ["bench-check", str(baseline), str(current), "--warn-only"]
        ) == 0
        assert "warn-only" in capsys.readouterr().out

    def test_new_and_missing_benches_never_fail(self, capsys, tmp_path):
        baseline = self._times_file(tmp_path, "base.json", {"gone": 1.0})
        current = self._times_file(tmp_path, "cur.json", {"new": 1.0})
        assert main(["bench-check", str(baseline), str(current)]) == 0
        out = capsys.readouterr().out
        assert "new" in out
        assert "missing" in out

    def test_checks_against_committed_baseline_shape(self, capsys, tmp_path):
        # The CI warn-only step feeds the committed baseline file; it must
        # stay loadable.
        from pathlib import Path

        committed = Path(__file__).parent.parent / "benchmarks" / "baseline.json"
        current = self._times_file(tmp_path, "cur.json", {"x": 1.0})
        assert main(
            ["bench-check", str(committed), str(current), "--warn-only"]
        ) == 0

    def test_filter_restricts_the_gate(self, capsys, tmp_path):
        baseline = self._times_file(
            tmp_path, "base.json", {"solver": 1.0, "noisy": 1.0}
        )
        current = self._times_file(
            tmp_path, "cur.json", {"solver": 1.0, "noisy": 9.0}
        )
        # The noisy bench regressed badly, but the gate only watches
        # the solver bench.
        assert main(
            ["bench-check", str(baseline), str(current), "--filter", "solver"]
        ) == 0
        assert main(
            ["bench-check", str(baseline), str(current), "--filter", "solver,noisy"]
        ) == 1

    def test_filter_matching_nothing_is_a_clean_error(self, capsys, tmp_path):
        baseline = self._times_file(tmp_path, "base.json", {"b": 1.0})
        current = self._times_file(tmp_path, "cur.json", {"b": 1.0})
        assert main(
            ["bench-check", str(baseline), str(current), "--filter", "zzz"]
        ) == 2
        assert "zzz" in capsys.readouterr().err


class TestBenchHistory:
    def test_appends_and_renders(self, capsys, tmp_path):
        current = TestBenchCheck._times_file(tmp_path, "cur.json", {"b": 1.0})
        history = tmp_path / "history.jsonl"
        assert main(
            ["bench-history", str(current), "--history", str(history),
             "--baseline", "-"]
        ) == 0
        assert main(
            ["bench-history", str(current), "--history", str(history),
             "--baseline", "-"]
        ) == 0
        out = capsys.readouterr().out
        assert "2 run(s)" in out
        assert history.read_text(encoding="utf-8").count("\n") == 2

    def test_no_append_leaves_history_untouched(self, capsys, tmp_path):
        current = TestBenchCheck._times_file(tmp_path, "cur.json", {"b": 1.0})
        history = tmp_path / "history.jsonl"
        main(["bench-history", str(current), "--history", str(history),
              "--baseline", "-"])
        capsys.readouterr()
        assert main(
            ["bench-history", str(current), "--history", str(history),
             "--baseline", "-", "--no-append"]
        ) == 0
        assert "1 run(s)" in capsys.readouterr().out
        assert history.read_text(encoding="utf-8").count("\n") == 1

    def test_flags_regression_against_baseline(self, capsys, tmp_path):
        baseline = TestBenchCheck._times_file(tmp_path, "base.json", {"b": 1.0})
        current = TestBenchCheck._times_file(tmp_path, "cur.json", {"b": 4.0})
        history = tmp_path / "history.jsonl"
        assert main(
            ["bench-history", str(current), "--history", str(history),
             "--baseline", str(baseline)]
        ) == 0
        assert "4.00x !" in capsys.readouterr().out


class TestExplain:
    @staticmethod
    def _trace(tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(
            ["serve", "--workload", "smoke", "--trace", str(path),
             "--stream-trace"]
        ) == 0
        capsys.readouterr()
        return path

    def test_waterfalls_for_all_queries(self, capsys, tmp_path):
        trace = self._trace(tmp_path, capsys)
        assert main(["explain", "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "query 0" in out
        assert "round_post" in out

    def test_single_query_with_tree(self, capsys, tmp_path):
        trace = self._trace(tmp_path, capsys)
        assert main(["explain", "0", "--trace", str(trace), "--tree"]) == 0
        out = capsys.readouterr().out
        assert "query <q0>" in out

    def test_input_trace_is_not_overwritten(self, capsys, tmp_path):
        # `explain` consumes --trace; it must never be routed through the
        # observability wrapper, which would treat it as an output path.
        trace = self._trace(tmp_path, capsys)
        before = trace.read_text(encoding="utf-8")
        main(["explain", "--trace", str(trace)])
        assert trace.read_text(encoding="utf-8") == before

    def test_unknown_query_id_is_a_clean_error(self, capsys, tmp_path):
        trace = self._trace(tmp_path, capsys)
        assert main(["explain", "999", "--trace", str(trace)]) == 2
        assert "999" in capsys.readouterr().err

    def test_missing_trace_file_is_a_clean_error(self, capsys, tmp_path):
        assert main(
            ["explain", "--trace", str(tmp_path / "absent.jsonl")]
        ) == 2
        assert "not found" in capsys.readouterr().err

    def test_trace_without_spans_exits_one(self, capsys, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        assert main(["explain", "--trace", str(path)]) == 1
        assert "no query spans" in capsys.readouterr().out


class TestProfile:
    def test_profiles_both_solvers(self, capsys):
        assert main(
            ["profile", "--elements", "30", "--budget", "150"]
        ) == 0
        out = capsys.readouterr().out
        assert "frontier.solves" in out
        assert "memo.solves" in out
        assert "plan_cache.misses" in out

    def test_repeat_warms_the_plan_cache(self, capsys):
        assert main(
            ["profile", "--elements", "30", "--budget", "150",
             "--solver", "frontier", "--repeat", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "plan_cache.hits" in out
        assert "memo.solves" not in out

    def test_repeat_must_be_positive(self, capsys):
        assert main(
            ["profile", "--elements", "30", "--budget", "150", "--repeat", "0"]
        ) == 2


class TestServeBackends:
    def test_preset_fleet_prints_fleet_table(self, capsys):
        assert main(
            ["serve", "--workload", "smoke", "--backends", "trio"]
        ) == 0
        out = capsys.readouterr().out
        assert "backends: trio (3 backend(s)), routing latency" in out
        assert "fleet:" in out
        for name in ("fast", "balanced", "cheap"):
            assert name in out

    def test_routing_policy_flag(self, capsys):
        assert main(
            ["serve", "--workload", "smoke", "--backends", "trio",
             "--routing", "weighted-price"]
        ) == 0
        assert "routing weighted-price" in capsys.readouterr().out

    def test_spec_file_fleet(self, capsys, tmp_path):
        import json

        from repro.crowd.multibackend import (
            backend_preset_by_name,
            backend_spec_to_dict,
        )

        path = tmp_path / "fleet.json"
        path.write_text(
            json.dumps(
                [backend_spec_to_dict(s)
                 for s in backend_preset_by_name("duo")]
            ),
            encoding="utf-8",
        )
        assert main(
            ["serve", "--workload", "smoke", "--backends", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "boutique" in out
        assert "bulk" in out

    def test_backends_and_faults_conflict(self, capsys):
        assert main(
            ["serve", "--workload", "smoke", "--backends", "trio",
             "--faults", "lossy"]
        ) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_backends_and_breaker_conflict(self, capsys):
        assert main(
            ["serve", "--workload", "smoke", "--backends", "trio",
             "--breaker"]
        ) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_unknown_preset_is_a_clean_error(self, capsys):
        assert main(
            ["serve", "--workload", "smoke", "--backends", "nonesuch"]
        ) == 2
        assert "unknown backend preset" in capsys.readouterr().err

    def test_routed_serve_is_reproducible(self, capsys):
        argv = ["serve", "--workload", "smoke", "--seed", "9",
                "--backends", "outage-trio"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first


class TestChaosScenario:
    def test_named_scenario_runs(self, capsys):
        assert main(
            ["chaos", "--scenario", "multibackend-outage", "--crashes", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "all recoveries bit-identical" in out
        assert "backends=fast,balanced,cheap" in out

    def test_unknown_scenario_is_a_clean_error(self, capsys):
        assert main(["chaos", "--scenario", "nonesuch"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_scenario_conflicts_with_fault_flags(self, capsys):
        assert main(
            ["chaos", "--scenario", "multibackend-outage",
             "--faults", "outages"]
        ) == 2
        assert "cannot be combined" in capsys.readouterr().err


class TestServeDeadlines:
    def test_default_deadline_prints_attainment(self, capsys):
        assert main(
            ["serve", "--workload", "smoke", "--default-deadline", "1e9"]
        ) == 0
        out = capsys.readouterr().out
        assert "deadlines:" in out
        assert "met" in out

    def test_tight_deadline_degrades(self, capsys):
        assert main(
            ["serve", "--workload", "smoke", "--default-deadline", "10"]
        ) == 0
        assert "degraded" in capsys.readouterr().out

    def test_hedge_requires_a_fleet(self, capsys):
        assert main(
            ["serve", "--workload", "smoke", "--hedge"]
        ) == 2
        assert "--hedge requires" in capsys.readouterr().err

    def test_full_robustness_stack(self, capsys):
        assert main(
            ["serve", "--workload", "steady", "--queries", "12",
             "--backends", "outage-trio", "--routing", "least-loaded",
             "--default-deadline", "1800", "--hedge", "--brownout",
             "--brownout-threshold", "1000", "--seed", "7"]
        ) == 0
        out = capsys.readouterr().out
        assert "deadlines:" in out
        assert "hedging:" in out
        assert "brownout: level" in out

    def test_hedge_after_fires_mirrored_rounds(self, capsys):
        assert main(
            ["serve", "--workload", "steady", "--queries", "12",
             "--backends", "outage-trio", "--routing", "least-loaded",
             "--hedge-after", "250", "--seed", "7"]
        ) == 0
        out = capsys.readouterr().out
        assert "hedging:" in out
        assert "0 hedged round(s)" not in out

    def test_deadline_serve_is_reproducible(self, capsys):
        argv = ["serve", "--workload", "steady", "--queries", "12",
                "--backends", "outage-trio", "--routing", "least-loaded",
                "--default-deadline", "1800", "--hedge", "--brownout",
                "--seed", "7"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first


class TestExplainDeadlines:
    def test_breaches_and_hedges_render(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main(
            ["serve", "--workload", "steady", "--queries", "12",
             "--backends", "outage-trio", "--routing", "least-loaded",
             "--default-deadline", "600", "--hedge-after", "250",
             "--seed", "7", "--trace", str(trace), "--stream-trace"]
        ) == 0
        capsys.readouterr()
        assert main(["explain", "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "deadline breaches:" in out
        assert "hedged rounds:" in out

    def test_breach_free_trace_stays_quiet(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main(
            ["serve", "--workload", "smoke", "--default-deadline", "1e9",
             "--trace", str(trace), "--stream-trace"]
        ) == 0
        capsys.readouterr()
        assert main(["explain", "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "deadline breaches:" not in out


class TestChaosDeadlineStorm:
    def test_deadline_storm_scenario_runs(self, capsys):
        assert main(
            ["chaos", "--scenario", "deadline-storm", "--crashes", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "all recoveries bit-identical" in out
        assert "backends=fast,balanced,cheap" in out


class TestHealthDiagnose:
    def _armed_journal(self, capsys, tmp_path):
        journal = tmp_path / "serve.jsonl"
        assert main(
            ["serve", "--workload", "steady", "--slo",
             "--journal", str(journal)]
        ) == 0
        out = capsys.readouterr().out
        assert "health:" in out
        assert "slo: health" in out
        return journal

    def test_health_reads_an_armed_journal(self, capsys, tmp_path):
        journal = self._armed_journal(capsys, tmp_path)
        assert main(["health", str(journal)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("health: ")
        assert "alerts:" in out
        assert "tick(s)" in out

    def test_fail_degraded_passes_a_healthy_run(self, capsys, tmp_path):
        journal = self._armed_journal(capsys, tmp_path)
        assert main(["health", str(journal), "--fail-degraded"]) == 0

    def test_health_without_slo_reports_unarmed(self, capsys, tmp_path):
        journal = tmp_path / "serve.jsonl"
        assert main(
            ["serve", "--workload", "smoke", "--journal", str(journal)]
        ) == 0
        capsys.readouterr()
        assert main(["health", str(journal)]) == 0
        assert "no SLO engine armed" in capsys.readouterr().out

    def test_health_of_missing_journal_is_a_clean_error(
        self, capsys, tmp_path
    ):
        assert main(["health", str(tmp_path / "absent.jsonl")]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    def test_diagnose_writes_a_validated_bundle(self, capsys, tmp_path):
        from repro.obs.flight import validate_bundle

        journal = self._armed_journal(capsys, tmp_path)
        bundle = tmp_path / "bundle"
        assert main(
            ["diagnose", str(journal), "--output", str(bundle)]
        ) == 0
        assert "wrote debug bundle" in capsys.readouterr().out
        manifest = validate_bundle(bundle)
        assert manifest["reason"] == "diagnose"
        assert "ring.jsonl" in manifest["files"]
        assert "state.json" in manifest["files"]
        assert "metrics.prom" in manifest["files"]

    def test_diagnose_without_slo_is_a_clean_error(self, capsys, tmp_path):
        journal = tmp_path / "serve.jsonl"
        assert main(
            ["serve", "--workload", "smoke", "--journal", str(journal)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["diagnose", str(journal), "--output", str(tmp_path / "b")]
        ) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "--slo" in err

    def test_slo_bundle_dir_implies_slo(self, capsys, tmp_path):
        assert main(
            ["serve", "--workload", "smoke",
             "--slo-bundle-dir", str(tmp_path / "bundles")]
        ) == 0
        assert "slo: health" in capsys.readouterr().out


class TestChaosAlertStorm:
    def test_alert_storm_scenario_runs(self, capsys):
        assert main(
            ["chaos", "--scenario", "alert-storm", "--crashes", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "all recoveries bit-identical" in out
