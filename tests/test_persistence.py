"""Tests for JSON persistence of allocations, evidence and run results."""

import numpy as np
import pytest

from repro.core.allocation import Allocation
from repro.core.latency import LinearLatency
from repro.core.tdp import TDPAllocator
from repro.crowd.ground_truth import GroundTruth
from repro.engine.max_engine import MaxEngine, OracleAnswerSource
from repro.errors import InconsistentAnswersError, InvalidParameterError
from repro.graphs.answer_graph import AnswerGraph
from repro.persistence import (
    allocation_from_dict,
    allocation_to_dict,
    answer_graph_from_dict,
    answer_graph_to_dict,
    load_json,
    run_result_from_dict,
    run_result_to_dict,
    save_json,
)
from repro.types import Answer

LATENCY = LinearLatency(239, 0.06)


class TestAllocationRoundTrip:
    def test_tournament_allocation(self):
        original = TDPAllocator().allocate(40, 200, LATENCY)
        restored = allocation_from_dict(allocation_to_dict(original))
        assert restored == original
        assert restored.allocator_name == "tDP"

    def test_plain_budget_allocation(self):
        original = Allocation(round_budgets=(17, 17, 17), allocator_name="uHE")
        restored = allocation_from_dict(allocation_to_dict(original))
        assert restored.round_budgets == (17, 17, 17)
        assert restored.element_sequence is None

    def test_tampered_payload_fails_validation(self):
        payload = allocation_to_dict(TDPAllocator().allocate(40, 200, LATENCY))
        payload["element_sequence"] = [40, 40, 1]  # not strictly decreasing
        with pytest.raises(InvalidParameterError):
            allocation_from_dict(payload)

    def test_missing_key_reported(self):
        with pytest.raises(InvalidParameterError):
            allocation_from_dict({"round_budgets": [1]})


class TestAnswerGraphRoundTrip:
    def test_round_trip_preserves_answers(self):
        graph = AnswerGraph(range(6))
        graph.record_all(
            [Answer(3, 0), Answer(3, 1), Answer(4, 2), Answer(5, 4)]
        )
        restored = answer_graph_from_dict(answer_graph_to_dict(graph))
        assert restored.elements == graph.elements
        assert restored.answered_questions() == graph.answered_questions()
        assert restored.remaining_candidates() == graph.remaining_candidates()

    def test_inconsistent_payload_rejected(self):
        payload = {
            "elements": [0, 1],
            "answers": [[0, 1], [1, 0]],  # both directions
        }
        with pytest.raises(InconsistentAnswersError):
            answer_graph_from_dict(payload)

    def test_checkpoint_resume_between_rounds(self):
        """The intended workflow: persist evidence after a round, reload,
        and keep going with identical state."""
        rng = np.random.default_rng(0)
        truth = GroundTruth.random(12, rng)
        graph = AnswerGraph(range(12))
        for i in range(0, 12, 2):
            graph.record(truth.answer(i, i + 1))
        restored = answer_graph_from_dict(answer_graph_to_dict(graph))
        for a in (0, 2, 4):
            restored.record(truth.answer(a, a + 2))  # further rounds work
        assert len(restored.remaining_candidates()) < len(
            graph.remaining_candidates()
        )


class TestRunResultRoundTrip:
    def make_result(self):
        rng = np.random.default_rng(1)
        truth = GroundTruth.random(20, rng)
        allocation = TDPAllocator().allocate(20, 100, LATENCY)
        from repro.selection.tournament import TournamentFormation

        engine = MaxEngine(
            TournamentFormation(), OracleAnswerSource(truth, LATENCY), rng
        )
        return engine.run(truth, allocation)

    def test_round_trip(self):
        original = self.make_result()
        restored = run_result_from_dict(run_result_to_dict(original))
        assert restored == original

    def test_validates_after_restore(self):
        from repro.engine.validation import validate_run

        restored = run_result_from_dict(run_result_to_dict(self.make_result()))
        validate_run(restored, n_elements=20, budget=100)


class TestFileHelpers:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "checkpoint.json"
        graph = AnswerGraph(range(3))
        graph.record(Answer(0, 1))
        save_json(answer_graph_to_dict(graph), path)
        restored = answer_graph_from_dict(load_json(path))
        assert restored.answered_questions() == {(0, 1)}

    def test_missing_file(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            load_json(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{broken", encoding="utf-8")
        with pytest.raises(InvalidParameterError):
            load_json(path)

    def test_foreign_json_rejected(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.raises(InvalidParameterError):
            load_json(path)
