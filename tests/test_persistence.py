"""Tests for JSON persistence of allocations, evidence and run results."""

import numpy as np
import pytest

from repro.core.allocation import Allocation
from repro.core.latency import (
    LinearLatency,
    PiecewiseLinearLatency,
    PowerLawLatency,
    TabulatedLatency,
)
from repro.crowd.error_models import (
    DistanceSensitiveError,
    PerfectWorkers,
    UniformError,
)
from repro.crowd.workers import WorkerPoolConfig
from repro.core.tdp import TDPAllocator
from repro.crowd.ground_truth import GroundTruth
from repro.engine.max_engine import MaxEngine, OracleAnswerSource
from repro.errors import InconsistentAnswersError, InvalidParameterError
from repro.graphs.answer_graph import AnswerGraph
from repro.persistence import (
    allocation_from_dict,
    allocation_to_dict,
    answer_graph_from_dict,
    answer_graph_to_dict,
    error_model_from_dict,
    error_model_to_dict,
    latency_from_dict,
    latency_to_dict,
    load_json,
    run_result_from_dict,
    run_result_to_dict,
    save_json,
    worker_config_from_dict,
    worker_config_to_dict,
)
from repro.types import Answer

LATENCY = LinearLatency(239, 0.06)


class TestAllocationRoundTrip:
    def test_tournament_allocation(self):
        original = TDPAllocator().allocate(40, 200, LATENCY)
        restored = allocation_from_dict(allocation_to_dict(original))
        assert restored == original
        assert restored.allocator_name == "tDP"

    def test_plain_budget_allocation(self):
        original = Allocation(round_budgets=(17, 17, 17), allocator_name="uHE")
        restored = allocation_from_dict(allocation_to_dict(original))
        assert restored.round_budgets == (17, 17, 17)
        assert restored.element_sequence is None

    def test_tampered_payload_fails_validation(self):
        payload = allocation_to_dict(TDPAllocator().allocate(40, 200, LATENCY))
        payload["element_sequence"] = [40, 40, 1]  # not strictly decreasing
        with pytest.raises(InvalidParameterError):
            allocation_from_dict(payload)

    def test_missing_key_reported(self):
        with pytest.raises(InvalidParameterError):
            allocation_from_dict({"round_budgets": [1]})


class TestAnswerGraphRoundTrip:
    def test_round_trip_preserves_answers(self):
        graph = AnswerGraph(range(6))
        graph.record_all(
            [Answer(3, 0), Answer(3, 1), Answer(4, 2), Answer(5, 4)]
        )
        restored = answer_graph_from_dict(answer_graph_to_dict(graph))
        assert restored.elements == graph.elements
        assert restored.answered_questions() == graph.answered_questions()
        assert restored.remaining_candidates() == graph.remaining_candidates()

    def test_inconsistent_payload_rejected(self):
        payload = {
            "elements": [0, 1],
            "answers": [[0, 1], [1, 0]],  # both directions
        }
        with pytest.raises(InconsistentAnswersError):
            answer_graph_from_dict(payload)

    def test_checkpoint_resume_between_rounds(self):
        """The intended workflow: persist evidence after a round, reload,
        and keep going with identical state."""
        rng = np.random.default_rng(0)
        truth = GroundTruth.random(12, rng)
        graph = AnswerGraph(range(12))
        for i in range(0, 12, 2):
            graph.record(truth.answer(i, i + 1))
        restored = answer_graph_from_dict(answer_graph_to_dict(graph))
        for a in (0, 2, 4):
            restored.record(truth.answer(a, a + 2))  # further rounds work
        assert len(restored.remaining_candidates()) < len(
            graph.remaining_candidates()
        )


class TestRunResultRoundTrip:
    def make_result(self):
        rng = np.random.default_rng(1)
        truth = GroundTruth.random(20, rng)
        allocation = TDPAllocator().allocate(20, 100, LATENCY)
        from repro.selection.tournament import TournamentFormation

        engine = MaxEngine(
            TournamentFormation(), OracleAnswerSource(truth, LATENCY), rng
        )
        return engine.run(truth, allocation)

    def test_round_trip(self):
        original = self.make_result()
        restored = run_result_from_dict(run_result_to_dict(original))
        assert restored == original

    def test_validates_after_restore(self):
        from repro.engine.validation import validate_run

        restored = run_result_from_dict(run_result_to_dict(self.make_result()))
        validate_run(restored, n_elements=20, budget=100)


class TestFileHelpers:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "checkpoint.json"
        graph = AnswerGraph(range(3))
        graph.record(Answer(0, 1))
        save_json(answer_graph_to_dict(graph), path)
        restored = answer_graph_from_dict(load_json(path))
        assert restored.answered_questions() == {(0, 1)}

    def test_missing_file(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            load_json(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{broken", encoding="utf-8")
        with pytest.raises(InvalidParameterError):
            load_json(path)

    def test_foreign_json_rejected(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.raises(InvalidParameterError):
            load_json(path)


class TestLatencyRoundTrip:
    @pytest.mark.parametrize(
        "latency",
        [
            LinearLatency(delta=239.0, alpha=0.06),
            PowerLawLatency(delta=100.0, alpha=2.0, p=0.7),
            PiecewiseLinearLatency([(1, 240.0), (50, 300.0), (200, 480.0)]),
            TabulatedLatency([(1, 250.0), (10, 260.0), (100, 400.0)]),
        ],
        ids=["linear", "power_law", "piecewise", "tabulated"],
    )
    def test_round_trip_preserves_the_function(self, latency):
        restored = latency_from_dict(latency_to_dict(latency))
        assert type(restored) is type(latency)
        for q in (1, 7, 42, 150):
            assert restored(q) == latency(q)
        # repr keys the service plan cache, so it must survive too.
        assert repr(restored) == repr(latency)

    def test_unknown_latency_class_rejected(self):
        # A class outside the known hierarchy must be refused loudly.
        class Alien:
            pass

        with pytest.raises(InvalidParameterError):
            latency_to_dict(Alien())


class TestErrorModelRoundTrip:
    @pytest.mark.parametrize(
        "model",
        [
            None,
            PerfectWorkers(),
            UniformError(rate=0.15),
            DistanceSensitiveError(base=0.3, scale=5.0),
        ],
        ids=["none", "perfect", "uniform", "distance"],
    )
    def test_round_trip(self, model):
        restored = error_model_from_dict(error_model_to_dict(model))
        if model is None:
            assert restored is None
            return
        assert type(restored) is type(model)
        truth = GroundTruth.random(10, np.random.default_rng(0))
        for a, b in ((0, 1), (2, 9), (4, 5)):
            assert restored.error_probability(
                truth, a, b
            ) == model.error_probability(truth, a, b)


class TestWorkerConfigRoundTrip:
    def test_round_trip(self):
        config = WorkerPoolConfig(mean_service_time=5.0, base_workers=3)
        restored = worker_config_from_dict(worker_config_to_dict(config))
        assert restored == config

    def test_none_passes_through(self):
        assert worker_config_to_dict(None) is None
        assert worker_config_from_dict(None) is None


class TestAtomicSaveJson:
    def test_failed_replace_preserves_the_old_file(self, tmp_path, monkeypatch):
        """A crash mid-save must never leave a truncated checkpoint: the
        write goes to a temp file and only an atomic rename publishes it."""
        path = tmp_path / "checkpoint.json"
        save_json({"kind": "test", "generation": 1}, path)

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr("repro.persistence.os.replace", exploding_replace)
        with pytest.raises(OSError):
            save_json({"kind": "test", "generation": 2}, path)
        monkeypatch.undo()
        assert load_json(path) == {"kind": "test", "generation": 1}
        # The failed attempt cleans up its temp file.
        assert list(tmp_path.iterdir()) == [path]

    def test_unserializable_payload_leaves_no_file(self, tmp_path):
        path = tmp_path / "checkpoint.json"
        with pytest.raises(TypeError):
            save_json({"bad": object()}, path)
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_save_overwrites_in_place(self, tmp_path):
        path = tmp_path / "checkpoint.json"
        save_json({"kind": "test", "generation": 1}, path)
        save_json({"kind": "test", "generation": 2}, path)
        assert load_json(path) == {"kind": "test", "generation": 2}
        assert list(tmp_path.iterdir()) == [path]
