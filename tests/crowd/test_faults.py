"""Tests for the fault-injection layer (repro.crowd.faults).

The two load-bearing properties (acceptance criteria of the robustness
layer):

* a zero :class:`FaultProfile` leaves the wrapped platform byte-identical
  to the bare one — answers, completion time and stats;
* any seeded profile replays identically run over run.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro import obs
from repro.crowd.faults import (
    FaultProfile,
    FaultyPlatform,
    RetryPolicy,
    available_fault_profiles,
    fault_profile_by_name,
)
from repro.crowd.ground_truth import GroundTruth
from repro.crowd.platform import SimulatedPlatform
from repro.errors import InvalidParameterError, PlatformOutageError


def _chain(n_questions, n_elements=64):
    """A batch of distinct adjacent-pair questions."""
    assert n_questions < n_elements
    return [(i, i + 1) for i in range(n_questions)]


def _platform(seed=1, n_elements=64):
    truth = GroundTruth.random(n_elements, np.random.default_rng(0))
    return SimulatedPlatform(truth, np.random.default_rng(seed))


def _wrapped(profile, seed=1, fault_seed=99, n_elements=64, tracer=None):
    return FaultyPlatform(
        _platform(seed, n_elements),
        profile,
        np.random.default_rng(fault_seed),
        tracer=tracer,
    )


class TestFaultProfile:
    def test_default_profile_is_zero(self):
        assert FaultProfile().is_zero
        assert FaultProfile.none().is_zero

    @pytest.mark.parametrize(
        "field, value",
        [
            ("abandon_prob", -0.1),
            ("drop_prob", 1.5),
            ("straggler_prob", 2.0),
            ("duplicate_prob", -1.0),
            ("outage_prob", 1.01),
            ("straggler_multiplier", 1.0),
            ("duplicate_delay", -1.0),
            ("outage_detection_time", -5.0),
        ],
    )
    def test_rejects_out_of_domain_parameters(self, field, value):
        with pytest.raises(InvalidParameterError):
            FaultProfile(**{field: value})

    def test_named_profiles_resolve(self):
        for name in available_fault_profiles():
            profile = fault_profile_by_name(name)
            assert profile.is_zero == (name == "none")

    def test_unknown_profile_name_lists_options(self):
        with pytest.raises(InvalidParameterError, match="mild"):
            fault_profile_by_name("nope")


class TestZeroProfileIdentity:
    """Acceptance criterion: zero faults == no fault layer, bit for bit."""

    def test_batches_and_stats_identical(self):
        bare = _platform()
        wrapped = _wrapped(FaultProfile.none())
        for size in (5, 1, 40, 17):
            expected = bare.post_batch(_chain(size))
            actual = wrapped.post_batch(_chain(size))
            assert actual == expected
        assert wrapped.stats == bare.stats
        assert wrapped.fault_stats.total_faults == 0

    def test_zero_profile_never_draws_fault_randomness(self):
        fault_rng = np.random.default_rng(7)
        before = fault_rng.bit_generator.state
        platform = FaultyPlatform(_platform(), FaultProfile.none(), fault_rng)
        platform.post_batch(_chain(20))
        assert fault_rng.bit_generator.state == before


class FaultFreeEquivalenceMachine(RuleBasedStateMachine):
    """Stateful check: a zero-profile wrapper shadows the bare platform.

    Hypothesis drives an arbitrary sequence of batch posts; after every
    post the wrapped platform must have produced the exact same answers,
    completion time and cumulative stats as the bare one.
    """

    @initialize(seed=st.integers(0, 2**16))
    def start(self, seed):
        self.bare = _platform(seed=seed)
        self.wrapped = _wrapped(FaultProfile.none(), seed=seed)

    @rule(size=st.integers(0, 50))
    def post(self, size):
        batch = _chain(size)
        assert self.wrapped.post_batch(batch) == self.bare.post_batch(batch)

    @invariant()
    def stats_match(self):
        assert self.wrapped.stats == self.bare.stats
        assert self.wrapped.fault_stats.total_faults == 0


TestFaultFreeEquivalence = FaultFreeEquivalenceMachine.TestCase
TestFaultFreeEquivalence.settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
TestFaultFreeEquivalence.pytestmark = [pytest.mark.slow]


class TestSeededReplay:
    @staticmethod
    def _run(profile, fault_seed):
        platform = _wrapped(profile, fault_seed=fault_seed)
        outcomes = []
        for size in (30, 12, 45, 3):
            try:
                outcomes.append(platform.post_batch(_chain(size)))
            except PlatformOutageError as outage:
                outcomes.append(("outage", outage.wasted_seconds))
        return outcomes, platform.fault_stats.as_dict()

    @pytest.mark.parametrize("name", ["mild", "lossy", "severe", "outages"])
    def test_same_seed_replays_identically(self, name):
        profile = fault_profile_by_name(name)
        assert self._run(profile, 5) == self._run(profile, 5)

    def test_different_seeds_diverge(self):
        profile = fault_profile_by_name("severe")
        assert self._run(profile, 5) != self._run(profile, 6)

    @pytest.mark.slow
    @settings(max_examples=30, deadline=None)
    @given(
        fault_seed=st.integers(0, 2**16),
        abandon=st.floats(0.0, 0.5),
        drop=st.floats(0.0, 0.5),
        straggle=st.floats(0.0, 0.5),
        duplicate=st.floats(0.0, 0.5),
        outage=st.floats(0.0, 0.5),
    )
    def test_replay_holds_for_arbitrary_profiles(
        self, fault_seed, abandon, drop, straggle, duplicate, outage
    ):
        profile = FaultProfile(
            abandon_prob=abandon,
            drop_prob=drop,
            straggler_prob=straggle,
            duplicate_prob=duplicate,
            outage_prob=outage,
        )
        assert self._run(profile, fault_seed) == self._run(profile, fault_seed)


class TestIndividualFaults:
    def test_drops_remove_answers(self):
        platform = _wrapped(FaultProfile(drop_prob=0.5))
        result = platform.post_batch(_chain(40))
        assert 0 < result.n_answers < 40
        assert platform.fault_stats.dropped == 40 - result.n_answers

    def test_abandonment_removes_answers(self):
        platform = _wrapped(FaultProfile(abandon_prob=0.5))
        result = platform.post_batch(_chain(40))
        assert result.n_answers < 40
        assert platform.fault_stats.abandoned == 40 - result.n_answers

    def test_stragglers_delay_completion(self):
        bare = _platform()
        expected = bare.post_batch(_chain(40))
        platform = _wrapped(
            FaultProfile(straggler_prob=1.0, straggler_multiplier=4.0)
        )
        result = platform.post_batch(_chain(40))
        assert result.n_answers == 40
        assert result.completion_time == pytest.approx(
            4.0 * expected.completion_time
        )
        assert platform.fault_stats.stragglers == 40

    def test_duplicates_add_answers_for_the_same_question(self):
        platform = _wrapped(FaultProfile(duplicate_prob=1.0))
        result = platform.post_batch(_chain(10))
        assert result.n_answers == 20
        for original, copy in zip(
            result.worker_answers[:10], result.worker_answers[10:]
        ):
            assert copy.question == original.question
            assert copy.answer == original.answer
            assert copy.submit_time >= original.submit_time

    def test_outage_raises_with_detection_time(self):
        platform = _wrapped(
            FaultProfile(outage_prob=1.0, outage_detection_time=123.0)
        )
        with pytest.raises(PlatformOutageError) as excinfo:
            platform.post_batch(_chain(5))
        assert excinfo.value.wasted_seconds == 123.0
        assert platform.fault_stats.outages == 1
        # The inner platform never saw the batch.
        assert platform.stats.batches_posted == 0

    def test_empty_batch_is_passed_through(self):
        platform = _wrapped(fault_profile_by_name("severe"))
        result = platform.post_batch([])
        assert result.n_answers == 0
        assert result.completion_time == 0.0

    def test_faults_emit_trace_events(self):
        tracer = obs.RecordingTracer()
        platform = _wrapped(
            FaultProfile(drop_prob=0.5, duplicate_prob=0.5), tracer=tracer
        )
        platform.post_batch(_chain(40))
        kinds = {
            record.event.fault
            for record in tracer.records
            if record.event.kind == "FaultInjected"
        }
        assert "drop" in kinds
        assert "duplicate" in kinds

    def test_fault_metrics_recorded(self):
        registry = obs.get_registry()
        registry.reset()
        platform = _wrapped(FaultProfile(drop_prob=0.5))
        result = platform.post_batch(_chain(40))
        dropped = 40 - result.n_answers
        assert registry.counter("faults.drop").value == dropped


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"deadline": -1.0},
            {"base_backoff": -1.0},
            {"backoff_multiplier": 0.5},
            {"base_backoff": 100.0, "max_backoff": 10.0},
            {"jitter": 1.5},
        ],
    )
    def test_rejects_out_of_domain_parameters(self, kwargs):
        with pytest.raises(InvalidParameterError):
            RetryPolicy(**kwargs)

    def test_backoff_grows_exponentially_without_jitter(self, rng):
        policy = RetryPolicy(
            base_backoff=10.0,
            backoff_multiplier=2.0,
            max_backoff=35.0,
            jitter=0.0,
        )
        waits = [policy.backoff_seconds(i, rng) for i in (1, 2, 3, 4)]
        assert waits == [10.0, 20.0, 35.0, 35.0]

    def test_jitter_stays_within_the_documented_band(self, rng):
        policy = RetryPolicy(base_backoff=100.0, jitter=0.2, max_backoff=100.0)
        for _ in range(50):
            wait = policy.backoff_seconds(1, rng)
            assert 80.0 <= wait <= 120.0

    def test_backoff_rejects_zero_retry_index(self, rng):
        with pytest.raises(InvalidParameterError):
            RetryPolicy().backoff_seconds(0, rng)

    def test_profile_and_policy_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            FaultProfile().drop_prob = 0.5
        with pytest.raises(dataclasses.FrozenInstanceError):
            RetryPolicy().max_attempts = 5


class TestBackoffCapIsHard:
    """Regression: jitter used to be applied *after* the min() with
    max_backoff, so a positive jitter draw could exceed the documented
    hard ceiling.  The cap must now clamp the jittered value."""

    def test_jitter_never_exceeds_max_backoff(self, rng):
        policy = RetryPolicy(
            base_backoff=100.0,
            backoff_multiplier=10.0,
            max_backoff=100.0,
            jitter=0.5,
        )
        # retry_index 3 puts the raw backoff far above the cap, so any
        # upward jitter that survives the clamp would be visible.
        waits = [policy.backoff_seconds(3, rng) for _ in range(200)]
        assert all(wait <= 100.0 for wait in waits)

    def test_jitter_still_varies_below_the_cap(self, rng):
        policy = RetryPolicy(
            base_backoff=10.0, max_backoff=1000.0, jitter=0.5
        )
        waits = {policy.backoff_seconds(1, rng) for _ in range(20)}
        assert len(waits) > 1
        assert all(5.0 <= wait <= 15.0 for wait in waits)

    def test_downward_jitter_survives_at_the_cap(self, rng):
        # Clamping after jittering keeps the downward half of the band.
        policy = RetryPolicy(
            base_backoff=100.0, max_backoff=100.0, jitter=0.5
        )
        waits = [policy.backoff_seconds(1, rng) for _ in range(200)]
        assert min(waits) < 100.0


class TestOutageWindow:
    """The deterministic maintenance window behind the sustained profile."""

    @pytest.mark.parametrize(
        "window", [(5.0,), (3.0, 2.0), (-1.0, 10.0), (4.0, 4.0)]
    )
    def test_rejects_malformed_windows(self, window):
        with pytest.raises(InvalidParameterError):
            FaultProfile(outage_window=window)

    def test_window_makes_profile_nonzero(self):
        assert not FaultProfile(outage_window=(0.0, 10.0)).is_zero

    def test_outage_raised_only_inside_the_window(self):
        profile = FaultProfile(
            outage_window=(100.0, 200.0), outage_detection_time=30.0
        )
        platform = _wrapped(profile)
        platform.set_clock(50.0)
        assert platform.post_batch(_chain(5)).n_answers == 5
        platform.set_clock(150.0)
        with pytest.raises(PlatformOutageError) as excinfo:
            platform.post_batch(_chain(5))
        assert excinfo.value.wasted_seconds == 30.0
        assert platform.fault_stats.outages == 1
        platform.set_clock(200.0)  # window end is exclusive
        assert platform.post_batch(_chain(5)).n_answers == 5

    def test_window_outage_consumes_no_fault_randomness(self):
        """A deterministic outage must not desynchronise the seeded fault
        stream: the draws after the window match a run without one."""
        windowed = _wrapped(
            FaultProfile(drop_prob=0.3, outage_window=(0.0, 10.0))
        )
        plain = _wrapped(FaultProfile(drop_prob=0.3))
        windowed.set_clock(5.0)
        with pytest.raises(PlatformOutageError):
            windowed.post_batch(_chain(20))
        windowed.set_clock(20.0)
        expected = plain.post_batch(_chain(20))
        actual = windowed.post_batch(_chain(20))
        assert actual.n_answers == expected.n_answers

    def test_sustained_profile_has_a_window(self):
        profile = fault_profile_by_name("sustained")
        assert profile.outage_window is not None
        start, end = profile.outage_window
        assert start < end
