"""Tests for the day/night worker-availability extension."""

import numpy as np
import pytest

from repro.crowd.diurnal import SECONDS_PER_DAY, DayNightCycle, DiurnalPlatform
from repro.crowd.ground_truth import GroundTruth
from repro.errors import InvalidParameterError


class TestDayNightCycle:
    def test_day_is_full_activity(self):
        cycle = DayNightCycle(day_start_hour=8, day_end_hour=22)
        assert cycle.activity(12 * 3600) == 1.0

    def test_night_is_reduced(self):
        cycle = DayNightCycle(
            day_start_hour=8, day_end_hour=22, night_activity=0.3
        )
        assert cycle.activity(3 * 3600) == 0.3
        assert cycle.activity(23 * 3600) == 0.3

    def test_wraps_across_days(self):
        cycle = DayNightCycle()
        noon_today = 12 * 3600
        noon_tomorrow = noon_today + SECONDS_PER_DAY
        assert cycle.activity(noon_today) == cycle.activity(noon_tomorrow)

    def test_boundaries(self):
        cycle = DayNightCycle(day_start_hour=8, day_end_hour=22)
        assert cycle.activity(8 * 3600) == 1.0  # start inclusive
        assert cycle.activity(22 * 3600) != 1.0  # end exclusive

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            DayNightCycle(day_start_hour=10, day_end_hour=9)
        with pytest.raises(InvalidParameterError):
            DayNightCycle(night_activity=0.0)
        with pytest.raises(InvalidParameterError):
            DayNightCycle(night_activity=1.5)


def make_platform(start_hour, seed=0, night_activity=0.2):
    rng = np.random.default_rng(seed)
    truth = GroundTruth.random(50, rng)
    return DiurnalPlatform(
        truth,
        rng,
        cycle=DayNightCycle(night_activity=night_activity),
        start_hour=start_hour,
    )


class TestDiurnalPlatform:
    def test_night_batches_slower_than_day(self):
        day_times = []
        night_times = []
        questions = [(i, i + 1) for i in range(0, 30, 2)]
        for seed in range(10):
            day_times.append(
                make_platform(12.0, seed).post_batch(questions).completion_time
            )
            night_times.append(
                make_platform(2.0, seed).post_batch(questions).completion_time
            )
        assert np.mean(night_times) > 2 * np.mean(day_times)

    def test_wall_clock_advances(self):
        platform = make_platform(9.0)
        start = platform.wall_clock
        result = platform.post_batch([(0, 1), (2, 3)])
        assert platform.wall_clock == start + result.completion_time

    def test_hour_of_day_wraps(self):
        platform = make_platform(23.0)
        platform.wall_clock += 2 * 3600  # move to 01:00
        assert platform.hour_of_day == pytest.approx(1.0)

    def test_config_restored_after_post(self):
        platform = make_platform(2.0)
        discovery_before = platform.config.discovery_mean
        platform.post_batch([(0, 1)])
        assert platform.config.discovery_mean == discovery_before

    def test_start_hour_validation(self):
        rng = np.random.default_rng(0)
        truth = GroundTruth.random(5, rng)
        with pytest.raises(InvalidParameterError):
            DiurnalPlatform(truth, rng, start_hour=25.0)

    def test_overnight_run_slows_later_rounds(self):
        """A multi-round operation started just before the night sees its
        later rounds slow down."""
        platform = make_platform(22.8, seed=4, night_activity=0.15)
        questions = [(i, i + 1) for i in range(0, 20, 2)]
        first = platform.post_batch(questions).completion_time
        # Push the clock into deep night regardless of the first batch.
        platform.wall_clock = 23.5 * 3600
        second = platform.post_batch(questions).completion_time
        assert second > first
