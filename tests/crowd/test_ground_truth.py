"""Tests for the hidden true order."""

import numpy as np
import pytest

from repro.crowd.ground_truth import GroundTruth
from repro.errors import InvalidParameterError


class TestConstruction:
    def test_identity(self):
        truth = GroundTruth.identity(5)
        assert truth.max_element == 0
        assert truth.rank(4) == 4

    def test_explicit_order(self):
        truth = GroundTruth([2, 0, 1])
        assert truth.max_element == 2
        assert truth.rank(2) == 0
        assert truth.rank(1) == 2

    def test_random_is_a_permutation(self, rng):
        truth = GroundTruth.random(50, rng)
        assert sorted(truth.rank(e) for e in range(50)) == list(range(50))

    def test_random_is_deterministic_per_seed(self):
        first = GroundTruth.random(20, np.random.default_rng(5))
        second = GroundTruth.random(20, np.random.default_rng(5))
        assert [first.rank(e) for e in range(20)] == [
            second.rank(e) for e in range(20)
        ]

    def test_rejects_non_permutation(self):
        with pytest.raises(InvalidParameterError):
            GroundTruth([0, 0, 1])
        with pytest.raises(InvalidParameterError):
            GroundTruth([1, 2, 3])

    def test_rejects_empty_random(self, rng):
        with pytest.raises(InvalidParameterError):
            GroundTruth.random(0, rng)


class TestComparisons:
    def test_better_follows_rank(self):
        truth = GroundTruth([3, 1, 0, 2])
        assert truth.better(3, 2) == 3
        assert truth.better(0, 1) == 1

    def test_answer_structure(self):
        truth = GroundTruth.identity(4)
        answer = truth.answer(2, 1)
        assert answer.winner == 1
        assert answer.loser == 2

    def test_answers_are_transitively_consistent(self, rng):
        truth = GroundTruth.random(10, rng)
        for a in range(10):
            for b in range(10):
                for c in range(10):
                    if len({a, b, c}) < 3:
                        continue
                    if truth.better(a, b) == a and truth.better(b, c) == b:
                        assert truth.better(a, c) == a

    def test_self_comparison_rejected(self):
        with pytest.raises(InvalidParameterError):
            GroundTruth.identity(3).better(1, 1)

    def test_unknown_element(self):
        with pytest.raises(InvalidParameterError):
            GroundTruth.identity(3).rank(9)

    def test_rank_gap(self):
        truth = GroundTruth([4, 3, 2, 1, 0])
        assert truth.rank_gap(4, 0) == 4
        assert truth.rank_gap(2, 3) == 1
