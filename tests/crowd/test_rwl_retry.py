"""Tests for the RWL retry/backoff/degradation path (repro.crowd.faults).

The bare-platform behaviour of the RWL is covered by
``tests/crowd/test_rwl.py``; this module exercises the layer on top of a
fault-injecting platform.
"""

import numpy as np
import pytest

from repro import obs
from repro.crowd.faults import (
    FaultProfile,
    FaultyPlatform,
    RetryPolicy,
    fault_profile_by_name,
)
from repro.crowd.ground_truth import GroundTruth
from repro.crowd.platform import SimulatedPlatform
from repro.crowd.rwl import ReliableWorkerLayer
from repro.errors import PlatformOutageError


def _chain(n_questions):
    return [(i, i + 1) for i in range(n_questions)]


def _rwl(profile, retry_policy, seed=1, fault_seed=7, repetition=1):
    truth = GroundTruth.random(64, np.random.default_rng(0))
    platform = FaultyPlatform(
        SimulatedPlatform(truth, np.random.default_rng(seed)),
        profile,
        np.random.default_rng(fault_seed),
    )
    return ReliableWorkerLayer(
        platform,
        np.random.default_rng(seed),
        repetition=repetition,
        retry_policy=retry_policy,
    )


class TestRetryRecoversLostAnswers:
    def test_lossy_round_resolves_every_question(self):
        rwl = _rwl(
            fault_profile_by_name("lossy"), RetryPolicy(max_attempts=10)
        )
        result = rwl.ask(_chain(40))
        assert len(result.answers) == 40
        assert result.unanswered == ()
        assert result.attempts > 1
        # Only the unanswered questions were re-posted.
        assert 40 < result.questions_posted < 80

    def test_retries_add_latency(self):
        baseline = _rwl(FaultProfile.none(), None)
        clean = baseline.ask(_chain(40))
        retried = _rwl(
            fault_profile_by_name("lossy"),
            RetryPolicy(max_attempts=10, base_backoff=120.0, jitter=0.0),
        ).ask(_chain(40))
        assert retried.attempts > 1
        assert retried.latency > clean.latency

    def test_outages_are_absorbed_by_the_policy(self):
        profile = FaultProfile(outage_prob=0.5, outage_detection_time=300.0)
        rwl = _rwl(profile, RetryPolicy(max_attempts=20, jitter=0.0), fault_seed=3)
        result = rwl.ask(_chain(20))
        assert len(result.answers) == 20
        assert result.attempts > 1
        # Every absorbed outage contributed its detection time.
        platform = rwl.platform
        assert platform.fault_stats.outages >= 1
        assert result.latency >= 300.0 * platform.fault_stats.outages

    def test_retry_emits_batch_retried_events(self):
        tracer = obs.RecordingTracer()
        rwl = _rwl(fault_profile_by_name("lossy"), RetryPolicy(max_attempts=10))
        rwl._tracer = tracer
        result = rwl.ask(_chain(40))
        retries = [
            r.event for r in tracer.records if r.event.kind == "BatchRetried"
        ]
        assert len(retries) == result.attempts - 1
        assert retries[0].attempt == 2
        assert retries[0].reason == "unanswered"
        assert retries[0].backoff_seconds > 0


class TestGracefulDegradation:
    def test_attempt_budget_exhaustion_reports_unanswered(self):
        profile = FaultProfile(drop_prob=1.0)  # nothing ever arrives
        rwl = _rwl(profile, RetryPolicy(max_attempts=3, jitter=0.0))
        result = rwl.ask(_chain(15))
        assert result.answers == ()
        assert len(result.unanswered) == 15
        assert result.attempts == 3

    def test_deadline_stops_retrying(self):
        profile = FaultProfile(drop_prob=1.0)
        # The first batch takes a few hundred simulated seconds, so a tight
        # deadline forbids even one retry.
        rwl = _rwl(
            profile,
            RetryPolicy(max_attempts=50, deadline=1.0, jitter=0.0),
        )
        result = rwl.ask(_chain(15))
        assert result.attempts == 1
        assert len(result.unanswered) == 15

    def test_partial_recovery_returns_conflict_free_subset(self):
        profile = FaultProfile(drop_prob=0.6)
        rwl = _rwl(profile, RetryPolicy(max_attempts=2, jitter=0.0))
        result = rwl.ask(_chain(40))
        answered = {answer.question for answer in result.answers}
        assert answered.isdisjoint(result.unanswered)
        assert len(answered) + len(result.unanswered) == 40
        assert len(result.unanswered) > 0

    def test_unanswered_metric_recorded(self):
        registry = obs.get_registry()
        registry.reset()
        rwl = _rwl(FaultProfile(drop_prob=1.0), RetryPolicy(max_attempts=2))
        rwl.ask(_chain(10))
        assert registry.counter("rwl.unanswered").value == 10
        assert registry.counter("rwl.retries").value == 1


class TestWithoutRetryPolicy:
    def test_outage_propagates(self):
        profile = FaultProfile(outage_prob=1.0)
        rwl = _rwl(profile, None)
        with pytest.raises(PlatformOutageError):
            rwl.ask(_chain(10))

    def test_lost_answers_degrade_immediately(self):
        profile = FaultProfile(drop_prob=0.5)
        rwl = _rwl(profile, None)
        result = rwl.ask(_chain(40))
        assert result.attempts == 1
        assert len(result.answers) + len(result.unanswered) == 40
        assert len(result.unanswered) > 0

    def test_fault_free_result_reports_no_retries(self, rng):
        truth = GroundTruth.random(30, np.random.default_rng(0))
        platform = SimulatedPlatform(truth, rng)
        result = ReliableWorkerLayer(platform, rng).ask(_chain(20))
        assert result.attempts == 1
        assert result.unanswered == ()
        assert len(result.answers) == 20


class TestRepetitionInteraction:
    def test_question_counts_multiply_by_repetition(self):
        rwl = _rwl(
            fault_profile_by_name("lossy"),
            RetryPolicy(max_attempts=10),
            repetition=3,
        )
        result = rwl.ask(_chain(10))
        assert len(result.answers) == 10
        assert result.questions_posted >= 30
        assert result.questions_posted % 3 == 0


class TestPerQueryBudget:
    """ask(budget=...) clips retry backoff to the remaining query budget."""

    POLICY = RetryPolicy(max_attempts=10, base_backoff=500.0, jitter=0.0)

    def _lossy(self):
        return _rwl(fault_profile_by_name("lossy"), self.POLICY)

    def test_no_budget_is_bit_identical_to_omitting_it(self):
        unbudgeted = self._lossy().ask(_chain(40))
        explicit_none = self._lossy().ask(_chain(40), budget=None)
        assert explicit_none == unbudgeted

    def test_loose_budget_changes_nothing(self):
        unbudgeted = self._lossy().ask(_chain(40))
        loose = self._lossy().ask(_chain(40), budget=1e9)
        assert loose == unbudgeted

    def test_overshooting_backoff_is_truncated_not_skipped(self):
        # Regression for the boundary tick: a retry whose full backoff
        # would overshoot the budget must still happen, with its sleep
        # truncated to the exact remainder — not be dropped wholesale.
        two_attempts = RetryPolicy(
            max_attempts=2, base_backoff=500.0, jitter=0.0
        )
        unbudgeted = _rwl(
            fault_profile_by_name("lossy"), two_attempts
        ).ask(_chain(40))
        assert unbudgeted.attempts == 2
        single = _rwl(
            fault_profile_by_name("lossy"), RetryPolicy(max_attempts=1)
        ).ask(_chain(40))
        # Budget runs out 200 s into the 500 s backoff before attempt 2.
        budget = single.latency + 200.0
        clipped = _rwl(
            fault_profile_by_name("lossy"), two_attempts
        ).ask(_chain(40), budget=budget)
        assert clipped.attempts == 2
        # The second attempt fired at exactly the budget boundary, so the
        # run is 300 s (the truncated portion of the sleep) shorter than
        # the unbudgeted one while posting the same copies.
        assert clipped.latency == pytest.approx(unbudgeted.latency - 300.0)
        assert clipped.questions_posted == unbudgeted.questions_posted
        assert len(clipped.answers) == len(unbudgeted.answers)

    def test_exhausted_budget_stops_retrying(self):
        single = _rwl(
            fault_profile_by_name("lossy"), RetryPolicy(max_attempts=1)
        ).ask(_chain(40))
        # Budget spent before the first backoff: degrade immediately.
        clipped = self._lossy().ask(_chain(40), budget=single.latency)
        assert clipped.attempts == 1
        assert clipped.latency == single.latency
        assert len(clipped.unanswered) > 0

    def test_budget_never_blocks_the_first_attempt(self):
        # The budget gates backoff sleeps, not posting: even a tiny
        # budget still buys one attempt.
        clipped = self._lossy().ask(_chain(40), budget=1.0)
        assert clipped.attempts == 1
        assert len(clipped.answers) > 0
