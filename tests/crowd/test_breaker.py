"""Circuit breaker: state machine and scheduler integration."""

import pytest

from repro.core.latency import mturk_car_latency
from repro.crowd.breaker import (
    BreakerState,
    CircuitBreaker,
    CircuitBreakerConfig,
    RoundDecision,
)
from repro.crowd.faults import RetryPolicy, fault_profile_by_name
from repro.errors import InvalidParameterError
from repro.service import MaxScheduler, generate_workload, workload_by_name


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"cooldown_seconds": 0.0},
            {"cooldown_seconds": -5.0},
            {"probe_successes": 0},
        ],
    )
    def test_rejects_out_of_domain_parameters(self, kwargs):
        with pytest.raises(InvalidParameterError):
            CircuitBreakerConfig(**kwargs)


class TestStateMachine:
    def test_starts_closed_and_posts(self):
        breaker = CircuitBreaker()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow_post()
        assert breaker.before_round(0.0) is RoundDecision.POST

    def test_trips_after_consecutive_outages(self):
        breaker = CircuitBreaker(CircuitBreakerConfig(failure_threshold=3))
        breaker.record_outage()
        breaker.record_outage()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_outage()
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 1

    def test_success_resets_the_outage_streak(self):
        breaker = CircuitBreaker(CircuitBreakerConfig(failure_threshold=2))
        breaker.record_outage()
        breaker.record_success()
        breaker.record_outage()
        assert breaker.state is BreakerState.CLOSED

    def test_open_blocks_posts_and_counts_them(self):
        breaker = CircuitBreaker(CircuitBreakerConfig(failure_threshold=1))
        breaker.record_outage()
        assert not breaker.allow_post()
        assert not breaker.allow_post()
        assert breaker.blocked_posts == 2

    def test_open_defers_until_cooldown_then_probes(self):
        breaker = CircuitBreaker(
            CircuitBreakerConfig(failure_threshold=1, cooldown_seconds=100.0)
        )
        breaker.record_outage()
        breaker.note_time(50.0)
        assert breaker.before_round(60.0) is RoundDecision.DEFER
        assert breaker.defer_target(60.0) == 150.0
        assert breaker.before_round(150.0) is RoundDecision.PROBE
        assert breaker.state is BreakerState.HALF_OPEN

    def test_open_without_timestamp_stamps_itself_on_first_round(self):
        # The RWL trips the breaker clock-lessly; if the scheduler never
        # called note_time, the first before_round supplies the timestamp.
        breaker = CircuitBreaker(
            CircuitBreakerConfig(failure_threshold=1, cooldown_seconds=100.0)
        )
        breaker.record_outage()
        assert breaker.opened_at is None
        assert breaker.before_round(40.0) is RoundDecision.DEFER
        assert breaker.opened_at == 40.0

    def test_half_open_success_closes(self):
        breaker = CircuitBreaker(
            CircuitBreakerConfig(failure_threshold=1, cooldown_seconds=10.0)
        )
        breaker.record_outage()
        breaker.note_time(0.0)
        assert breaker.before_round(10.0) is RoundDecision.PROBE
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.closes == 1

    def test_half_open_outage_reopens(self):
        breaker = CircuitBreaker(
            CircuitBreakerConfig(failure_threshold=1, cooldown_seconds=10.0)
        )
        breaker.record_outage()
        breaker.note_time(0.0)
        breaker.before_round(10.0)
        breaker.record_outage()
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 2
        # The re-open clears the stamp; the next round re-stamps it.
        assert breaker.opened_at is None

    def test_multiple_probe_successes_required_when_configured(self):
        breaker = CircuitBreaker(
            CircuitBreakerConfig(
                failure_threshold=1, cooldown_seconds=10.0, probe_successes=2
            )
        )
        breaker.record_outage()
        breaker.note_time(0.0)
        breaker.before_round(10.0)
        breaker.record_success()
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_state_dict_round_trip(self):
        breaker = CircuitBreaker(CircuitBreakerConfig(failure_threshold=2))
        breaker.record_outage()
        breaker.record_outage()
        breaker.note_time(123.0)
        breaker.allow_post()
        clone = CircuitBreaker(breaker.config)
        clone.load_state_dict(breaker.state_dict())
        assert clone.state_dict() == breaker.state_dict()
        assert clone.state is BreakerState.OPEN
        assert clone.opened_at == 123.0


def _sustained_scheduler(breaker_config=None, seed=11):
    specs = generate_workload(workload_by_name("smoke"), seed=seed)
    return MaxScheduler(
        specs,
        mturk_car_latency(),
        seed=seed,
        fault_profile=fault_profile_by_name("sustained"),
        retry_policy=RetryPolicy(),
        breaker_config=breaker_config,
    )


class TestSchedulerIntegration:
    def test_breaker_stops_posting_while_platform_is_down(self):
        """The acceptance property: a sustained outage trips the circuit,
        ZERO posts hit the platform while it is open, and the workload
        still completes once the maintenance window ends."""
        without = _sustained_scheduler().run()
        scheduler = _sustained_scheduler(
            CircuitBreakerConfig(failure_threshold=2, cooldown_seconds=1800.0)
        )
        platform = scheduler.platform
        original_post = platform.post_batch
        posts_while_open = 0

        def counting_post(questions):
            nonlocal posts_while_open
            if scheduler.breaker.state is BreakerState.OPEN:
                posts_while_open += 1
            return original_post(questions)

        platform.post_batch = counting_post
        report = scheduler.run()

        assert posts_while_open == 0
        assert scheduler.breaker.opens >= 1
        assert scheduler.breaker.closes >= 1
        assert scheduler.breaker.state is BreakerState.CLOSED
        # Every query completes once the window lifts, and the breaker
        # wastes far fewer posts on the dead platform than raw retries do.
        window_end = scheduler.platform.profile.outage_window[1]
        assert all(r.state.value == "completed" for r in report.results)
        assert report.makespan > window_end
        assert all(r.state.value == "completed" for r in without.results)

    def test_breaker_burns_fewer_outages_than_raw_retries(self):
        bare = _sustained_scheduler()
        bare_report = bare.run()
        guarded = _sustained_scheduler(
            CircuitBreakerConfig(failure_threshold=2, cooldown_seconds=1800.0)
        )
        guarded_report = guarded.run()
        assert guarded.platform.fault_stats.outages < bare.platform.fault_stats.outages
        assert all(
            r.state.value == "completed" for r in guarded_report.results
        )
        assert all(r.state.value == "completed" for r in bare_report.results)

    def test_deferred_rounds_advance_the_clock_past_the_cooldown(self):
        scheduler = _sustained_scheduler(
            CircuitBreakerConfig(failure_threshold=2, cooldown_seconds=1800.0)
        )
        opened_ticks = []
        while scheduler.step():
            if scheduler.breaker.state is BreakerState.OPEN:
                opened_ticks.append((scheduler.ticks, scheduler.now))
        assert opened_ticks, "breaker never opened under the sustained profile"

    def test_zero_retry_attempts_while_open(self):
        """While the circuit is open the RWL never draws a retry backoff:
        the platform sees no batches at all between trip and probe."""
        config = CircuitBreakerConfig(
            failure_threshold=2, cooldown_seconds=1800.0
        )
        scheduler = _sustained_scheduler(config)
        platform = scheduler.platform
        breaker = scheduler.breaker
        deferred_steps = 0
        while True:
            # A step starting with the circuit open and the cooldown not
            # yet elapsed is a deferral: the platform must stay untouched.
            will_defer = breaker.state is BreakerState.OPEN and (
                breaker.opened_at is None
                or scheduler.now
                < breaker.opened_at + config.cooldown_seconds
            )
            before = (
                platform.fault_stats.outages,
                platform.inner.stats.batches_posted,
            )
            if not scheduler.step():
                break
            after = (
                platform.fault_stats.outages,
                platform.inner.stats.batches_posted,
            )
            if will_defer:
                deferred_steps += 1
                assert after == before
        assert deferred_steps >= 1, "circuit never deferred a round"
