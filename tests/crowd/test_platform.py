"""Tests for the discrete-event platform simulation."""

import numpy as np
import pytest

from repro.crowd.error_models import UniformError
from repro.crowd.ground_truth import GroundTruth
from repro.crowd.platform import SimulatedPlatform
from repro.crowd.workers import WorkerPoolConfig
from repro.errors import PlatformError


def make_platform(seed=0, n=50, **config_kwargs):
    rng = np.random.default_rng(seed)
    truth = GroundTruth.random(n, rng)
    config = WorkerPoolConfig(**config_kwargs) if config_kwargs else None
    return SimulatedPlatform(truth, rng, config=config), truth


class TestBatchExecution:
    def test_every_question_answered(self):
        platform, _ = make_platform()
        questions = [(i, i + 1) for i in range(0, 40, 2)]
        result = platform.post_batch(questions)
        assert result.n_answers == len(questions)
        assert [wa.question for wa in result.worker_answers] == questions

    def test_answers_match_ground_truth_for_perfect_workers(self):
        platform, truth = make_platform()
        result = platform.post_batch([(0, 1), (2, 3), (4, 5)])
        for worker_answer in result.worker_answers:
            a, b = worker_answer.question
            assert worker_answer.answer.winner == truth.better(a, b)

    def test_completion_time_is_last_submission(self):
        platform, _ = make_platform()
        result = platform.post_batch([(i, i + 1) for i in range(0, 30, 2)])
        assert result.completion_time == max(
            wa.submit_time for wa in result.worker_answers
        )

    def test_empty_batch(self):
        platform, _ = make_platform()
        result = platform.post_batch([])
        assert result.completion_time == 0.0
        assert result.n_answers == 0

    def test_duplicate_questions_answered_independently(self):
        platform, _ = make_platform(n=4)
        result = platform.post_batch([(0, 1)] * 5)
        assert result.n_answers == 5

    def test_self_comparison_rejected(self):
        platform, _ = make_platform()
        with pytest.raises(PlatformError):
            platform.post_batch([(3, 3)])

    def test_deterministic_under_seed(self):
        first, _ = make_platform(seed=11)
        second, _ = make_platform(seed=11)
        questions = [(i, i + 1) for i in range(0, 20, 2)]
        assert (
            first.post_batch(questions).completion_time
            == second.post_batch(questions).completion_time
        )


class TestLatencyShape:
    def test_small_batches_dominated_by_discovery(self):
        """Tiny batches take roughly the discovery delay (the delta of the
        paper's linear fit)."""
        times = []
        for seed in range(20):
            platform, _ = make_platform(seed=seed)
            times.append(platform.post_batch([(0, 1)]).completion_time)
        assert 100 < np.mean(times) < 400

    def test_oversized_batches_take_longer(self):
        """Past the worker-pool saturation point latency must grow clearly
        with batch size (the Section 6.6 motivation)."""

        def mean_time(batch_size):
            times = []
            for seed in range(5):
                platform, _ = make_platform(seed=seed, n=200)
                questions = [
                    (i % 199, 199) for i in range(batch_size)
                ]
                times.append(platform.post_batch(questions).completion_time)
            return np.mean(times)

        assert mean_time(4000) > mean_time(400) + 100

    def test_parallelism_compensates_mid_range(self):
        """Between 100 and 1000 questions the pool grows with the batch, so
        latency grows sub-linearly (the flat region of Figure 11(a))."""

        def mean_time(batch_size):
            times = []
            for seed in range(10):
                platform, _ = make_platform(seed=seed, n=200)
                questions = [(i % 199, 199) for i in range(batch_size)]
                times.append(platform.post_batch(questions).completion_time)
            return np.mean(times)

        assert mean_time(1000) < 2 * mean_time(100)


class TestWorkerDynamics:
    def test_attention_span_brings_replacements(self):
        """With a 1-question attention span every answer needs a fresh
        worker, so many distinct workers participate."""
        platform, _ = make_platform(attention_span=1)
        result = platform.post_batch([(i, i + 1) for i in range(0, 30, 2)])
        assert result.n_workers == result.n_answers

    def test_unlimited_attention_uses_the_attracted_pool(self):
        platform, _ = make_platform()
        result = platform.post_batch([(i, i + 1) for i in range(0, 30, 2)])
        assert result.n_workers <= WorkerPoolConfig().attracted_workers(15)

    def test_stats_accumulate(self):
        platform, _ = make_platform()
        platform.post_batch([(0, 1)])
        platform.post_batch([(2, 3), (4, 5)])
        assert platform.stats.batches_posted == 2
        assert platform.stats.questions_posted == 3


class TestErrors:
    def test_uniform_error_rate_visible_in_answers(self):
        rng = np.random.default_rng(3)
        truth = GroundTruth.random(10, rng)
        platform = SimulatedPlatform(
            truth, rng, error_model=UniformError(0.25)
        )
        result = platform.post_batch([(0, 1)] * 4000)
        wrong = sum(
            wa.answer.winner != truth.better(0, 1)
            for wa in result.worker_answers
        )
        assert wrong / 4000 == pytest.approx(0.25, abs=0.03)
