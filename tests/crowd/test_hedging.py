"""Unit tests for hedged posting on the capacity-aware router.

Scheduler-level hedging properties (answer invariance, ``hedge_after ==
inf`` bit-identity) live in ``tests/service/test_hedging.py``; this
module drives :meth:`CapacityAwareRouter.post_round` directly.
"""

import math

import numpy as np
import pytest

from repro.core.latency import LinearLatency
from repro.crowd.faults import FaultProfile
from repro.crowd.ground_truth import GroundTruth
from repro.crowd.multibackend import (
    BackendSpec,
    CapacityAwareRouter,
    HedgeConfig,
    build_backends,
)
from repro.errors import InvalidParameterError
from repro.obs.tracer import RecordingTracer, use_tracer

FAST = LinearLatency(delta=100.0, alpha=0.1)
SLOW = LinearLatency(delta=400.0, alpha=0.1)


def _truth(n=300, seed=0):
    return GroundTruth.random(n, np.random.default_rng((seed, 0)))


def _router(specs, policy="least-loaded", hedge=None, seed=0):
    fleet = build_backends(specs, _truth(seed=seed), seed)
    return CapacityAwareRouter(fleet, policy, hedge=hedge)


def _questions(n, start=0):
    return [(start + i, start + i + 100) for i in range(n)]


def _pair(hedge, slow_faults=None):
    return _router(
        [
            BackendSpec(
                name="slowpoke",
                latency=SLOW,
                capacity=50,
                fault_profile=slow_faults,
            ),
            BackendSpec(name="rocket", latency=FAST, capacity=50),
        ],
        hedge=hedge,
    )


class TestHedgeConfig:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            HedgeConfig(hedge_after=0.0)
        with pytest.raises(InvalidParameterError):
            HedgeConfig(percentile=0.0)
        with pytest.raises(InvalidParameterError):
            HedgeConfig(factor=0.0)
        with pytest.raises(InvalidParameterError):
            HedgeConfig(min_samples=0)
        with pytest.raises(InvalidParameterError):
            HedgeConfig(window=4, min_samples=8)

    def test_explicit_threshold_arms_immediately(self):
        router = _pair(HedgeConfig(hedge_after=300.0))
        assert router.hedge_after_threshold() == 300.0

    def test_infinite_threshold_never_arms(self):
        router = _pair(HedgeConfig(hedge_after=math.inf))
        assert router.hedge_after_threshold() is None

    def test_derived_threshold_needs_min_samples(self):
        router = _pair(HedgeConfig(min_samples=2, window=8))
        assert router.hedge_after_threshold() is None
        router.post_round(
            [(0, _questions(4)), (1, _questions(4, start=10))],
            now=0.0,
            tick=0,
        )
        # Two sub-batches posted -> two observed latencies -> armed.
        assert router.hedge_after_threshold() is not None


class TestHedgedRounds:
    def test_slow_primary_is_mirrored_to_the_fast_backend(self):
        router = _pair(HedgeConfig(hedge_after=300.0))
        outcome = router.post_round(
            [(0, _questions(4)), (1, _questions(4, start=10))],
            now=0.0,
            tick=0,
        )
        # least-loaded put one block on each backend; the slow one's
        # predicted ~400 s exceeds the 300 s threshold and rocket has
        # room, so that block was hedged.
        assert outcome.hedged_questions
        assert router.hedges == 1
        assert outcome.n_posted == 8
        # Every hedged question still resolved exactly once.
        answered = {a.question for a in outcome.answers}
        assert outcome.hedged_questions <= answered

    def test_losing_copy_is_accounted_as_waste(self):
        router = _pair(HedgeConfig(hedge_after=300.0))
        router.post_round(
            [(0, _questions(4)), (1, _questions(4, start=10))],
            now=0.0,
            tick=0,
        )
        assert router.hedge_waste > 0

    def test_mirror_wins_when_the_primary_is_down(self):
        # slowpoke is mid-outage: the mirror copy is the only survivor.
        router = _pair(
            HedgeConfig(hedge_after=300.0),
            slow_faults=FaultProfile(
                outage_window=(0.0, 1e6), outage_detection_time=60.0
            ),
        )
        outcome = router.post_round(
            [(0, _questions(4)), (1, _questions(4, start=10))],
            now=10.0,
            tick=0,
        )
        assert router.hedge_wins == 1
        assert "slowpoke" in outcome.outaged
        assert not outcome.total_outage
        answered = {a.question for a in outcome.answers}
        assert outcome.hedged_questions <= answered

    def test_no_hedge_without_a_strictly_faster_mirror(self):
        # Identical backends: mirroring cannot beat the primary, so the
        # router must not double-post.
        router = _router(
            [
                BackendSpec(name="a", latency=SLOW, capacity=50),
                BackendSpec(name="b", latency=SLOW, capacity=50),
            ],
            hedge=HedgeConfig(hedge_after=300.0),
        )
        outcome = router.post_round(
            [(0, _questions(4)), (1, _questions(4, start=10))],
            now=0.0,
            tick=0,
        )
        assert not outcome.hedged_questions
        assert router.hedges == 0

    def test_no_hedge_without_mirror_capacity(self):
        router = _router(
            [
                BackendSpec(name="slowpoke", latency=SLOW, capacity=50),
                BackendSpec(name="rocket", latency=FAST, capacity=4),
            ],
            hedge=HedgeConfig(hedge_after=300.0),
        )
        outcome = router.post_round(
            [(0, _questions(8)), (1, _questions(4, start=10))],
            now=0.0,
            tick=0,
        )
        assert not outcome.hedged_questions

    def test_suspension_gates_hedging(self):
        router = _pair(HedgeConfig(hedge_after=300.0))
        router.hedging_suspended = True
        outcome = router.post_round(
            [(0, _questions(4)), (1, _questions(4, start=10))],
            now=0.0,
            tick=0,
        )
        assert not outcome.hedged_questions
        router.hedging_suspended = False
        outcome = router.post_round(
            [(0, _questions(4)), (1, _questions(4, start=10))],
            now=5000.0,
            tick=1,
        )
        assert outcome.hedged_questions

    def test_round_hedged_event_carries_the_pair(self):
        tracer = RecordingTracer()
        router = _pair(HedgeConfig(hedge_after=300.0))
        with use_tracer(tracer):
            router.post_round(
                [(0, _questions(4)), (1, _questions(4, start=10))],
                now=0.0,
                tick=3,
            )
        events = [
            r.event for r in tracer.records if r.event.kind == "RoundHedged"
        ]
        assert len(events) == 1
        assert events[0].tick == 3
        assert events[0].backend == "slowpoke"
        assert events[0].mirror == "rocket"
        assert events[0].winner in ("primary", "mirror")

    def test_state_dict_round_trips_hedge_totals(self):
        router = _pair(HedgeConfig(hedge_after=300.0))
        router.post_round(
            [(0, _questions(4)), (1, _questions(4, start=10))],
            now=0.0,
            tick=0,
        )
        clone = _pair(HedgeConfig(hedge_after=300.0))
        clone.load_state_dict(router.state_dict())
        assert clone.hedge_summary() == router.hedge_summary()
        assert clone.hedging_suspended == router.hedging_suspended
        assert clone.hedge_after_threshold() == router.hedge_after_threshold()
