"""Tests for worker error models."""

import numpy as np
import pytest

from repro.crowd.error_models import (
    DistanceSensitiveError,
    PerfectWorkers,
    UniformError,
)
from repro.crowd.ground_truth import GroundTruth


class TestPerfectWorkers:
    def test_zero_error_probability(self):
        truth = GroundTruth.identity(5)
        assert PerfectWorkers().error_probability(truth, 0, 4) == 0.0

    def test_answers_always_correct(self, rng):
        truth = GroundTruth.identity(10)
        model = PerfectWorkers()
        for _ in range(50):
            a, b = rng.choice(10, size=2, replace=False)
            answer = model.worker_answer(truth, int(a), int(b), rng)
            assert answer.winner == truth.better(int(a), int(b))


class TestUniformError:
    def test_rate_bounds(self):
        with pytest.raises(Exception):
            UniformError(0.5)
        with pytest.raises(Exception):
            UniformError(-0.1)
        UniformError(0.0)
        UniformError(0.49)

    def test_empirical_error_rate(self):
        truth = GroundTruth.identity(4)
        model = UniformError(0.3)
        rng = np.random.default_rng(0)
        wrong = sum(
            model.worker_answer(truth, 0, 3, rng).winner == 3
            for _ in range(5000)
        )
        assert wrong / 5000 == pytest.approx(0.3, abs=0.03)


class TestDistanceSensitiveError:
    def test_adjacent_pairs_hardest(self):
        truth = GroundTruth.identity(20)
        model = DistanceSensitiveError(base=0.4, scale=5.0)
        adjacent = model.error_probability(truth, 5, 6)
        distant = model.error_probability(truth, 0, 19)
        assert adjacent == pytest.approx(0.4)
        assert distant < 0.02
        assert adjacent > distant

    def test_monotone_in_gap(self):
        truth = GroundTruth.identity(30)
        model = DistanceSensitiveError()
        probabilities = [
            model.error_probability(truth, 0, other) for other in range(1, 30)
        ]
        assert all(
            later <= earlier
            for earlier, later in zip(probabilities, probabilities[1:])
        )

    def test_parameter_validation(self):
        with pytest.raises(Exception):
            DistanceSensitiveError(base=0.6)
        with pytest.raises(Exception):
            DistanceSensitiveError(scale=0)
