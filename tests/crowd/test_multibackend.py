"""Unit tests for the multi-backend federation layer (specs + router)."""

import dataclasses
import json

import numpy as np
import pytest

from repro.core.latency import LinearLatency, mturk_car_latency
from repro.crowd.breaker import CircuitBreakerConfig, RoundDecision
from repro.crowd.faults import FaultProfile
from repro.crowd.ground_truth import GroundTruth
from repro.crowd.multibackend import (
    PROBE_QUESTIONS,
    BackendSpec,
    CapacityAwareRouter,
    available_backend_presets,
    backend_preset_by_name,
    backend_spec_from_dict,
    backend_spec_to_dict,
    build_backends,
    load_backend_specs,
    resolve_backends,
    validate_fleet,
)
from repro.crowd.workers import WorkerPoolConfig
from repro.errors import InvalidParameterError

FAST = LinearLatency(delta=100.0, alpha=0.1)
SLOW = LinearLatency(delta=400.0, alpha=0.1)


def _truth(n=30, seed=0):
    return GroundTruth.random(n, np.random.default_rng((seed, 0)))


def _fleet(specs, seed=0, **kwargs):
    return build_backends(specs, _truth(seed=seed), seed, **kwargs)


def _questions(n, start=0):
    return [(start + i, start + i + 100) for i in range(n)]


class TestBackendSpec:
    def test_rejects_empty_and_multiline_names(self):
        with pytest.raises(InvalidParameterError):
            BackendSpec(name="", latency=FAST)
        with pytest.raises(InvalidParameterError):
            BackendSpec(name="two\nlines", latency=FAST)

    def test_rejects_bad_capacity_and_price(self):
        with pytest.raises(InvalidParameterError):
            BackendSpec(name="a", latency=FAST, capacity=0)
        with pytest.raises(InvalidParameterError):
            BackendSpec(name="a", latency=FAST, price_per_question=-0.01)

    def test_fleet_validation(self):
        with pytest.raises(InvalidParameterError):
            validate_fleet([])
        dup = BackendSpec(name="a", latency=FAST)
        with pytest.raises(InvalidParameterError):
            validate_fleet([dup, BackendSpec(name="a", latency=SLOW)])

    def test_round_trips_through_dict(self):
        spec = BackendSpec(
            name="stormy",
            latency=FAST,
            capacity=120,
            price_per_question=0.02,
            fault_profile=FaultProfile(
                outage_window=(100.0, 900.0), outage_detection_time=60.0
            ),
            breaker=CircuitBreakerConfig(failure_threshold=2),
            worker_config=WorkerPoolConfig(),
        )
        restored = backend_spec_from_dict(backend_spec_to_dict(spec))
        assert restored == spec

    def test_from_dict_accepts_named_fault_profile(self):
        payload = backend_spec_to_dict(BackendSpec(name="a", latency=FAST))
        payload["fault_profile"] = "outages"
        restored = backend_spec_from_dict(payload)
        assert restored.fault_profile is not None

    def test_load_specs_from_json_file(self, tmp_path):
        specs = [
            BackendSpec(name="a", latency=FAST, capacity=10),
            BackendSpec(name="b", latency=SLOW, price_per_question=0.01),
        ]
        path = tmp_path / "fleet.json"
        path.write_text(
            json.dumps({"backends": [backend_spec_to_dict(s) for s in specs]}),
            encoding="utf-8",
        )
        assert load_backend_specs(path) == specs
        # A bare list works too.
        path.write_text(
            json.dumps([backend_spec_to_dict(s) for s in specs]),
            encoding="utf-8",
        )
        assert load_backend_specs(path) == specs

    def test_load_specs_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"nope": 1}', encoding="utf-8")
        with pytest.raises(InvalidParameterError):
            load_backend_specs(path)


class TestPresets:
    def test_known_presets(self):
        assert "trio" in available_backend_presets()
        for name in available_backend_presets():
            fleet = backend_preset_by_name(name)
            validate_fleet(fleet)

    def test_unknown_preset_lists_available(self):
        with pytest.raises(InvalidParameterError, match="trio"):
            backend_preset_by_name("nope")

    def test_resolve_prefers_files_for_paths(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(
            json.dumps(
                [backend_spec_to_dict(BackendSpec(name="a", latency=FAST))]
            ),
            encoding="utf-8",
        )
        assert resolve_backends(str(path))[0].name == "a"
        assert [s.name for s in resolve_backends("duo")] == ["boutique", "bulk"]


class TestBuildBackends:
    def test_solo_fleet_uses_legacy_rng_streams(self):
        (backend,) = _fleet([BackendSpec(name="solo", latency=FAST)], seed=9)
        expected = np.random.default_rng((9, 1)).bit_generator.state
        assert backend.inner._rng.bit_generator.state == expected
        expected_rwl = np.random.default_rng((9, 2)).bit_generator.state
        assert backend.rwl._rng.bit_generator.state == expected_rwl

    def test_multi_fleet_uses_per_backend_streams(self):
        fleet = _fleet(
            [
                BackendSpec(name="a", latency=FAST),
                BackendSpec(name="b", latency=SLOW),
            ],
            seed=9,
        )
        for index, backend in enumerate(fleet):
            expected = np.random.default_rng((9, 1, index)).bit_generator.state
            assert backend.inner._rng.bit_generator.state == expected

    def test_spec_worker_config_overrides_fleet_default(self):
        spec_cfg = WorkerPoolConfig(base_workers=3)
        fleet = _fleet(
            [
                BackendSpec(name="a", latency=FAST, worker_config=spec_cfg),
                BackendSpec(name="b", latency=SLOW),
            ],
            worker_config=WorkerPoolConfig(base_workers=7),
        )
        assert fleet[0].inner.config.base_workers == 3
        assert fleet[1].inner.config.base_workers == 7


class TestRouterAssignment:
    def _router(self, specs, policy="latency", **kwargs):
        return CapacityAwareRouter(_fleet(specs, **kwargs), policy)

    def _post(self, router):
        return {
            b.index: RoundDecision.POST for b in router.backends
        }

    def test_rejects_unknown_policy(self):
        with pytest.raises(InvalidParameterError):
            self._router([BackendSpec(name="a", latency=FAST)], policy="magic")

    def test_latency_policy_prefers_fastest_prediction(self):
        router = self._router(
            [
                BackendSpec(name="slow", latency=SLOW),
                BackendSpec(name="fast", latency=FAST),
            ]
        )
        assignment, unposted, _ = router._assign(
            [(0, _questions(5))], self._post(router)
        )
        assert not unposted
        assert len(assignment[1]) == 5  # "fast"
        assert len(assignment[0]) == 0

    def test_capacity_is_respected_and_overflow_stays_unposted(self):
        router = self._router(
            [
                BackendSpec(name="a", latency=FAST, capacity=4),
                BackendSpec(name="b", latency=SLOW, capacity=3),
            ]
        )
        assignment, unposted, _ = router._assign(
            [(0, _questions(10))], self._post(router)
        )
        assert len(assignment[0]) == 4
        assert len(assignment[1]) == 3
        assert len(unposted) == 3

    def test_blocks_stay_whole_when_any_backend_fits_them(self):
        router = self._router(
            [
                BackendSpec(name="small", latency=FAST, capacity=4),
                BackendSpec(name="big", latency=SLOW, capacity=100),
            ]
        )
        assignment, unposted, _ = router._assign(
            [(0, _questions(6))], self._post(router)
        )
        # Slower, but the only backend that takes the block whole.
        assert len(assignment[1]) == 6
        assert not unposted

    def test_weighted_price_spills_to_pricier_on_capacity(self):
        router = self._router(
            [
                BackendSpec(
                    name="pricey", latency=FAST, price_per_question=0.10
                ),
                BackendSpec(
                    name="cheap",
                    latency=SLOW,
                    price_per_question=0.01,
                    capacity=5,
                ),
            ],
            policy="weighted-price",
        )
        assignment, _, _ = router._assign(
            [(0, _questions(5)), (1, _questions(4, start=50))],
            self._post(router),
        )
        assert len(assignment[1]) == 5  # cheap fills first
        assert len(assignment[0]) == 4  # spill to the pricey backend

    def test_least_loaded_balances_occupancy(self):
        router = self._router(
            [
                BackendSpec(name="a", latency=FAST, capacity=10),
                BackendSpec(name="b", latency=FAST, capacity=10),
            ],
            policy="least-loaded",
        )
        assignment, _, _ = router._assign(
            [(0, _questions(4)), (1, _questions(4, start=50))],
            self._post(router),
        )
        assert len(assignment[0]) == 4
        assert len(assignment[1]) == 4

    def test_open_backend_is_excluded_from_the_split(self):
        router = self._router(
            [
                BackendSpec(name="dead", latency=FAST),
                BackendSpec(name="alive", latency=SLOW),
            ]
        )
        decisions = {0: RoundDecision.DEFER, 1: RoundDecision.POST}
        assignment, unposted, _ = router._assign(
            [(0, _questions(6))], decisions
        )
        assert len(assignment[0]) == 0
        assert len(assignment[1]) == 6
        assert not unposted

    def test_half_open_backend_gets_a_probe_quota(self):
        router = self._router(
            [
                BackendSpec(name="probe", latency=FAST),
                BackendSpec(name="ok", latency=SLOW),
            ]
        )
        decisions = {0: RoundDecision.PROBE, 1: RoundDecision.POST}
        assignment, unposted, _ = router._assign(
            [(0, _questions(PROBE_QUESTIONS + 20))], decisions
        )
        # Too big for the probe quota: the block lands whole on the
        # healthy backend.
        assert len(assignment[1]) == PROBE_QUESTIONS + 20
        assert not unposted
        assignment, _, _ = router._assign(
            [(0, _questions(PROBE_QUESTIONS + 20)),
             (1, _questions(4, start=50))],
            {0: RoundDecision.PROBE, 1: RoundDecision.POST},
        )
        assert len(assignment[0]) <= PROBE_QUESTIONS

    def test_all_defer_defers_the_whole_round(self):
        breaker = CircuitBreakerConfig(
            failure_threshold=1, cooldown_seconds=500.0
        )
        router = self._router(
            [
                BackendSpec(name="a", latency=FAST, breaker=breaker),
                BackendSpec(name="b", latency=SLOW, breaker=breaker),
            ]
        )
        for backend in router.backends:
            backend.breaker.record_outage()
            backend.breaker.note_time(10.0)
        admission = router.before_round(20.0)
        assert admission.defer
        assert admission.resume_at == pytest.approx(510.0)

    def test_breaker_summary_forms(self):
        router = self._router(
            [
                BackendSpec(name="a", latency=FAST),
                BackendSpec(name="b", latency=SLOW),
            ]
        )
        assert router.breaker_summary() == "none"
        breaker = CircuitBreakerConfig(failure_threshold=1)
        router = self._router(
            [
                BackendSpec(name="a", latency=FAST, breaker=breaker),
                BackendSpec(name="b", latency=SLOW, breaker=breaker),
            ]
        )
        assert router.breaker_summary() == "closed"
        router.backends[1].breaker.record_outage()
        router.backends[1].breaker.note_time(5.0)
        assert router.breaker_summary() == "b:open"

    def test_outage_trio_preset_arms_the_failover_demo(self):
        fleet = backend_preset_by_name("outage-trio")
        stormy = [s for s in fleet if s.fault_profile is not None]
        assert [s.name for s in stormy] == ["balanced"]
        assert all(s.breaker is not None for s in fleet)
        replaced = dataclasses.replace(stormy[0], fault_profile=None)
        assert replaced.latency == mturk_car_latency()
