"""Tests for the worker-pool model."""

import numpy as np
import pytest

from repro.crowd.workers import WorkerPoolConfig
from repro.errors import InvalidParameterError


class TestValidation:
    def test_defaults_are_valid(self):
        WorkerPoolConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mean_service_time": 0},
            {"mean_service_time": -1},
            {"service_sigma": -0.1},
            {"base_workers": 0},
            {"questions_per_extra_worker": 0},
            {"max_workers": 0},
            {"discovery_mean": -5},
            {"arrival_spread": -1},
            {"attention_span": 0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(InvalidParameterError):
            WorkerPoolConfig(**kwargs)


class TestAttraction:
    def test_small_batches_attract_base_workers(self):
        config = WorkerPoolConfig(base_workers=2, questions_per_extra_worker=16)
        assert config.attracted_workers(0) == 2
        assert config.attracted_workers(15) == 2

    def test_growth_with_batch_size(self):
        config = WorkerPoolConfig(
            base_workers=1, questions_per_extra_worker=16, max_workers=100
        )
        assert config.attracted_workers(160) == 11

    def test_saturation_cap(self):
        config = WorkerPoolConfig(max_workers=35)
        assert config.attracted_workers(100_000) == 35

    def test_monotone_in_batch_size(self):
        config = WorkerPoolConfig()
        values = [config.attracted_workers(q) for q in range(0, 2000, 50)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_negative_batch_rejected(self):
        with pytest.raises(InvalidParameterError):
            WorkerPoolConfig().attracted_workers(-1)


class TestSampling:
    def test_arrival_times_sorted_and_positive(self, rng):
        config = WorkerPoolConfig()
        arrivals = config.sample_arrival_times(10, rng)
        assert len(arrivals) == 10
        assert arrivals == sorted(arrivals)
        assert all(t >= 0 for t in arrivals)

    def test_first_arrival_near_discovery_mean(self):
        config = WorkerPoolConfig(discovery_mean=200.0, discovery_sigma=0.3)
        rng = np.random.default_rng(1)
        firsts = [config.sample_arrival_times(1, rng)[0] for _ in range(500)]
        assert np.mean(firsts) == pytest.approx(200.0, rel=0.1)

    def test_zero_discovery_mean(self, rng):
        config = WorkerPoolConfig(discovery_mean=0.0)
        assert config.sample_discovery_time(rng) == 0.0

    def test_service_time_mean(self):
        config = WorkerPoolConfig(mean_service_time=3.0, service_sigma=0.4)
        rng = np.random.default_rng(2)
        samples = [config.sample_service_time(rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(3.0, rel=0.05)

    def test_zero_sigma_is_deterministic(self, rng):
        config = WorkerPoolConfig(mean_service_time=3.0, service_sigma=0.0)
        assert config.sample_service_time(rng) == 3.0

    def test_invalid_worker_count(self, rng):
        with pytest.raises(InvalidParameterError):
            WorkerPoolConfig().sample_arrival_times(0, rng)


class TestWorkerSpeed:
    def test_homogeneous_by_default(self, rng):
        config = WorkerPoolConfig()
        assert config.sample_worker_speed(rng) == 1.0

    def test_heterogeneous_mean_is_one(self):
        config = WorkerPoolConfig(worker_speed_sigma=0.5)
        rng = np.random.default_rng(4)
        speeds = [config.sample_worker_speed(rng) for _ in range(5000)]
        assert np.mean(speeds) == pytest.approx(1.0, rel=0.05)
        assert np.std(speeds) > 0.3

    def test_negative_sigma_rejected(self):
        with pytest.raises(InvalidParameterError):
            WorkerPoolConfig(worker_speed_sigma=-0.1)

    def test_fast_workers_answer_more_questions(self):
        """With strong heterogeneity the per-worker answer counts become
        unequal: the fastest worker grabs a disproportionate share."""
        from collections import Counter

        from repro.crowd.ground_truth import GroundTruth
        from repro.crowd.platform import SimulatedPlatform

        rng = np.random.default_rng(6)
        truth = GroundTruth.random(100, rng)
        config = WorkerPoolConfig(
            worker_speed_sigma=1.2, arrival_spread=1.0, discovery_sigma=0.01
        )
        platform = SimulatedPlatform(truth, rng, config=config)
        questions = [(i % 99, 99) for i in range(600)]
        result = platform.post_batch(questions)
        counts = Counter(wa.worker_id for wa in result.worker_answers)
        shares = sorted(counts.values(), reverse=True)
        assert shares[0] > 3 * shares[-1]
