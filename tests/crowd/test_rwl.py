"""Tests for the Reliable Worker Layer (Section 2.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crowd.error_models import UniformError
from repro.crowd.ground_truth import GroundTruth
from repro.crowd.platform import SimulatedPlatform
from repro.crowd.rwl import ReliableWorkerLayer
from repro.errors import InvalidParameterError
from repro.graphs.answer_graph import AnswerGraph


def make_rwl(seed=0, n=20, repetition=1, error_rate=None):
    rng = np.random.default_rng(seed)
    truth = GroundTruth.random(n, rng)
    error_model = UniformError(error_rate) if error_rate else None
    platform = SimulatedPlatform(truth, rng, error_model=error_model)
    return ReliableWorkerLayer(platform, rng, repetition=repetition), truth


class TestContract:
    def test_one_answer_per_distinct_question(self):
        rwl, _ = make_rwl()
        result = rwl.ask([(0, 1), (1, 2), (0, 1)])
        assert len(result.answers) == 2
        assert {a.question for a in result.answers} == {(0, 1), (1, 2)}

    def test_empty_input(self):
        rwl, _ = make_rwl()
        result = rwl.ask([])
        assert result.answers == ()
        assert result.latency == 0.0

    def test_repetition_multiplies_posted_questions(self):
        rwl, _ = make_rwl(repetition=5)
        result = rwl.ask([(0, 1), (2, 3)])
        assert result.questions_posted == 10

    def test_invalid_repetition(self):
        rng = np.random.default_rng(0)
        truth = GroundTruth.identity(4)
        platform = SimulatedPlatform(truth, rng)
        with pytest.raises(InvalidParameterError):
            ReliableWorkerLayer(platform, rng, repetition=0)

    def test_perfect_workers_pass_through(self):
        """With error-free workers the output equals the ground truth and no
        cycle resolution fires."""
        rwl, truth = make_rwl()
        questions = [(i, i + 1) for i in range(10)]
        result = rwl.ask(questions)
        assert result.majority_flips == 0
        for answer in result.answers:
            a, b = answer.question
            assert answer.winner == truth.better(a, b)


class TestConsistency:
    @given(
        seed=st.integers(0, 200),
        error_rate=st.sampled_from([0.0, 0.2, 0.4]),
        repetition=st.sampled_from([1, 3]),
    )
    @settings(max_examples=25, deadline=None)
    def test_output_is_always_acyclic(self, seed, error_rate, repetition):
        """The RWL contract: a conflict-free answer set, whatever the
        workers did."""
        rwl, _ = make_rwl(
            seed=seed, n=8, repetition=repetition, error_rate=error_rate or None
        )
        questions = [(a, b) for a in range(8) for b in range(a + 1, 8)]
        result = rwl.ask(questions)
        graph = AnswerGraph(range(8))
        graph.record_all(result.answers)
        graph.validate_acyclic()  # raises on any cycle
        assert len(result.answers) == len(questions)

    def test_repetition_improves_accuracy(self):
        """Majority voting over more copies recovers more true answers."""

        def accuracy(repetition, seeds=15):
            correct = total = 0
            for seed in range(seeds):
                rwl, truth = make_rwl(
                    seed=seed, n=12, repetition=repetition, error_rate=0.35
                )
                questions = [(i, i + 1) for i in range(11)]
                result = rwl.ask(questions)
                for answer in result.answers:
                    a, b = answer.question
                    correct += answer.winner == truth.better(a, b)
                    total += 1
            return correct / total

        assert accuracy(7) > accuracy(1)

    def test_cycle_resolution_reports_flips(self):
        """With very noisy workers on a clique, cycles appear and the repair
        flips at least one majority edge in some run."""
        total_flips = 0
        for seed in range(30):
            rwl, _ = make_rwl(seed=seed, n=6, repetition=1, error_rate=0.45)
            questions = [(a, b) for a in range(6) for b in range(a + 1, 6)]
            total_flips += rwl.ask(questions).majority_flips
        assert total_flips > 0

    def test_latency_comes_from_one_batch(self):
        """Repetition happens inside a single platform batch, not extra
        rounds: latency equals that batch's completion time."""
        rwl, _ = make_rwl(repetition=3)
        result = rwl.ask([(0, 1), (2, 3)])
        assert result.latency > 0
        assert rwl.platform.stats.batches_posted == 1
