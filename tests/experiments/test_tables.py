"""Tests for experiment table formatting."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.tables import ExperimentResult, format_cell


class TestFormatCell:
    def test_floats(self):
        assert format_cell(1234.5) == "1,234"
        assert format_cell(12.345) == "12.35"
        assert format_cell(0.00123) == "0.00123"
        assert format_cell(float("nan")) == "-"

    def test_bools_and_ints(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"
        assert format_cell(42) == "42"

    def test_strings_pass_through(self):
        assert format_cell("tDP") == "tDP"


class TestExperimentResult:
    def make(self):
        table = ExperimentResult(
            name="demo",
            title="A demo table",
            columns=("x", "y"),
        )
        table.add_row(1, 10.0)
        table.add_row(2, 20.0)
        return table

    def test_add_row_checks_arity(self):
        table = self.make()
        with pytest.raises(ExperimentError):
            table.add_row(3)

    def test_to_text_contains_everything(self):
        text = self.make().to_text()
        assert "# demo: A demo table" in text
        assert "x" in text and "y" in text
        assert "20" in text

    def test_notes_rendered(self):
        table = self.make()
        table.notes = "hello world"
        assert "notes: hello world" in table.to_text()

    def test_column_accessor(self):
        table = self.make()
        assert table.column("x") == [1, 2]
        assert table.column("y") == [10.0, 20.0]

    def test_column_unknown(self):
        with pytest.raises(ExperimentError):
            self.make().column("z")

    def test_empty_table_renders(self):
        table = ExperimentResult(name="e", title="t", columns=("only",))
        assert "only" in table.to_text()
