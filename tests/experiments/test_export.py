"""Tests for experiment result serialization."""

import csv
import io
import json

import pytest

from repro.errors import InvalidParameterError
from repro.experiments.export import (
    from_json,
    to_csv,
    to_json,
    to_markdown,
    to_report,
)
from repro.experiments.tables import ExperimentResult


def sample_table():
    table = ExperimentResult(
        name="fig99",
        title="A sample",
        columns=("budget", "tDP (s)"),
        notes="hello",
    )
    table.add_row(100, 700.5)
    table.add_row(200, 500.0)
    return table


class TestJson:
    def test_round_trip(self):
        original = [sample_table()]
        restored = from_json(to_json(original))
        assert len(restored) == 1
        assert restored[0].name == "fig99"
        assert restored[0].columns == ("budget", "tDP (s)")
        assert restored[0].rows == [(100, 700.5), (200, 500.0)]
        assert restored[0].notes == "hello"

    def test_json_is_valid(self):
        payload = json.loads(to_json([sample_table()]))
        assert payload[0]["rows"][0] == [100, 700.5]

    def test_invalid_json_rejected(self):
        with pytest.raises(InvalidParameterError):
            from_json("not json at all")


class TestCsv:
    def test_header_and_rows(self):
        rows = list(csv.reader(io.StringIO(to_csv(sample_table()))))
        assert rows[0] == ["budget", "tDP (s)"]
        assert rows[1] == ["100", "700.5"]
        assert len(rows) == 3


class TestMarkdown:
    def test_structure(self):
        text = to_markdown(sample_table())
        assert text.startswith("### fig99: A sample")
        assert "| budget | tDP (s) |" in text
        assert "| 100 | 700.5 |" in text
        assert "*hello*" in text

    def test_report_concatenates(self):
        report = to_report([sample_table(), sample_table()], title="Rep")
        assert report.startswith("# Rep")
        assert report.count("### fig99") == 2
