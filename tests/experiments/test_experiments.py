"""Shape and property tests for every Section 6 experiment at small scale.

These tests assert the *shapes* the paper reports — who wins, monotonicity,
termination behaviour — not absolute numbers.
"""

import pytest

from repro.experiments import (
    fig11a,
    fig11b,
    fig12,
    fig13,
    fig14,
    fig15,
    findings68,
)
from repro.experiments.config import SMALL, ExperimentScale
from repro.experiments.runner import available_experiments, run_experiment
from repro.errors import ExperimentError

TINY = ExperimentScale(name="small", n_runs=5, n_elements=40, budget=300)


class TestFig11a:
    def test_fit_is_valid_latency_model(self):
        estimate = fig11a.estimate_latency(SMALL)
        assert estimate.fitted.delta > 0
        assert estimate.fitted.alpha >= 0

    def test_large_batches_take_longer_than_small(self):
        estimate = fig11a.estimate_latency(
            SMALL, batch_sizes=(10, 2000), repeats=5
        )
        measured = estimate.table.column("measured mean (s)")
        assert measured[-1] > measured[0]

    def test_table_shape(self):
        tables = fig11a.run(SMALL)
        assert len(tables) == 1
        assert tables[0].name == "fig11a"
        assert len(tables[0].rows) == len(fig11a.SMALL_BATCH_SIZES)


class TestFig11b:
    def test_all_allocators_reported(self):
        (table,) = fig11b.run(TINY)
        assert table.column("allocator") == ["tDP", "HE", "HF", "uHE", "uHF"]
        assert all(t > 0 for t in table.column("real time (s)"))
        assert all(t > 0 for t in table.column("estimated time (s)"))


class TestFig12:
    def test_tournament_always_singleton_terminates(self):
        latency_table, singleton_table = fig12.run(TINY, budgets=(60, 120))
        assert singleton_table.column("tDP + Tournament (%)") == [100.0, 100.0]
        assert singleton_table.column("HF + Tournament (%)") == [100.0, 100.0]

    def test_tdp_not_worse_than_hf(self):
        latency_table, _ = fig12.run(TINY, budgets=(60, 120))
        tdp = latency_table.column("tDP + Tournament (s)")
        hf = latency_table.column("HF + Tournament (s)")
        assert all(t <= h + 1e-9 for t, h in zip(tdp, hf))


class TestFig13:
    """Shape assertions at a mid-size workload (c0 = 150).

    At very small collections the CT25 baselines can beat tDP on *average*
    latency through early-termination luck (tDP optimizes the worst case);
    the paper's 'tDP always lowest' claim holds at its workload ratios, so
    the tests use a proportionally similar configuration.  A 2% tolerance
    absorbs the paper's own observation that uniform allocators sometimes
    land essentially on tDP's allocation.
    """

    MID = ExperimentScale(name="small", n_runs=10, n_elements=150, budget=1200)

    def test_tdp_wins_collection_sweep(self):
        table = fig13.run_collection_sweep(self.MID, collection_sizes=(100, 150))
        for row in table.rows:
            tdp_latency = row[1]
            assert tdp_latency <= 1.02 * min(row[1:])

    def test_tdp_wins_budget_sweep(self):
        table = fig13.run_budget_sweep(self.MID, budgets=(1200, 2400, 9600))
        for row in table.rows:
            assert row[1] <= 1.02 * min(row[1:])

    def test_tdp_latency_flat_once_budget_is_ample(self):
        """The Figure 13(b) plateau: tDP stops improving once extra budget
        stops helping, while the heuristics drift back up."""
        table = fig13.run_budget_sweep(self.MID, budgets=(1200, 9600))
        tdp_values = [row[1] for row in table.rows]
        assert tdp_values[0] == pytest.approx(tdp_values[1])
        # The heuristics (columns 2..5) are clearly slower than tDP at the
        # largest budget: they spend everything they are given.
        final_row = table.rows[-1]
        assert min(final_row[2:]) > 1.2 * final_row[1]


class TestFig14:
    def test_gap_explodes_with_exponent(self):
        table = fig14.run_exponent_sweep(TINY, exponents=(1.0, 2.0))
        first, last = table.rows[0], table.rows[-1]

        def gap(row):
            tdp = row[1]
            second_best = min(row[2:])
            return second_best / tdp

        assert gap(last) > gap(first)

    def test_tdp_always_best_at_high_exponent(self):
        table = fig14.run_exponent_sweep(TINY, exponents=(2.0,))
        row = table.rows[0]
        assert row[1] == min(row[1:])

    def test_budget_usage_caps(self):
        table = fig14.run_budget_usage(TINY, budgets=(100, 400, 780))
        # Column 1 = p=1.0, column 3 = p=1.8, column 4 = others.
        for row in table.rows:
            budget, *used, others = row
            assert others == min(budget, 40 * 39 // 2)
            assert all(u <= budget for u in used)
        # Stronger convexity caps usage at or below the linear case at the
        # largest budget.
        final = table.rows[-1]
        assert final[3] <= final[1]

    def test_usage_monotone_in_budget_for_linear(self):
        table = fig14.run_budget_usage(TINY, budgets=(100, 400, 780))
        linear_usage = [row[1] for row in table.rows]
        assert all(b >= a for a, b in zip(linear_usage, linear_usage[1:]))


class TestFig15:
    def test_timings_positive_and_complete(self):
        (table,) = fig15.run(SMALL)
        assert len(table.rows) == len(fig15.SMALL_COLLECTION_SIZES) * len(
            fig15.BUDGET_MULTIPLES
        )
        assert all(row[3] > 0 for row in table.rows)

    def test_memo_states_grow_slowly_in_budget(self):
        (table,) = fig15.run(SMALL)
        by_size = {}
        for row in table.rows:
            by_size.setdefault(row[0], []).append(row[5])
        for states in by_size.values():
            assert states[-1] < 8 * states[0]


class TestFindings68:
    def test_grid_shape_and_verdicts(self):
        grid, verdicts = findings68.run(TINY)
        # 4 heuristic allocators x 3 selectors.
        assert len(grid.rows) == 12
        assert len(verdicts.rows) == 3
        assert all(isinstance(row[2], bool) for row in verdicts.rows)

    def test_tournament_always_singleton(self):
        grid, _ = findings68.run(TINY)
        for allocator, selector, _, singleton in grid.rows:
            if selector == "Tournament":
                assert singleton == 100.0


class TestRunner:
    def test_all_experiments_registered(self):
        assert available_experiments() == [
            "fig11a",
            "fig11b",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "findings68",
        ]

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig99", SMALL)

    def test_run_experiment_returns_tables(self):
        tables = run_experiment("fig15", SMALL)
        assert all(hasattr(t, "to_text") for t in tables)
