"""Tests for the ASCII chart rendering."""

import pytest

from repro.errors import ExperimentError, InvalidParameterError
from repro.experiments.plotting import (
    SERIES_GLYPHS,
    ascii_bar_chart,
    ascii_line_chart,
    chart_for,
)
from repro.experiments.tables import ExperimentResult


def numeric_table():
    table = ExperimentResult(
        name="demo",
        title="Two series",
        columns=("budget", "tDP (s)", "HF (s)"),
    )
    table.add_row(100, 700.0, 900.0)
    table.add_row(200, 500.0, 800.0)
    table.add_row(400, 500.0, 950.0)
    return table


class TestLineChart:
    def test_contains_legend_and_axes(self):
        chart = ascii_line_chart(numeric_table())
        assert "*=tDP (s)" in chart
        assert "o=HF (s)" in chart
        assert "x: budget" in chart
        assert "100" in chart and "400" in chart

    def test_extremes_labelled(self):
        chart = ascii_line_chart(numeric_table())
        assert "950" in chart
        assert "500" in chart

    def test_glyphs_present(self):
        chart = ascii_line_chart(numeric_table())
        assert "*" in chart and "o" in chart

    def test_log_scale(self):
        chart = ascii_line_chart(numeric_table(), log_y=True)
        assert "[log y]" in chart

    def test_log_scale_rejects_non_positive(self):
        table = ExperimentResult("t", "t", ("x", "y"))
        table.add_row(1, 0.0)
        table.add_row(2, 5.0)
        with pytest.raises(InvalidParameterError):
            ascii_line_chart(table, log_y=True)

    def test_non_numeric_column_rejected(self):
        table = ExperimentResult("t", "t", ("x", "y"))
        table.add_row("a", 1.0)
        with pytest.raises(ExperimentError):
            ascii_line_chart(table)

    def test_empty_table_rejected(self):
        with pytest.raises(ExperimentError):
            ascii_line_chart(ExperimentResult("t", "t", ("x", "y")))

    def test_size_validation(self):
        with pytest.raises(InvalidParameterError):
            ascii_line_chart(numeric_table(), width=3)

    def test_too_many_series_rejected(self):
        columns = ("x",) + tuple(f"s{i}" for i in range(len(SERIES_GLYPHS) + 1))
        table = ExperimentResult("t", "t", columns)
        table.add_row(*range(len(columns)))
        table.add_row(*range(1, len(columns) + 1))
        with pytest.raises(InvalidParameterError):
            ascii_line_chart(table)

    def test_constant_series_renders(self):
        table = ExperimentResult("t", "t", ("x", "y"))
        table.add_row(1, 5.0)
        table.add_row(2, 5.0)
        chart = ascii_line_chart(table)
        assert "*" in chart


class TestBarChart:
    def test_bars_scale_with_values(self):
        table = ExperimentResult("t", "t", ("who", "value"))
        table.add_row("small", 10.0)
        table.add_row("big", 100.0)
        chart = ascii_bar_chart(table, width=50)
        lines = [line for line in chart.splitlines() if "|" in line]
        small_bar = lines[0].split("|")[1]
        big_bar = lines[1].split("|")[1]
        assert big_bar.count("#") == 50
        assert 3 <= small_bar.count("#") <= 7

    def test_zero_value_gets_empty_bar(self):
        table = ExperimentResult("t", "t", ("who", "value"))
        table.add_row("none", 0.0)
        table.add_row("some", 10.0)
        chart = ascii_bar_chart(table)
        lines = [line for line in chart.splitlines() if "|" in line]
        assert lines[0].split("|")[1].count("#") == 0

    def test_all_zero_rejected(self):
        table = ExperimentResult("t", "t", ("who", "value"))
        table.add_row("a", 0.0)
        with pytest.raises(InvalidParameterError):
            ascii_bar_chart(table)

    def test_non_numeric_columns_skipped_by_default(self):
        table = ExperimentResult("t", "t", ("who", "comment", "value"))
        table.add_row("a", "fast", 3.0)
        chart = ascii_bar_chart(table)
        assert "value" in chart
        assert "comment" not in chart


class TestChartForRealExperiments:
    def test_every_small_scale_table_is_plottable(self):
        """The CLI --plot path must work for every registered experiment."""
        from repro.experiments.config import ExperimentScale
        from repro.experiments.runner import available_experiments, run_experiment

        tiny = ExperimentScale(
            name="small", n_runs=3, n_elements=20, budget=100
        )
        for name in available_experiments():
            for table in run_experiment(name, tiny):
                chart = chart_for(table)
                assert table.name in chart


class TestChartFor:
    def test_fig11b_becomes_bars(self):
        table = ExperimentResult(
            name="fig11b",
            title="bars",
            columns=(
                "allocator",
                "real time (s)",
                "estimated time (s)",
                "rounds",
                "questions",
            ),
        )
        table.add_row("tDP", 700.0, 800.0, 2, 3000)
        table.add_row("HE", 1300.0, 1250.0, 4, 2400)
        chart = chart_for(table)
        assert "#" in chart
        assert "real time (s)" in chart

    def test_numeric_table_becomes_lines(self):
        chart = chart_for(numeric_table())
        assert "x: budget" in chart

    def test_fig14a_uses_log_axis(self):
        table = ExperimentResult(
            name="fig14a", title="explodes", columns=("p", "tDP (s)", "HF (s)")
        )
        table.add_row(1.0, 700.0, 1500.0)
        table.add_row(2.0, 4000.0, 900000.0)
        chart = chart_for(table)
        assert "[log y]" in chart

    def test_string_first_column_falls_back_to_bars(self):
        table = ExperimentResult("other", "t", ("who", "value"))
        table.add_row("a", 1.0)
        table.add_row("b", 2.0)
        chart = chart_for(table)
        assert "#" in chart
