"""Tests for the run/selector invariant checks."""

import numpy as np
import pytest

from repro.core.allocation import Allocation
from repro.core.latency import LinearLatency
from repro.crowd.ground_truth import GroundTruth
from repro.engine.max_engine import MaxEngine, OracleAnswerSource
from repro.engine.results import MaxRunResult, RoundRecord
from repro.engine.validation import (
    ContractViolation,
    validate_run,
    validate_selection,
)
from repro.graphs.answer_graph import AnswerGraph
from repro.selection.base import SelectionContext
from repro.selection.tournament import TournamentFormation

LATENCY = LinearLatency(100, 1)


def make_context(candidates, budget):
    return SelectionContext(
        budget=budget,
        candidates=tuple(candidates),
        evidence=AnswerGraph(candidates),
        round_index=0,
        total_rounds=1,
        rng=np.random.default_rng(0),
    )


class TestValidateSelection:
    def test_valid_selection_passes(self):
        ctx = make_context(range(10), 20)
        questions = TournamentFormation().select(ctx)
        validate_selection(ctx, questions)

    def test_over_budget(self):
        ctx = make_context(range(4), 1)
        with pytest.raises(ContractViolation):
            validate_selection(ctx, [(0, 1), (2, 3)])

    def test_non_canonical_pair(self):
        ctx = make_context(range(4), 5)
        with pytest.raises(ContractViolation):
            validate_selection(ctx, [(2, 1)])

    def test_non_candidate(self):
        ctx = make_context(range(4), 5)
        with pytest.raises(ContractViolation):
            validate_selection(ctx, [(0, 9)])

    def test_duplicate(self):
        ctx = make_context(range(4), 5)
        with pytest.raises(ContractViolation):
            validate_selection(ctx, [(0, 1), (0, 1)])

    def test_single_candidate_must_be_silent(self):
        ctx = make_context([7], 5)
        validate_selection(ctx, [])


class TestValidateRun:
    def run_real(self, n=16, budget=100, seed=0):
        rng = np.random.default_rng(seed)
        truth = GroundTruth.random(n, rng)
        allocation = Allocation.from_element_sequence((16, 4, 1))
        engine = MaxEngine(
            TournamentFormation(), OracleAnswerSource(truth, LATENCY), rng
        )
        return engine.run(truth, allocation)

    def test_real_runs_validate(self):
        for seed in range(5):
            result = self.run_real(seed=seed)
            validate_run(result, n_elements=16, budget=100)

    def make_result(self, records, singleton=True, total_questions=None):
        if total_questions is None:
            total_questions = sum(r.questions_posted for r in records)
        return MaxRunResult(
            winner=0,
            true_max=0,
            singleton_termination=singleton,
            total_latency=sum(r.latency for r in records),
            total_questions=total_questions,
            records=tuple(records),
        )

    def test_broken_chain_detected(self):
        records = [
            RoundRecord(0, 10, 8, 10, 50.0, 4),
            RoundRecord(1, 10, 5, 6, 50.0, 1),  # 5 != 4
        ]
        with pytest.raises(ContractViolation):
            validate_run(self.make_result(records), 8, 100)

    def test_candidate_increase_detected(self):
        records = [RoundRecord(0, 10, 8, 10, 50.0, 9)]
        with pytest.raises(ContractViolation):
            validate_run(self.make_result(records, singleton=False), 8, 100)

    def test_budget_overrun_per_round_detected(self):
        records = [RoundRecord(0, 5, 8, 6, 50.0, 1)]
        with pytest.raises(ContractViolation):
            validate_run(self.make_result(records), 8, 100)

    def test_total_budget_overrun_detected(self):
        records = [RoundRecord(0, 50, 8, 28, 50.0, 1)]
        with pytest.raises(ContractViolation):
            validate_run(self.make_result(records), 8, budget=20)

    def test_total_mismatch_detected(self):
        records = [RoundRecord(0, 10, 8, 7, 50.0, 1)]
        with pytest.raises(ContractViolation):
            validate_run(
                self.make_result(records, total_questions=99), 8, 100
            )

    def test_singleton_flag_consistency(self):
        records = [RoundRecord(0, 10, 8, 7, 50.0, 3)]
        with pytest.raises(ContractViolation):
            validate_run(self.make_result(records, singleton=True), 8, 100)
        records = [RoundRecord(0, 10, 8, 7, 50.0, 1)]
        with pytest.raises(ContractViolation):
            validate_run(self.make_result(records, singleton=False), 8, 100)

    def test_negative_latency_detected(self):
        records = [RoundRecord(0, 10, 8, 7, -1.0, 1)]
        with pytest.raises(ContractViolation):
            validate_run(self.make_result(records), 8, 100)
