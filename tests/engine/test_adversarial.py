"""Tests for the adversarial (worst-case) execution engine."""

import numpy as np
import pytest

from repro.core.latency import LinearLatency
from repro.core.tdp import TDPAllocator, solve_min_latency
from repro.engine.adversarial import (
    AdversarialMaxEngine,
    greedy_independent_set,
)
from repro.errors import InvalidParameterError
from repro.selection.spread import Spread
from repro.selection.tournament import TournamentFormation

LATENCY = LinearLatency(100, 1.0)


class TestGreedyIndependentSet:
    def test_result_is_independent_and_maximal(self):
        nodes = list(range(6))
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]
        chosen = greedy_independent_set(nodes, edges)
        edge_set = set(edges)
        for a in chosen:
            for b in chosen:
                if a < b:
                    assert (a, b) not in edge_set
        # Maximality: every non-member has a neighbor inside.
        for v in set(nodes) - chosen:
            assert any(
                (min(v, u), max(v, u)) in edge_set for u in chosen
            )

    def test_empty_graph_keeps_everyone(self):
        assert greedy_independent_set(range(4), []) == set(range(4))

    def test_foreign_question_rejected(self):
        with pytest.raises(InvalidParameterError):
            greedy_independent_set([0, 1], [(0, 9)])


class TestAdversarialRuns:
    def test_tournament_worst_case_matches_plan(self):
        """Against tournament selection the adversary has no power: every
        clique yields exactly one winner, so the run follows the tDP plan
        and its latency equals the plan's optimum."""
        n, budget = 40, 200
        allocation = TDPAllocator().allocate(n, budget, LATENCY)
        engine = AdversarialMaxEngine(
            TournamentFormation(spend_leftover=False),
            LATENCY,
            np.random.default_rng(0),
            mode="exact",
        )
        result = engine.run(n, allocation)
        assert result.singleton_termination
        plan = solve_min_latency(n, budget, LATENCY)
        assert result.total_latency == pytest.approx(plan.total_latency)

    def test_spread_worse_than_tournament_in_the_worst_case(self):
        """Theorem 4 experimentally: under the same allocation, SPREAD's
        worst case leaves more candidates (or needs more time) than
        tournament formation's."""
        n, budget = 24, 120
        allocation = TDPAllocator().allocate(n, budget, LATENCY)

        def final_candidates(selector):
            engine = AdversarialMaxEngine(
                selector, LATENCY, np.random.default_rng(1), mode="exact"
            )
            result = engine.run(n, allocation)
            return result

        tournament = final_candidates(TournamentFormation(spend_leftover=False))
        spread = final_candidates(Spread())
        assert tournament.singleton_termination
        # SPREAD's random near-regular graphs admit larger independent
        # sets than cliques, so the adversary keeps it from terminating.
        assert not spread.singleton_termination or (
            spread.total_latency >= tournament.total_latency
        )

    def test_greedy_mode_is_a_legal_adversary(self):
        """Greedy-mode survivors are consistent: the run stays acyclic and
        candidate counts never increase."""
        n, budget = 30, 160
        allocation = TDPAllocator().allocate(n, budget, LATENCY)
        engine = AdversarialMaxEngine(
            Spread(), LATENCY, np.random.default_rng(2), mode="greedy"
        )
        result = engine.run(n, allocation)
        for record in result.records:
            assert record.candidates_after <= record.candidates_before

    def test_mode_validation(self):
        with pytest.raises(InvalidParameterError):
            AdversarialMaxEngine(
                Spread(), LATENCY, np.random.default_rng(0), mode="evil"
            )

    def test_invalid_elements(self):
        engine = AdversarialMaxEngine(
            Spread(), LATENCY, np.random.default_rng(0)
        )
        with pytest.raises(InvalidParameterError):
            engine.run(0, TDPAllocator().allocate(10, 50, LATENCY))
