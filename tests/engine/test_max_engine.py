"""Tests for the MAX-operator engine."""

import numpy as np
import pytest

from repro.core.allocation import Allocation
from repro.core.latency import LinearLatency
from repro.crowd.error_models import UniformError
from repro.crowd.ground_truth import GroundTruth
from repro.crowd.platform import SimulatedPlatform
from repro.crowd.rwl import ReliableWorkerLayer
from repro.engine.max_engine import (
    MaxEngine,
    OracleAnswerSource,
    PlatformAnswerSource,
)
from repro.selection.spread import Spread
from repro.selection.tournament import TournamentFormation

LATENCY = LinearLatency(100, 1)


def run_with_oracle(n, allocation, selector=None, seed=0):
    rng = np.random.default_rng(seed)
    truth = GroundTruth.random(n, rng)
    engine = MaxEngine(
        selector or TournamentFormation(),
        OracleAnswerSource(truth, LATENCY),
        rng,
    )
    return engine.run(truth, allocation), truth


class TestErrorFreeRuns:
    def test_finds_true_max_with_tournaments(self):
        allocation = Allocation.from_element_sequence((16, 4, 1))
        for seed in range(10):
            result, truth = run_with_oracle(16, allocation, seed=seed)
            assert result.singleton_termination
            assert result.winner == truth.max_element

    def test_latency_matches_model(self):
        allocation = Allocation.from_element_sequence((16, 4, 1))
        result, _ = run_with_oracle(16, allocation)
        # Q(16,4) = 24, Q(4,1) = 6 -> L(24) + L(6) = 124 + 106.
        assert result.total_latency == pytest.approx(230.0)
        assert result.total_questions == 30

    def test_round_records_chain(self):
        allocation = Allocation.from_element_sequence((16, 4, 1))
        result, _ = run_with_oracle(16, allocation)
        assert [r.candidates_before for r in result.records] == [16, 4]
        assert [r.candidates_after for r in result.records] == [4, 1]
        assert all(
            r.questions_posted <= r.budget for r in result.records
        )

    def test_early_stop_skips_remaining_rounds(self):
        """A lavish first round finds the MAX; later rounds never run."""
        allocation = Allocation(round_budgets=(200, 50, 50))
        result, truth = run_with_oracle(10, allocation)
        assert result.rounds_run == 1
        assert result.winner == truth.max_element
        assert result.total_latency == pytest.approx(LATENCY(45))

    def test_zero_budget_rounds_cost_nothing(self):
        allocation = Allocation(round_budgets=(0, 45))
        result, _ = run_with_oracle(10, allocation)
        assert result.rounds_run == 1  # the zero round posted nothing
        assert result.total_latency == pytest.approx(LATENCY(45))

    def test_non_singleton_termination_flagged(self):
        """An underpowered allocation leaves several candidates; the engine
        must say so and still pick a plausible winner."""
        allocation = Allocation(round_budgets=(4,))
        result, _ = run_with_oracle(10, allocation)
        assert not result.singleton_termination
        assert 0 <= result.winner < 10

    def test_winner_scoring_fallback_prefers_proven_elements(self):
        """With SPREAD and a tiny budget, the declared winner must be a
        remaining candidate."""
        allocation = Allocation(round_budgets=(5,))
        result, truth = run_with_oracle(10, allocation, selector=Spread())
        assert not result.singleton_termination
        # the winner never lost a comparison
        assert result.winner is not None


class TestPlatformRuns:
    def test_end_to_end_with_perfect_workers(self):
        rng = np.random.default_rng(1)
        truth = GroundTruth.random(12, rng)
        platform = SimulatedPlatform(truth, rng)
        engine = MaxEngine(
            TournamentFormation(),
            PlatformAnswerSource(ReliableWorkerLayer(platform, rng)),
            rng,
        )
        allocation = Allocation.from_element_sequence((12, 3, 1))
        result = engine.run(truth, allocation)
        assert result.singleton_termination
        assert result.winner == truth.max_element
        assert result.total_latency > 0

    def test_noisy_workers_with_repetition_usually_right(self):
        hits = 0
        for seed in range(10):
            rng = np.random.default_rng(seed)
            truth = GroundTruth.random(8, rng)
            platform = SimulatedPlatform(
                truth, rng, error_model=UniformError(0.15)
            )
            engine = MaxEngine(
                TournamentFormation(),
                PlatformAnswerSource(
                    ReliableWorkerLayer(platform, rng, repetition=7)
                ),
                rng,
            )
            allocation = Allocation.from_element_sequence((8, 2, 1))
            result = engine.run(truth, allocation)
            hits += result.winner == truth.max_element
        assert hits >= 7


class TestReproducibility:
    def test_same_seed_same_result(self):
        allocation = Allocation.from_element_sequence((20, 5, 1))
        first, _ = run_with_oracle(20, allocation, seed=9)
        second, _ = run_with_oracle(20, allocation, seed=9)
        assert first.winner == second.winner
        assert first.total_latency == second.total_latency
        assert first.records == second.records

    def test_summary_mentions_verdict(self):
        allocation = Allocation.from_element_sequence((10, 1))
        result, _ = run_with_oracle(10, allocation)
        assert "correct" in result.summary()
        assert "singleton" in result.summary()
