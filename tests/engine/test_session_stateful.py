"""Stateful (model-based) testing of the MaxSession state machine.

Hypothesis drives random but legal interaction sequences — asking for the
pending batch, answering it (always consistently with a hidden order),
occasionally re-reading the pending batch — and checks the session's
invariants after every step.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.latency import LinearLatency
from repro.core.tdp import TDPAllocator
from repro.crowd.ground_truth import GroundTruth
from repro.engine.session import MaxSession
from repro.selection.tournament import TournamentFormation

LATENCY = LinearLatency(100, 1.0)


class SessionMachine(RuleBasedStateMachine):
    @initialize(
        n_elements=st.integers(2, 25),
        budget_factor=st.floats(1.0, 5.0),
        seed=st.integers(0, 10_000),
    )
    def start(self, n_elements, budget_factor, seed):
        rng = np.random.default_rng(seed)
        self.truth = GroundTruth.random(n_elements, rng)
        self.n_elements = n_elements
        budget = max(n_elements - 1, int(budget_factor * n_elements))
        self.budget = budget
        allocation = TDPAllocator().allocate(n_elements, budget, LATENCY)
        self.session = MaxSession(
            allocation, TournamentFormation(), n_elements, rng
        )
        self.asked_total = 0

    @precondition(lambda self: not self.session.done)
    @rule()
    def read_pending(self):
        batch = self.session.pending_questions()
        assert batch, "a pending round must have questions"
        assert self.session.pending_questions() == batch  # stable

    @precondition(lambda self: not self.session.done)
    @rule()
    def answer_pending(self):
        batch = self.session.pending_questions()
        self.asked_total += len(batch)
        self.session.submit(self.truth.answer(a, b) for a, b in batch)

    @precondition(lambda self: self.session.done)
    @rule()
    def poke_finished_session(self):
        """A finished session keeps answering queries and rejects driving."""
        import pytest

        from repro.engine.session import SessionStateError

        assert 0 <= self.session.winner < self.n_elements
        with pytest.raises(SessionStateError):
            self.session.pending_questions()

    @invariant()
    def candidates_contain_the_true_max(self):
        if hasattr(self, "session"):
            assert self.truth.max_element in self.session.candidates

    @invariant()
    def budget_never_exceeded(self):
        if hasattr(self, "session"):
            assert self.session.questions_posted <= self.budget
            assert self.session.questions_posted == self.asked_total

    @invariant()
    def winner_is_correct_once_singleton(self):
        if hasattr(self, "session") and self.session.done:
            if self.session.singleton_termination:
                assert self.session.winner == self.truth.max_element


SessionMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
TestSessionStateMachine = SessionMachine.TestCase
