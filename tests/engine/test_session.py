"""Tests for the caller-driven MaxSession."""

import numpy as np
import pytest

from repro.core.allocation import Allocation
from repro.core.latency import LinearLatency
from repro.core.tdp import TDPAllocator
from repro.crowd.ground_truth import GroundTruth
from repro.engine.max_engine import MaxEngine, OracleAnswerSource
from repro.engine.session import MaxSession, SessionStateError
from repro.errors import InvalidParameterError
from repro.selection.tournament import TournamentFormation
from repro.types import Answer

LATENCY = LinearLatency(239, 0.06)


def drive_to_completion(session, truth):
    """Answer every pending batch from the ground truth."""
    while not session.done:
        batch = session.pending_questions()
        session.submit(truth.answer(a, b) for a, b in batch)
    return session


class TestHappyPath:
    def test_finds_the_max(self):
        rng = np.random.default_rng(0)
        truth = GroundTruth.random(40, rng)
        allocation = TDPAllocator().allocate(40, 200, LATENCY)
        session = MaxSession(allocation, TournamentFormation(), 40, rng)
        drive_to_completion(session, truth)
        assert session.singleton_termination
        assert session.winner == truth.max_element

    def test_matches_engine_run(self):
        """Driving a session yields the same winner and question count as
        the batch engine under the same seed."""
        allocation = TDPAllocator().allocate(30, 150, LATENCY)
        rng_engine = np.random.default_rng(3)
        truth_engine = GroundTruth.random(30, rng_engine)
        engine_result = MaxEngine(
            TournamentFormation(),
            OracleAnswerSource(truth_engine, LATENCY),
            rng_engine,
        ).run(truth_engine, allocation)

        rng_session = np.random.default_rng(3)
        truth_session = GroundTruth.random(30, rng_session)
        session = MaxSession(
            allocation, TournamentFormation(), 30, rng_session
        )
        drive_to_completion(session, truth_session)
        assert session.winner == engine_result.winner
        assert session.questions_posted == engine_result.total_questions
        assert session.rounds_executed == engine_result.rounds_run

    def test_pending_is_stable_until_submit(self):
        rng = np.random.default_rng(1)
        allocation = Allocation.from_element_sequence((10, 2, 1))
        session = MaxSession(allocation, TournamentFormation(), 10, rng)
        first = session.pending_questions()
        second = session.pending_questions()
        assert first == second

    def test_early_singleton_finishes_session(self):
        """A lavish first round resolves everything; the session must be
        done without touching round 2."""
        rng = np.random.default_rng(2)
        truth = GroundTruth.random(8, rng)
        allocation = Allocation(round_budgets=(28, 10))
        session = MaxSession(allocation, TournamentFormation(), 8, rng)
        batch = session.pending_questions()
        session.submit(truth.answer(a, b) for a, b in batch)
        assert session.done
        assert session.rounds_executed == 1
        assert session.winner == truth.max_element

    def test_zero_budget_rounds_skipped(self):
        rng = np.random.default_rng(4)
        truth = GroundTruth.random(6, rng)
        allocation = Allocation(round_budgets=(0, 0, 15))
        session = MaxSession(allocation, TournamentFormation(), 6, rng)
        assert session.round_index == 2
        drive_to_completion(session, truth)
        assert session.winner == truth.max_element


class TestMisuse:
    def make_session(self):
        rng = np.random.default_rng(5)
        allocation = Allocation.from_element_sequence((6, 2, 1))
        return MaxSession(allocation, TournamentFormation(), 6, rng)

    def test_submit_before_asking(self):
        session = self.make_session()
        with pytest.raises(SessionStateError):
            session.submit([])

    def test_partial_answers_rejected(self):
        session = self.make_session()
        truth = GroundTruth.identity(6)
        batch = session.pending_questions()
        with pytest.raises(SessionStateError):
            session.submit([truth.answer(*batch[0])])

    def test_foreign_answers_rejected(self):
        session = self.make_session()
        batch = session.pending_questions()
        wrong = [Answer(winner=a, loser=b) for a, b in batch]
        wrong[0] = Answer(winner=0, loser=1)
        if (0, 1) not in set(batch):
            with pytest.raises(SessionStateError):
                session.submit(wrong)

    def test_rejected_answers_leave_evidence_untouched(self):
        session = self.make_session()
        session.pending_questions()
        with pytest.raises(SessionStateError):
            session.submit([Answer(winner=0, loser=1), Answer(winner=2, loser=3)])
        assert session.evidence.n_answers == 0
        assert session.awaiting_answers

    def test_winner_before_done(self):
        session = self.make_session()
        session.pending_questions()
        with pytest.raises(SessionStateError):
            _ = session.winner

    def test_questions_after_done(self):
        rng = np.random.default_rng(6)
        truth = GroundTruth.random(6, rng)
        allocation = Allocation.from_element_sequence((6, 1))
        session = MaxSession(allocation, TournamentFormation(), 6, rng)
        drive_to_completion(session, truth)
        with pytest.raises(SessionStateError):
            session.pending_questions()


class TestNonSingletonFinish:
    def test_budget_too_small_declares_scored_winner(self):
        rng = np.random.default_rng(7)
        truth = GroundTruth.random(10, rng)
        allocation = Allocation(round_budgets=(3,))
        session = MaxSession(allocation, TournamentFormation(), 10, rng)
        drive_to_completion(session, truth)
        assert session.done
        assert not session.singleton_termination
        assert 0 <= session.winner < 10


class TestCheckpointing:
    def test_evidence_survives_a_round_trip(self):
        """Persist mid-session evidence and verify it reloads identically."""
        from repro.persistence import (
            answer_graph_from_dict,
            answer_graph_to_dict,
        )

        rng = np.random.default_rng(8)
        truth = GroundTruth.random(12, rng)
        allocation = Allocation.from_element_sequence((12, 3, 1))
        session = MaxSession(allocation, TournamentFormation(), 12, rng)
        batch = session.pending_questions()
        session.submit(truth.answer(a, b) for a, b in batch)
        restored = answer_graph_from_dict(
            answer_graph_to_dict(session.evidence)
        )
        assert (
            restored.remaining_candidates()
            == session.evidence.remaining_candidates()
        )

    def test_checkpoint_resume_matches_uninterrupted_run(self, tmp_path):
        """Checkpoint after round 1, persist to disk, resume, and finish
        with exactly the winner/counters of an uninterrupted run."""
        from repro.persistence import (
            load_json,
            save_json,
            session_from_dict,
            session_to_dict,
        )

        allocation = TDPAllocator().allocate(40, 200, LATENCY)

        rng_full = np.random.default_rng(9)
        truth_full = GroundTruth.random(40, rng_full)
        uninterrupted = MaxSession(
            allocation, TournamentFormation(), 40, rng_full
        )
        drive_to_completion(uninterrupted, truth_full)

        rng_part = np.random.default_rng(9)
        truth_part = GroundTruth.random(40, rng_part)
        session = MaxSession(allocation, TournamentFormation(), 40, rng_part)
        batch = session.pending_questions()
        session.submit(truth_part.answer(a, b) for a, b in batch)
        assert not session.done

        path = tmp_path / "session.json"
        save_json(session_to_dict(session), path)
        del session  # the original process is gone

        resumed = session_from_dict(load_json(path))
        assert not resumed.done
        assert resumed.rounds_executed == 1
        drive_to_completion(resumed, truth_part)

        assert resumed.winner == uninterrupted.winner
        assert resumed.singleton_termination == (
            uninterrupted.singleton_termination
        )
        assert resumed.questions_posted == uninterrupted.questions_posted
        assert resumed.rounds_executed == uninterrupted.rounds_executed

    def test_checkpoint_refused_while_awaiting_answers(self):
        from repro.persistence import session_to_dict

        rng = np.random.default_rng(10)
        allocation = Allocation.from_element_sequence((12, 3, 1))
        session = MaxSession(allocation, TournamentFormation(), 12, rng)
        session.pending_questions()
        with pytest.raises(InvalidParameterError):
            session_to_dict(session)

    def test_finished_session_round_trips(self):
        from repro.persistence import session_from_dict, session_to_dict

        rng = np.random.default_rng(11)
        truth = GroundTruth.random(10, rng)
        allocation = Allocation.from_element_sequence((10, 2, 1))
        session = MaxSession(allocation, TournamentFormation(), 10, rng)
        drive_to_completion(session, truth)
        resumed = session_from_dict(session_to_dict(session))
        assert resumed.done
        assert resumed.winner == session.winner

    def test_restore_rejects_inconsistent_state(self):
        from repro.graphs.answer_graph import AnswerGraph

        rng = np.random.default_rng(12)
        allocation = Allocation.from_element_sequence((8, 2, 1))
        with pytest.raises(InvalidParameterError):
            MaxSession.restore(
                allocation,
                TournamentFormation(),
                8,
                rng,
                evidence=AnswerGraph(range(5)),  # wrong element count
                round_index=0,
                questions_posted=0,
                rounds_executed=0,
            )
        with pytest.raises(InvalidParameterError):
            MaxSession.restore(
                allocation,
                TournamentFormation(),
                8,
                rng,
                evidence=AnswerGraph(range(8)),
                round_index=99,
                questions_posted=0,
                rounds_executed=0,
            )
