"""Tests for the top-k extension."""

import numpy as np
import pytest

from repro.core.latency import LinearLatency
from repro.crowd.ground_truth import GroundTruth
from repro.engine.max_engine import OracleAnswerSource
from repro.engine.topk import TopKEngine, minimum_topk_budget
from repro.errors import InvalidParameterError
from repro.selection.tournament import TournamentFormation

LATENCY = LinearLatency(239, 0.06)


def run_topk(n, k, budget, seed=0):
    rng = np.random.default_rng(seed)
    truth = GroundTruth.random(n, rng)
    engine = TopKEngine(
        TournamentFormation(spend_leftover=False),
        OracleAnswerSource(truth, LATENCY),
        LATENCY,
        rng,
    )
    return engine.run(truth, k, budget), truth


class TestCorrectness:
    def test_finds_true_topk_in_order(self):
        for seed in range(8):
            result, truth = run_topk(40, 3, 400, seed=seed)
            expected = tuple(sorted(range(40), key=truth.rank)[:3])
            assert result.ranking == expected
            assert result.correct

    def test_k_equals_one_is_plain_max(self):
        result, truth = run_topk(30, 1, 150)
        assert result.ranking == (truth.max_element,)

    def test_k_equals_n_gives_total_order(self):
        result, truth = run_topk(8, 8, 200)
        assert result.ranking == tuple(sorted(range(8), key=truth.rank))

    def test_budget_respected(self):
        result, _ = run_topk(40, 5, 300)
        assert result.total_questions <= 300


class TestEvidenceReuse:
    def test_later_phases_much_cheaper(self):
        """Phase 2 starts from the runner-up pool, not from scratch: its
        question count must be a small fraction of phase 1's."""
        result, _ = run_topk(100, 2, 800)
        phase1 = sum(r.questions_posted for r in result.phase_records[0])
        phase2 = sum(r.questions_posted for r in result.phase_records[1])
        assert phase2 < phase1 / 3

    def test_cheaper_than_independent_runs(self):
        """Total cost for top-3 is far below 3x the cost of one MAX."""
        result, _ = run_topk(60, 3, 600)
        single, _ = run_topk(60, 1, 600)
        assert result.total_questions < 2 * single.total_questions

    def test_total_question_bookkeeping(self):
        result, _ = run_topk(50, 4, 500)
        per_phase = sum(
            record.questions_posted
            for phase in result.phase_records
            for record in phase
        )
        assert per_phase == result.total_questions


class TestBudgetExhaustion:
    def test_partial_ranking_when_budget_runs_out(self):
        """With the bare minimum budget the engine returns what it could
        certify instead of guessing."""
        result, truth = run_topk(20, 5, minimum_topk_budget(20, 5), seed=3)
        assert 1 <= len(result.ranking) <= 5
        expected_prefix = tuple(
            sorted(range(20), key=truth.rank)[: len(result.ranking)]
        )
        assert result.ranking == expected_prefix

    def test_infeasible_budget_rejected(self):
        with pytest.raises(InvalidParameterError):
            run_topk(20, 5, 10)


class TestMinimumBudget:
    def test_values(self):
        assert minimum_topk_budget(10, 1) == 9
        assert minimum_topk_budget(10, 3) == 11

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            minimum_topk_budget(5, 6)
        with pytest.raises(InvalidParameterError):
            minimum_topk_budget(0, 1)
        with pytest.raises(InvalidParameterError):
            minimum_topk_budget(5, 0)
