"""Graceful-degradation tests for the MAX engines under platform faults.

Acceptance criterion for the robustness layer: with perfect workers a
seeded, nonzero fault profile must demonstrably *increase* the measured
round latency while the engines still return the true MAX.
"""

from typing import List, Sequence, Tuple

import numpy as np
import pytest

from repro import obs
from repro.core.latency import LinearLatency
from repro.core.tdp import TDPAllocator
from repro.crowd.faults import FaultProfile, RetryPolicy, fault_profile_by_name
from repro.crowd.ground_truth import GroundTruth
from repro.engine.max_engine import AnswerSource, MaxEngine, OracleAnswerSource
from repro.engine.simulation import run_once_on_platform
from repro.selection.tournament import TournamentFormation

Answer = Tuple[int, int]


class LossyOracleSource(AnswerSource):
    """Truthful answers, but silently loses some questions in round one."""

    def __init__(self, truth, latency, lose_first_n):
        self._inner = OracleAnswerSource(truth, latency)
        self.lose_first_n = lose_first_n
        self.rounds_seen = 0

    def resolve(
        self, questions: Sequence[Tuple[int, int]]
    ) -> Tuple[List[Answer], float]:
        answers, latency = self._inner.resolve(questions)
        self.rounds_seen += 1
        if self.rounds_seen == 1:
            answers = answers[self.lose_first_n:]
        return answers, latency


@pytest.fixture
def latency():
    return LinearLatency(delta=60.0, alpha=2.0)


class TestMaxEngineReplanning:
    def _run(self, latency, replan, seed=3, n_elements=32, budget=60):
        rng = np.random.default_rng(seed)
        truth = GroundTruth.random(n_elements, rng)
        allocation = TDPAllocator().allocate(n_elements, budget, latency)
        source = LossyOracleSource(truth, latency, lose_first_n=4)
        engine = MaxEngine(
            TournamentFormation(),
            source,
            rng,
            replan_latency=latency if replan else None,
        )
        return truth, engine.run(truth, allocation)

    def test_degraded_round_triggers_replan(self, latency):
        registry = obs.get_registry()
        registry.reset()
        truth, result = self._run(latency, replan=True)
        assert registry.counter("engine.degraded_rounds").value >= 1
        assert registry.counter("engine.replans").value >= 1
        assert result.winner == truth.max_element
        assert result.correct

    def test_degradation_counted_even_without_replan_latency(self, latency):
        registry = obs.get_registry()
        registry.reset()
        truth, result = self._run(latency, replan=False)
        assert registry.counter("engine.degraded_rounds").value >= 1
        assert registry.counter("engine.replans").value == 0
        # Truthful answers: the stale plan still finds the true MAX.
        assert result.winner == truth.max_element

    def test_clean_rounds_never_replan(self, latency):
        registry = obs.get_registry()
        registry.reset()
        rng = np.random.default_rng(5)
        truth = GroundTruth.random(32, rng)
        allocation = TDPAllocator().allocate(32, 60, latency)
        engine = MaxEngine(
            TournamentFormation(),
            OracleAnswerSource(truth, latency),
            rng,
            replan_latency=latency,
        )
        result = engine.run(truth, allocation)
        assert registry.counter("engine.degraded_rounds").value == 0
        assert registry.counter("engine.replans").value == 0
        assert result.correct


class TestPlatformDegradation:
    """End-to-end acceptance: faults cost latency, not correctness."""

    def _platform_run(self, latency, *, profile, adaptive=False, seed=11):
        return run_once_on_platform(
            24,
            50,
            TDPAllocator(),
            TournamentFormation(),
            latency,
            seed=seed,
            fault_profile=profile,
            retry_policy=RetryPolicy(max_attempts=8) if profile else None,
            adaptive=adaptive,
        )

    @pytest.mark.parametrize("adaptive", [False, True])
    def test_faults_increase_latency_but_not_errors(self, latency, adaptive):
        clean = self._platform_run(latency, profile=None, adaptive=adaptive)
        faulty = self._platform_run(
            latency,
            profile=fault_profile_by_name("severe"),
            adaptive=adaptive,
        )
        # Perfect workers (no error model): both runs find the true MAX.
        assert clean.correct
        assert faulty.correct
        # The seeded fault profile demonstrably costs simulated time.
        assert faulty.total_latency > clean.total_latency

    def test_zero_profile_matches_unwrapped_run(self, latency):
        unwrapped = self._platform_run(latency, profile=None)
        wrapped = self._platform_run(latency, profile=FaultProfile.none())
        assert wrapped.winner == unwrapped.winner
        assert wrapped.total_latency == unwrapped.total_latency
        assert wrapped.total_questions == unwrapped.total_questions
        assert wrapped.rounds_run == unwrapped.rounds_run

    def test_adaptive_engine_counts_degraded_rounds(self, latency):
        registry = obs.get_registry()
        registry.reset()
        # No retry policy: dropped answers hit the engine directly.
        result = run_once_on_platform(
            24,
            50,
            TDPAllocator(),
            TournamentFormation(),
            latency,
            seed=11,
            fault_profile=FaultProfile(drop_prob=0.4),
            adaptive=True,
        )
        assert result.correct
        assert registry.counter("engine.degraded_rounds").value >= 1

    def test_platform_runs_are_deterministic_in_seed(self, latency):
        profile = fault_profile_by_name("mild")
        a = self._platform_run(latency, profile=profile, seed=21)
        b = self._platform_run(latency, profile=profile, seed=21)
        assert a.winner == b.winner
        assert a.total_latency == b.total_latency
        assert a.total_questions == b.total_questions
