"""Tests for the adaptive re-planning engine."""

import numpy as np
import pytest

from repro.core.latency import LinearLatency
from repro.core.tdp import TDPAllocator, solve_min_latency
from repro.crowd.ground_truth import GroundTruth
from repro.engine.adaptive import AdaptiveMaxEngine
from repro.engine.max_engine import MaxEngine, OracleAnswerSource
from repro.errors import InvalidParameterError
from repro.selection.ct import ct25
from repro.selection.tournament import TournamentFormation

LATENCY = LinearLatency(239, 0.06)


def adaptive_run(n, budget, selector=None, seed=0):
    rng = np.random.default_rng(seed)
    truth = GroundTruth.random(n, rng)
    engine = AdaptiveMaxEngine(
        selector or TournamentFormation(spend_leftover=False),
        OracleAnswerSource(truth, LATENCY),
        LATENCY,
        rng,
    )
    return engine.run(truth, budget), truth


class TestPlanEquivalence:
    def test_matches_static_plan_under_pure_tournaments(self):
        """With exact tournament rounds the execution hits the planned
        states, so re-planning reproduces the static tDP trajectory and
        the same total latency (the Figure 5 optimal-substructure insight)."""
        n, budget = 64, 500
        result, _ = adaptive_run(n, budget)
        static_plan = solve_min_latency(n, budget, LATENCY)
        assert result.singleton_termination
        assert result.total_latency == pytest.approx(static_plan.total_latency)
        executed = [r.candidates_before for r in result.records] + [1]
        assert tuple(executed) == static_plan.sequence

    def test_always_finds_true_max(self):
        for seed in range(8):
            result, truth = adaptive_run(40, 200, seed=seed)
            assert result.singleton_termination
            assert result.winner == truth.max_element


class TestAdaptivity:
    def test_reinvests_leftover_eliminations(self):
        """With leftover spending on, rounds can eliminate more candidates
        than planned; the adaptive engine must still terminate correctly
        and never overspend."""
        rng = np.random.default_rng(1)
        truth = GroundTruth.random(50, rng)
        engine = AdaptiveMaxEngine(
            TournamentFormation(spend_leftover=True),
            OracleAnswerSource(truth, LATENCY),
            LATENCY,
            rng,
        )
        result = engine.run(truth, 333)
        assert result.singleton_termination
        assert result.winner == truth.max_element
        assert result.total_questions <= 333

    def test_adaptive_not_slower_with_exploiting_selector(self):
        """When CT25 over-eliminates, re-planning uses the windfall; over
        several seeds the adaptive engine is at least as fast on average
        as the static plan."""
        static_latencies = []
        adaptive_latencies = []
        for seed in range(6):
            rng = np.random.default_rng(seed)
            truth = GroundTruth.random(60, rng)
            allocation = TDPAllocator().allocate(60, 400, LATENCY)
            static_engine = MaxEngine(
                ct25(), OracleAnswerSource(truth, LATENCY), rng
            )
            static_latencies.append(
                static_engine.run(truth, allocation).total_latency
            )
            rng2 = np.random.default_rng(seed)
            truth2 = GroundTruth.random(60, rng2)
            adaptive_engine = AdaptiveMaxEngine(
                ct25(), OracleAnswerSource(truth2, LATENCY), LATENCY, rng2
            )
            adaptive_latencies.append(
                adaptive_engine.run(truth2, 400).total_latency
            )
        assert sum(adaptive_latencies) <= sum(static_latencies) * 1.05


class TestValidation:
    def test_infeasible_budget(self):
        rng = np.random.default_rng(0)
        truth = GroundTruth.random(10, rng)
        engine = AdaptiveMaxEngine(
            TournamentFormation(),
            OracleAnswerSource(truth, LATENCY),
            LATENCY,
            rng,
        )
        with pytest.raises(InvalidParameterError):
            engine.run(truth, 8)

    def test_max_rounds_validation(self):
        rng = np.random.default_rng(0)
        truth = GroundTruth.random(10, rng)
        with pytest.raises(InvalidParameterError):
            AdaptiveMaxEngine(
                TournamentFormation(),
                OracleAnswerSource(truth, LATENCY),
                LATENCY,
                rng,
                max_rounds=0,
            )

    def test_single_element_collection(self):
        rng = np.random.default_rng(0)
        truth = GroundTruth.identity(1)
        engine = AdaptiveMaxEngine(
            TournamentFormation(),
            OracleAnswerSource(truth, LATENCY),
            LATENCY,
            rng,
        )
        result = engine.run(truth, 0)
        assert result.singleton_termination
        assert result.winner == 0
        assert result.total_latency == 0
