"""Tests for the repeated-run simulation helpers."""

import pytest

from repro.core.latency import LinearLatency
from repro.core.tdp import TDPAllocator
from repro.engine.results import MaxRunResult
from repro.engine.simulation import AggregateStats, aggregate, run_many, run_once
from repro.errors import InvalidParameterError
from repro.selection.tournament import TournamentFormation

LATENCY = LinearLatency(239, 0.06)


class TestRunMany:
    def test_returns_requested_count(self):
        results = run_many(
            20, 60, TDPAllocator(), TournamentFormation(), LATENCY, 5, seed=1
        )
        assert len(results) == 5
        assert all(isinstance(r, MaxRunResult) for r in results)

    def test_deterministic_per_seed(self):
        args = (20, 60, TDPAllocator(), TournamentFormation(), LATENCY, 3)
        first = run_many(*args, seed=7)
        second = run_many(*args, seed=7)
        assert [r.total_latency for r in first] == [
            r.total_latency for r in second
        ]
        assert [r.winner for r in first] == [r.winner for r in second]

    def test_different_seeds_vary_ground_truth(self):
        first = run_many(
            20, 60, TDPAllocator(), TournamentFormation(), LATENCY, 4, seed=1
        )
        second = run_many(
            20, 60, TDPAllocator(), TournamentFormation(), LATENCY, 4, seed=2
        )
        assert [r.true_max for r in first] != [r.true_max for r in second]

    def test_invalid_run_count(self):
        with pytest.raises(InvalidParameterError):
            run_many(
                20, 60, TDPAllocator(), TournamentFormation(), LATENCY, 0, seed=1
            )


class TestAggregateStats:
    def test_perfect_runs_aggregate_cleanly(self):
        stats = aggregate(
            30, 100, TDPAllocator(), TournamentFormation(), LATENCY, 6, seed=3
        )
        assert stats.n_runs == 6
        assert stats.singleton_rate == 1.0
        assert stats.accuracy == 1.0
        assert stats.mean_latency > 0
        assert stats.mean_questions <= 100

    def test_std_zero_for_identical_runs(self):
        """Tournament selection under a fixed allocation posts the same
        question counts in every run, so the latency variance is zero."""
        stats = aggregate(
            30, 100, TDPAllocator(), TournamentFormation(), LATENCY, 5, seed=3
        )
        assert stats.std_latency == pytest.approx(0.0)

    def test_from_results_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            AggregateStats.from_results([])

    def test_confidence_interval_brackets_the_mean(self):
        stats = aggregate(
            30, 100, TDPAllocator(), TournamentFormation(), LATENCY, 6, seed=3
        )
        low, high = stats.latency_confidence_interval()
        assert low <= stats.mean_latency <= high

    def test_confidence_interval_shrinks_with_more_runs(self):
        from repro.selection.ct import ct25
        from repro.core.heuristics import HeavyFront

        few = aggregate(
            40, 200, HeavyFront(), ct25(), LATENCY, 5, seed=1
        )
        many = aggregate(
            40, 200, HeavyFront(), ct25(), LATENCY, 40, seed=1
        )
        few_width = few.latency_confidence_interval()[1] - (
            few.latency_confidence_interval()[0]
        )
        many_width = many.latency_confidence_interval()[1] - (
            many.latency_confidence_interval()[0]
        )
        assert many_width < few_width or few_width == 0.0

    def test_confidence_interval_validation(self):
        stats = aggregate(
            10, 45, TDPAllocator(), TournamentFormation(), LATENCY, 2, seed=0
        )
        with pytest.raises(InvalidParameterError):
            stats.latency_confidence_interval(z=-1)

    def test_single_run_has_zero_std(self):
        result = run_once(
            10,
            30,
            TDPAllocator(),
            TournamentFormation(),
            LATENCY,
            rng=__import__("numpy").random.default_rng(0),
        )
        stats = AggregateStats.from_results([result])
        assert stats.n_runs == 1
        assert stats.std_latency == 0.0

    def test_single_run_confidence_interval_is_a_point(self):
        """One run gives no spread estimate: the CI must collapse to the
        mean, not divide by zero or propagate a NaN std."""
        import math

        result = run_once(
            10,
            30,
            TDPAllocator(),
            TournamentFormation(),
            LATENCY,
            rng=__import__("numpy").random.default_rng(1),
        )
        stats = AggregateStats.from_results([result])
        assert stats.latency_confidence_interval() == (
            stats.mean_latency,
            stats.mean_latency,
        )
        # Directly constructed single-run stats may carry a NaN std
        # (0/0 sample variance); the interval must still be the point.
        nan_stats = AggregateStats(
            n_runs=1,
            mean_latency=stats.mean_latency,
            std_latency=float("nan"),
            singleton_rate=1.0,
            accuracy=1.0,
            mean_questions=stats.mean_questions,
            mean_rounds=stats.mean_rounds,
        )
        low, high = nan_stats.latency_confidence_interval()
        assert low == high == stats.mean_latency
        assert not math.isnan(low)
