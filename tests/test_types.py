"""Tests for the shared value types."""

import pytest

from repro.types import Answer, normalize_question


class TestNormalizeQuestion:
    def test_orders_endpoints(self):
        assert normalize_question(5, 2) == (2, 5)
        assert normalize_question(2, 5) == (2, 5)

    def test_rejects_self_comparison(self):
        with pytest.raises(ValueError):
            normalize_question(3, 3)


class TestAnswer:
    def test_question_is_canonical(self):
        assert Answer(winner=7, loser=3).question == (3, 7)
        assert Answer(winner=3, loser=7).question == (3, 7)

    def test_rejects_self_answer(self):
        with pytest.raises(ValueError):
            Answer(winner=1, loser=1)

    def test_answers_are_hashable_values(self):
        assert Answer(1, 2) == Answer(1, 2)
        assert len({Answer(1, 2), Answer(1, 2), Answer(2, 1)}) == 2
