"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.latency import LinearLatency, PowerLawLatency


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic randomness source; fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def mturk_latency() -> LinearLatency:
    """The paper's fitted MTurk latency function."""
    return LinearLatency(delta=239.0, alpha=0.06)


@pytest.fixture
def fig4_latency() -> LinearLatency:
    """The latency function of the paper's Figure 4 worked example."""
    return LinearLatency(delta=100.0, alpha=1.0)


@pytest.fixture
def quadratic_latency() -> PowerLawLatency:
    """A convex latency function (Section 6.6, p = 2)."""
    return PowerLawLatency(delta=239.0, alpha=0.06, p=2.0)
