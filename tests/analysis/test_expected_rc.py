"""Tests for the Appendix A expected-RC analysis (Lemmas 4-5, Theorem 5)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.expected_rc import (
    enumerate_rc_distribution,
    exact_expected_rc,
    lemma4_expected_rc,
    minimal_expected_rc,
    monte_carlo_expected_rc,
    regular_degree_bounds,
    survivors_under_permutation,
    tournament_degrees,
)
from repro.core.questions import tournament_questions, tournament_sizes
from repro.errors import InvalidParameterError


class TestPaperExample:
    def test_fig16_distribution(self):
        """Figure 16: path a-b-c.  E[R] = 1/6*1 + 1/6*1 + 2/6*1 + 2/6*2."""
        counts = enumerate_rc_distribution([0, 1, 2], [(0, 1), (1, 2)])
        assert counts == {1: 4, 2: 2}

    def test_fig16_expectation(self):
        assert exact_expected_rc([0, 1, 2], [(0, 1), (1, 2)]) == pytest.approx(
            4 / 3
        )


class TestLemma4:
    @given(st.integers(1, 6), st.data())
    @settings(max_examples=40, deadline=None)
    def test_closed_form_matches_enumeration(self, n, data):
        edges = data.draw(
            st.sets(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                    lambda t: t[0] < t[1]
                ),
                max_size=n * (n - 1) // 2,
            )
        )
        nodes = list(range(n))
        assert lemma4_expected_rc(nodes, sorted(edges)) == pytest.approx(
            exact_expected_rc(nodes, sorted(edges))
        )

    def test_monte_carlo_agrees(self, rng):
        nodes = list(range(12))
        edges = [(i, (i + 1) % 12) for i in range(12)]  # a 12-cycle
        closed_form = lemma4_expected_rc(nodes, edges)
        estimate = monte_carlo_expected_rc(nodes, edges, 20_000, rng)
        assert estimate == pytest.approx(closed_form, rel=0.05)


class TestLemma5AndTheorem5:
    def test_minimal_expected_rc_is_near_regular(self):
        # 6 nodes, 7 edges: degrees (3, 3, 2, 2, 2, 2).
        assert minimal_expected_rc(6, 7) == pytest.approx(2 / 4 + 4 / 3)

    def test_tournament_graph_achieves_the_minimum(self):
        """Theorem 5: for the edge budget of a tournament graph, no graph
        has lower E[R] than the tournament graph itself."""
        for c_prev, c_next in [(6, 2), (9, 3), (10, 4), (7, 3)]:
            degrees = tournament_degrees(tournament_sizes(c_prev, c_next))
            tournament_value = sum(1 / (d + 1) for d in degrees)
            n_edges = tournament_questions(c_prev, c_next)
            assert tournament_value == pytest.approx(
                minimal_expected_rc(c_prev, n_edges)
            )

    def test_exhaustive_check_small_graphs(self):
        """Enumerate all 5-node graphs with the edge count of G_T(5, 2) and
        confirm none beats the tournament's E[R]."""
        c_prev, c_next = 5, 2
        n_edges = tournament_questions(c_prev, c_next)  # sizes 3+2 -> 4 edges
        nodes = list(range(c_prev))
        all_pairs = [(a, b) for a in nodes for b in nodes if a < b]
        tournament_value = sum(
            1 / (d + 1)
            for d in tournament_degrees(tournament_sizes(c_prev, c_next))
        )
        best = min(
            lemma4_expected_rc(nodes, edge_subset)
            for edge_subset in itertools.combinations(all_pairs, n_edges)
        )
        assert tournament_value == pytest.approx(best)

    def test_regular_degree_bounds(self):
        assert regular_degree_bounds(6, 7) == (2, 3)
        assert regular_degree_bounds(4, 6) == (3, 3)


class TestHelpers:
    def test_survivors_under_permutation(self):
        rank = {0: 2, 1: 0, 2: 1}  # order: 1 > 2 > 0
        survivors = survivors_under_permutation(
            [0, 1, 2], [(0, 1), (1, 2)], rank
        )
        assert survivors == (1,)

    def test_enumeration_size_limit(self):
        with pytest.raises(InvalidParameterError):
            enumerate_rc_distribution(list(range(12)), [])

    def test_tournament_degrees_validation(self):
        with pytest.raises(InvalidParameterError):
            tournament_degrees([3, 0])

    def test_monte_carlo_validation(self, rng):
        with pytest.raises(InvalidParameterError):
            monte_carlo_expected_rc([0, 1], [(0, 1)], 0, rng)
