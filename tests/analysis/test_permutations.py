"""Tests for linear-extension counting and exact P-Max (Appendix B.1)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.permutations import count_linear_extensions, p_max
from repro.errors import InvalidParameterError
from repro.graphs.answer_graph import AnswerGraph
from repro.types import Answer


def chain_graph(n):
    """A total order: i beats i+1 for all i."""
    graph = AnswerGraph(range(n))
    for i in range(n - 1):
        graph.record(Answer(winner=i, loser=i + 1))
    return graph


class TestLinearExtensionCounting:
    def test_empty_graph_counts_all_permutations(self):
        for n in range(1, 7):
            assert count_linear_extensions(AnswerGraph(range(n))) == math.factorial(n)

    def test_total_order_has_one_extension(self):
        for n in range(2, 8):
            assert count_linear_extensions(chain_graph(n)) == 1

    def test_single_answer_halves_the_count(self):
        graph = AnswerGraph(range(4))
        graph.record(Answer(winner=0, loser=1))
        assert count_linear_extensions(graph) == math.factorial(4) // 2

    def test_two_independent_chains(self):
        """Two disjoint 2-chains over 4 elements: 4!/(2*2) = 6 extensions."""
        graph = AnswerGraph(range(4))
        graph.record(Answer(winner=0, loser=1))
        graph.record(Answer(winner=2, loser=3))
        assert count_linear_extensions(graph) == 6

    def test_size_limit(self):
        with pytest.raises(InvalidParameterError):
            count_linear_extensions(AnswerGraph(range(25)))


class TestPMax:
    def test_uniform_without_evidence(self):
        probabilities = p_max(AnswerGraph(range(5)))
        assert all(p == pytest.approx(1 / 5) for p in probabilities.values())

    def test_total_order_is_certain(self):
        probabilities = p_max(chain_graph(5))
        assert probabilities[0] == pytest.approx(1.0)
        assert all(probabilities[i] == 0.0 for i in range(1, 5))

    def test_losers_have_zero_probability(self):
        graph = AnswerGraph(range(4))
        graph.record(Answer(winner=0, loser=1))
        probabilities = p_max(graph)
        assert probabilities[1] == 0.0

    def test_known_three_element_case(self):
        """After the answer a > b: P(a is MAX) = 2/3, P(c is MAX) = 1/3 —
        the Appendix A uniform-history discussion."""
        graph = AnswerGraph(range(3))
        graph.record(Answer(winner=0, loser=1))
        probabilities = p_max(graph)
        assert probabilities[0] == pytest.approx(2 / 3)
        assert probabilities[2] == pytest.approx(1 / 3)

    @given(st.integers(1, 7), st.data())
    @settings(max_examples=25, deadline=None)
    def test_distribution_sums_to_one(self, n, data):
        order = data.draw(st.permutations(list(range(n))))
        rank = {e: i for i, e in enumerate(order)}
        pairs = data.draw(
            st.sets(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                    lambda t: t[0] < t[1]
                ),
                max_size=2 * n,
            )
        )
        graph = AnswerGraph(range(n))
        for a, b in pairs:
            winner = a if rank[a] < rank[b] else b
            loser = b if winner == a else a
            graph.record(Answer(winner=winner, loser=loser))
        probabilities = p_max(graph)
        assert sum(probabilities.values()) == pytest.approx(1.0)
        survivors = graph.remaining_candidates()
        assert {e for e, p in probabilities.items() if p > 0} == survivors
