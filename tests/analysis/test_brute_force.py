"""Tests for the brute-force MinLatency reference."""

import pytest

from repro.analysis.brute_force import brute_force_min_latency, iter_sequences
from repro.core.latency import LinearLatency
from repro.errors import InvalidParameterError


class TestSequenceEnumeration:
    def test_counts_are_powers_of_two(self):
        """There are 2^(n-2) strictly decreasing sequences from n to 1 (each
        intermediate count is either included or not)."""
        for n in range(2, 10):
            assert sum(1 for _ in iter_sequences(n)) == 2 ** (n - 2)

    def test_all_sequences_valid(self):
        for sequence in iter_sequences(6):
            assert sequence[0] == 6
            assert sequence[-1] == 1
            assert all(b < a for a, b in zip(sequence, sequence[1:]))

    def test_no_duplicates(self):
        sequences = list(iter_sequences(7))
        assert len(sequences) == len(set(sequences))


class TestBruteForce:
    def test_fig4_budget(self):
        solution = brute_force_min_latency(10, 45, LinearLatency(100, 1))
        # With C(10,2) = 45 available, the single round (10, 1) costs
        # L(45) = 145; any 2-round plan costs >= 200.  The optimum is 145.
        assert solution.sequence == (10, 1)
        assert solution.total_latency == 145

    def test_minimal_budget_forces_cheap_rounds(self):
        solution = brute_force_min_latency(8, 7, LinearLatency(10, 1))
        assert solution.questions_used == 7

    def test_tie_breaks_toward_fewer_questions(self):
        """With alpha = 0 every plan with the same round count costs the
        same; the reported optimum must use the cheapest questions."""
        solution = brute_force_min_latency(6, 15, LinearLatency(100, 0))
        assert solution.sequence == (6, 1)
        assert solution.questions_used == 15
        # Actually with alpha=0 a single round costs 100 regardless of
        # questions; (6,1) uses 15.  No cheaper single-round plan exists.

    def test_refuses_large_collections(self):
        with pytest.raises(InvalidParameterError):
            brute_force_min_latency(50, 100, LinearLatency(1, 1))

    def test_refuses_infeasible_budget(self):
        with pytest.raises(InvalidParameterError):
            brute_force_min_latency(8, 6, LinearLatency(1, 1))

    def test_single_element(self):
        solution = brute_force_min_latency(1, 0, LinearLatency(1, 1))
        assert solution.sequence == (1,)
        assert solution.total_latency == 0
