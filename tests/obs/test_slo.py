"""Tests for the SLO engine (``repro.obs.slo``).

Covers rule validation, the multi-window burn-rate alert lifecycle,
threshold hysteresis, health aggregation, snapshot round-trips and —
the load-bearing property — that the engine's incrementally-maintained
burn rate equals a brute-force recomputation from the raw event log.
"""

import dataclasses

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.obs.slo import (
    AlertTransition,
    BurnRateRule,
    HealthStatus,
    SLOConfig,
    SLOEngine,
    SLOTarget,
    ThresholdRule,
    default_slo_config,
    slo_config_from_dict,
)


@dataclasses.dataclass(frozen=True)
class FakeSample:
    """Just the cumulative counters the engine reads off a TickSample."""

    tick: int
    deadline_met: int = 0
    deadline_breached: int = 0
    completed: int = 0
    degraded: int = 0
    shed: int = 0


def engine_with(target=0.90, window=20, fast=3, slow=9, burn=1.0,
                thresholds=()):
    return SLOEngine(SLOConfig(
        targets=(SLOTarget(name="slo", objective="deadline",
                           target=target, window=window),),
        burn_rates=(BurnRateRule(name="burn", slo="slo", fast_window=fast,
                                 slow_window=slow, burn_threshold=burn),),
        thresholds=tuple(thresholds),
    ))


def feed(engine, tick, met=0, breached=0, signals=None):
    """Feed one tick of cumulative counters; returns the transitions."""
    sample = FakeSample(tick=tick, deadline_met=met,
                        deadline_breached=breached)
    return engine.observe(sample, signals or {})


class TestRuleValidation:
    def test_target_bounds(self):
        with pytest.raises(InvalidParameterError):
            SLOTarget(name="x", target=0.0)
        with pytest.raises(InvalidParameterError):
            SLOTarget(name="x", target=1.0)
        with pytest.raises(InvalidParameterError):
            SLOTarget(name="x", window=0)
        with pytest.raises(InvalidParameterError):
            SLOTarget(name="x", objective="latency")
        with pytest.raises(InvalidParameterError):
            SLOTarget(name="")

    def test_burn_rule_windows(self):
        with pytest.raises(InvalidParameterError):
            BurnRateRule(name="b", slo="s", fast_window=10, slow_window=10)
        with pytest.raises(InvalidParameterError):
            BurnRateRule(name="b", slo="s", burn_threshold=0.0)
        with pytest.raises(InvalidParameterError):
            BurnRateRule(name="b", slo="s", severity="page")

    def test_threshold_rule(self):
        with pytest.raises(InvalidParameterError):
            ThresholdRule(name="t", signal="x", threshold=0.0)
        with pytest.raises(InvalidParameterError):
            ThresholdRule(name="t", signal="", threshold=1.0)
        with pytest.raises(InvalidParameterError):
            ThresholdRule(name="t", signal="x", threshold=1.0,
                          clear_fraction=1.5)
        rule = ThresholdRule(name="t", signal="x", threshold=100.0,
                             clear_fraction=0.5)
        assert rule.clear_threshold == 50.0

    def test_config_cross_references(self):
        with pytest.raises(InvalidParameterError):
            SLOConfig(burn_rates=(BurnRateRule(name="b", slo="ghost"),))
        with pytest.raises(InvalidParameterError):
            SLOConfig(targets=(SLOTarget(name="a"), SLOTarget(name="a")))
        with pytest.raises(InvalidParameterError):
            SLOConfig(
                targets=(SLOTarget(name="a"),),
                burn_rates=(BurnRateRule(name="dup", slo="a"),),
                thresholds=(ThresholdRule(name="dup", signal="x",
                                          threshold=1.0),),
            )
        with pytest.raises(InvalidParameterError):
            SLOConfig(ring=0)

    def test_default_config_is_valid(self):
        config = default_slo_config(bundle_dir="/tmp/bundles")
        assert config.bundle_dir == "/tmp/bundles"
        assert config.targets and config.burn_rates and config.thresholds

    def test_config_round_trips_through_asdict(self):
        config = default_slo_config()
        rebuilt = slo_config_from_dict(dataclasses.asdict(config))
        assert rebuilt == config


class TestBurnRateAlert:
    def test_fires_only_when_both_windows_burn(self):
        engine = engine_with(target=0.90, fast=2, slow=4, burn=1.0)
        # Bad ticks fill the fast window immediately, but the alert must
        # wait for the slow window to confirm.
        met = breached = 0
        fired_at = None
        for tick in range(1, 10):
            breached += 5
            transitions = feed(engine, tick, met=met, breached=breached)
            if transitions:
                fired_at = tick
                assert transitions[0].action == "fired"
                break
        assert fired_at is not None
        # Fast window burned from tick 1; the slow window (seeded with
        # nothing before tick 1) also burns immediately here, so the
        # alert fires on the first evaluated tick.
        assert engine.active_alerts() == {
            "burn": {"severity": "critical", "since": fired_at}
        }

    def test_slow_window_suppresses_a_blip(self):
        engine = engine_with(target=0.90, fast=2, slow=8, burn=2.0)
        met = breached = 0
        # Six healthy ticks fill the slow window with good terminals.
        for tick in range(1, 7):
            met += 10
            assert feed(engine, tick, met=met, breached=breached) == []
        # A two-tick blip of failures saturates the fast window (burn
        # 10x) but over the slow window 10 bad of 70 is burn 1.43 < 2:
        # no alert.
        for tick in (7, 8):
            breached += 5
            assert feed(engine, tick, met=met, breached=breached) == []
        assert engine.active_alerts() == {}

    def test_resolves_when_fast_window_recovers(self):
        engine = engine_with(target=0.90, fast=2, slow=4, burn=1.0)
        met = breached = 0
        for tick in range(1, 5):
            breached += 5
            feed(engine, tick, met=met, breached=breached)
        assert "burn" in engine.active_alerts()
        resolved = []
        for tick in range(5, 12):
            met += 50
            resolved += feed(engine, tick, met=met, breached=breached)
            if resolved:
                break
        assert resolved and resolved[0].action == "resolved"
        assert engine.active_alerts() == {}
        assert engine.fired_total == 1
        assert engine.resolved_total == 1

    def test_burn_rate_of_unknown_target_raises(self):
        engine = engine_with()
        with pytest.raises(InvalidParameterError):
            engine.burn_rate("ghost")

    def test_empty_window_burns_zero(self):
        engine = engine_with()
        assert engine.burn_rate("slo") == 0.0
        feed(engine, 1)  # a tick with no terminals at all
        assert engine.burn_rate("slo") == 0.0


class TestThresholdAlert:
    def test_hysteresis_lifecycle(self):
        rule = ThresholdRule(name="qw", signal="queue_wait_p95",
                             threshold=100.0, clear_fraction=0.75)
        engine = SLOEngine(SLOConfig(thresholds=(rule,)))
        assert feed(engine, 1, signals={"queue_wait_p95": 50.0}) == []
        fired = feed(engine, 2, signals={"queue_wait_p95": 100.0})
        assert [t.action for t in fired] == ["fired"]
        assert fired[0].value == 100.0
        # Inside the hysteresis band [75, 100): holds.
        assert feed(engine, 3, signals={"queue_wait_p95": 80.0}) == []
        assert engine.active_alerts() == {
            "qw": {"severity": "warning", "since": 2}
        }
        resolved = feed(engine, 4, signals={"queue_wait_p95": 74.9})
        assert [t.action for t in resolved] == ["resolved"]
        assert engine.active_alerts() == {}

    def test_missing_signal_reads_zero(self):
        rule = ThresholdRule(name="b", signal="breaker_open", threshold=1.0)
        engine = SLOEngine(SLOConfig(thresholds=(rule,)))
        assert feed(engine, 1, signals={}) == []


class TestHealth:
    def test_ok_when_nothing_active(self):
        assert engine_with().health() == HealthStatus(state="ok")
        assert engine_with().health().describe() == "ok"

    def test_warning_alerts_degrade(self):
        rule = ThresholdRule(name="w", signal="x", threshold=1.0)
        engine = SLOEngine(SLOConfig(thresholds=(rule,)))
        feed(engine, 1, signals={"x": 5.0})
        health = engine.health()
        assert health.state == "degraded"
        assert health.reasons == ("w",)
        assert health.describe() == "degraded (w)"

    def test_any_critical_alert_is_critical(self):
        engine = engine_with(
            target=0.90, fast=2, slow=4, burn=1.0,
            thresholds=(ThresholdRule(name="w", signal="x", threshold=1.0),),
        )
        breached = 0
        for tick in range(1, 6):
            breached += 5
            feed(engine, tick, breached=breached, signals={"x": 5.0})
        health = engine.health()
        assert health.state == "critical"
        assert health.reasons == ("burn", "w")


class TestSnapshotRoundTrip:
    def test_mid_alert_state_replays_identically(self):
        def build():
            return engine_with(
                target=0.90, fast=2, slow=4, burn=1.0,
                thresholds=(
                    ThresholdRule(name="w", signal="x", threshold=10.0),
                ),
            )

        # Drive one engine halfway into an incident, snapshot, restore
        # into a fresh engine, then feed both the same tail: transitions
        # and burn rates must match exactly.
        script = (
            [(5, 0, 0.0)] * 3 + [(0, 5, 20.0)] * 4 + [(5, 0, 20.0)] * 3
            + [(9, 1, 5.0)] * 4
        )
        original = build()
        met = breached = 0
        history = []
        for tick, (good, bad, signal) in enumerate(script, start=1):
            met += good
            breached += bad
            history.append(
                original.observe(
                    FakeSample(tick=tick, deadline_met=met,
                               deadline_breached=breached),
                    {"x": signal},
                )
            )
            if tick == 7:
                clone = build()
                clone.load_state_dict(original.state_dict())
                clone_met, clone_breached = met, breached
        for tick in range(8, len(script) + 1):
            good, bad, signal = script[tick - 1]
            clone_met += good
            clone_breached += bad
            transitions = clone.observe(
                FakeSample(tick=tick, deadline_met=clone_met,
                           deadline_breached=clone_breached),
                {"x": signal},
            )
            assert transitions == history[tick - 1]
        assert clone.state_dict() == original.state_dict()
        assert clone.burn_rate("slo") == original.burn_rate("slo")
        assert clone.health() == original.health()


class TestBurnRateProperty:
    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)),
            min_size=1,
            max_size=80,
        ),
        st.integers(1, 30),
        st.floats(0.05, 0.95),
    )
    def test_burn_rate_matches_brute_force_over_event_log(
        self, deltas, window, target
    ):
        # The engine maintains its windows incrementally off cumulative
        # counters; the ground truth is a recomputation from the raw
        # per-tick event log.  They must agree exactly, every tick.
        engine = SLOEngine(SLOConfig(
            targets=(SLOTarget(name="slo", objective="deadline",
                               target=target, window=max(window, 31)),),
        ))
        met = breached = 0
        log = []
        for tick, (good, bad) in enumerate(deltas, start=1):
            met += good
            breached += bad
            log.append((good, bad))
            engine.observe(
                FakeSample(tick=tick, deadline_met=met,
                           deadline_breached=breached),
                {},
            )
            tail = log[-window:]
            total = sum(g + b for g, b in tail)
            brute = (
                0.0 if total == 0
                else (sum(b for _, b in tail) / total) / (1.0 - target)
            )
            assert engine.burn_rate("slo", window) == brute


class TestAlertTransition:
    def test_round_trips_through_asdict(self):
        transition = AlertTransition(rule="r", action="fired",
                                     severity="critical", value=2.5, tick=7)
        assert AlertTransition(
            **dataclasses.asdict(transition)
        ) == transition
