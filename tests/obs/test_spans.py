"""Tests for causal spans (``repro.obs.spans``)."""

import pytest

from repro.obs.events import SpanClosed, SpanOpened, event_from_dict
from repro.obs.spans import (
    assemble_spans,
    close_span,
    current_span,
    current_span_id,
    emit_span,
    open_span,
    render_span_tree,
    span_roots,
    span_scope,
    spans_for_query,
)
from repro.obs.tracer import RecordingTracer


class TestSpanScope:
    def test_no_ambient_scope_by_default(self):
        assert current_span() is None
        assert current_span_id() == ""

    def test_scope_is_ambient_inside_the_with_body(self):
        with span_scope("q1/r0", base_time=42.0) as context:
            assert current_span() is context
            assert current_span_id() == "q1/r0"
            assert current_span().base_time == 42.0
        assert current_span() is None

    def test_scopes_nest_and_restore(self):
        with span_scope("outer"):
            with span_scope("inner"):
                assert current_span_id() == "inner"
            assert current_span_id() == "outer"

    def test_scope_restored_on_exception(self):
        with pytest.raises(RuntimeError):
            with span_scope("doomed"):
                raise RuntimeError("boom")
        assert current_span() is None


class TestEmission:
    def test_open_and_close_are_stamped_at_their_sim_times(self):
        tracer = RecordingTracer()
        open_span(tracer, "q0", "query", start=5.0, query_id=0)
        close_span(tracer, "q0", end=17.0)
        records = tracer.records
        assert isinstance(records[0].event, SpanOpened)
        assert records[0].sim_time == 5.0
        assert isinstance(records[1].event, SpanClosed)
        assert records[1].sim_time == 17.0

    def test_emit_span_produces_a_matched_pair(self):
        tracer = RecordingTracer()
        emit_span(
            tracer, "q0/t3", "round_post", start=1.0, end=2.0,
            parent_id="q0", query_id=0, status="ok",
        )
        opened, closed = (r.event for r in tracer.records)
        assert opened.span_id == closed.span_id == "q0/t3"
        assert opened.parent_id == "q0"
        assert closed.end == 2.0

    def test_span_events_round_trip_through_dicts(self):
        event = SpanOpened(
            span_id="q1", parent_id=None, name="query", start=3.0,
            query_id=1, detail="c0=10 b=50",
        )
        assert event_from_dict(event.kind, event.to_dict()) == event
        closed = SpanClosed(span_id="q1", end=9.0, status="degraded")
        assert event_from_dict(closed.kind, closed.to_dict()) == closed


def _trace(*events):
    tracer = RecordingTracer()
    for event in events:
        tracer.emit(event)
    return tracer.records


class TestAssembly:
    def test_tree_structure_and_child_order(self):
        records = _trace(
            SpanOpened(span_id="q0", parent_id=None, name="query", start=0.0,
                       query_id=0),
            SpanOpened(span_id="q0/r1", parent_id="q0", name="round",
                       start=10.0, query_id=0),
            SpanOpened(span_id="q0/r0", parent_id="q0", name="round",
                       start=5.0, query_id=0),
            SpanClosed(span_id="q0/r0", end=10.0),
            SpanClosed(span_id="q0/r1", end=20.0),
            SpanClosed(span_id="q0", end=20.0),
        )
        spans = assemble_spans(records)
        root = spans["q0"]
        assert [child.span_id for child in root.children] == ["q0/r0", "q0/r1"]
        assert root.duration == 20.0
        assert spans["q0/r0"].duration == 5.0

    def test_unclosed_span_stays_open(self):
        records = _trace(
            SpanOpened(span_id="q0", parent_id=None, name="query", start=0.0),
        )
        span = assemble_spans(records)["q0"]
        assert span.end is None
        assert span.duration is None
        assert "(open)" in render_span_tree(span)[0]

    def test_unmatched_close_creates_a_stub(self):
        records = _trace(SpanClosed(span_id="ghost", end=7.0))
        span = assemble_spans(records)["ghost"]
        assert span.name == "?"
        assert span.start == 7.0
        assert span.end == 7.0

    def test_duplicate_open_keeps_first_duplicate_close_keeps_last(self):
        records = _trace(
            SpanOpened(span_id="q0", parent_id=None, name="query", start=1.0),
            SpanOpened(span_id="q0", parent_id=None, name="other", start=9.0),
            SpanClosed(span_id="q0", end=2.0),
            SpanClosed(span_id="q0", end=3.0, status="degraded"),
        )
        span = assemble_spans(records)["q0"]
        assert span.name == "query"
        assert span.start == 1.0
        assert span.end == 3.0
        assert span.status == "degraded"

    def test_roots_are_parentless_or_orphaned(self):
        records = _trace(
            SpanOpened(span_id="a", parent_id=None, name="x", start=0.0),
            SpanOpened(span_id="a/b", parent_id="a", name="y", start=1.0),
            SpanOpened(span_id="lost/c", parent_id="lost", name="z", start=2.0),
        )
        roots = span_roots(assemble_spans(records))
        assert [r.span_id for r in roots] == ["a", "lost/c"]

    def test_spans_for_query_filters_and_sorts(self):
        records = _trace(
            SpanOpened(span_id="q1", parent_id=None, name="query", start=5.0,
                       query_id=1),
            SpanOpened(span_id="q2", parent_id=None, name="query", start=0.0,
                       query_id=2),
            SpanOpened(span_id="q1/wait", parent_id="q1", name="queue_wait",
                       start=1.0, query_id=1),
        )
        owned = spans_for_query(assemble_spans(records), 1)
        assert [s.span_id for s in owned] == ["q1/wait", "q1"]


class TestRendering:
    def test_render_includes_status_and_detail(self):
        records = _trace(
            SpanOpened(span_id="q0", parent_id=None, name="query", start=0.0,
                       detail="c0=10 b=50"),
            SpanClosed(span_id="q0", end=5.0, status="degraded"),
        )
        (line,) = render_span_tree(assemble_spans(records)["q0"])
        assert "query <q0>" in line
        assert "[degraded]" in line
        assert "(c0=10 b=50)" in line

    def test_children_are_indented(self):
        records = _trace(
            SpanOpened(span_id="a", parent_id=None, name="run", start=0.0),
            SpanOpened(span_id="a/r0", parent_id="a", name="round", start=0.0),
        )
        lines = render_span_tree(span_roots(assemble_spans(records))[0])
        assert lines[1].startswith("  round")
