"""Tests for the incident flight recorder (``repro.obs.flight``)."""

import json

import pytest

from repro.errors import InvalidParameterError
from repro.obs.flight import (
    BUNDLE_MANIFEST,
    FlightRecorder,
    validate_bundle,
    write_bundle,
)
from repro.obs.metrics import MetricsRegistry


class TestRing:
    def test_rejects_zero_capacity(self):
        with pytest.raises(InvalidParameterError):
            FlightRecorder(0)

    def test_evicts_oldest_beyond_capacity(self):
        recorder = FlightRecorder(3)
        for tick in range(5):
            recorder.record("tick", tick=tick)
        assert len(recorder) == 3
        assert [e["tick"] for e in recorder.entries()] == [2, 3, 4]

    def test_state_dict_round_trip(self):
        recorder = FlightRecorder(4)
        recorder.record("tick", tick=1)
        recorder.record("alert", rule="burn", action="fired")
        clone = FlightRecorder(4)
        clone.load_state_dict(recorder.state_dict())
        assert clone.entries() == recorder.entries()

    def test_restored_ring_keeps_evicting(self):
        recorder = FlightRecorder(2)
        recorder.record("tick", tick=1)
        recorder.record("tick", tick=2)
        clone = FlightRecorder(2)
        clone.load_state_dict(recorder.state_dict())
        clone.record("tick", tick=3)
        assert [e["tick"] for e in clone.entries()] == [2, 3]


class TestBundle:
    def _recorder(self):
        recorder = FlightRecorder(8)
        recorder.record("tick", tick=1, health="ok")
        recorder.record("alert", rule="burn", action="fired", tick=2)
        return recorder

    def test_writes_ring_state_metrics_and_manifest(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("alerts.fired").inc(2)
        bundle = write_bundle(
            tmp_path / "incident",
            self._recorder(),
            state={"tick": 2, "health": "critical"},
            metrics_snapshot=registry.snapshot(),
            spans="q1 span tree",
            reason="alert:burn",
        )
        manifest = validate_bundle(bundle)
        assert manifest["reason"] == "alert:burn"
        assert manifest["ring_entries"] == 2
        assert sorted(manifest["files"]) == [
            "metrics.prom", "ring.jsonl", "spans.txt", "state.json",
        ]
        lines = (bundle / "ring.jsonl").read_text().splitlines()
        assert [json.loads(l)["kind"] for l in lines] == ["tick", "alert"]
        assert json.loads((bundle / "state.json").read_text()) == {
            "tick": 2, "health": "critical",
        }
        # OpenMetrics names swap dots for underscores.
        assert "alerts_fired_total 2" in (bundle / "metrics.prom").read_text()

    def test_rewrite_is_idempotent(self, tmp_path):
        recorder = self._recorder()
        bundle = tmp_path / "incident"
        write_bundle(bundle, recorder, state={"tick": 2})
        first = {
            name: (bundle / name).read_bytes()
            for name in ("ring.jsonl", "state.json", BUNDLE_MANIFEST)
        }
        write_bundle(bundle, recorder, state={"tick": 2})
        for name, payload in first.items():
            assert (bundle / name).read_bytes() == payload

    def test_missing_manifest_fails_validation(self, tmp_path):
        bundle = write_bundle(tmp_path / "incident", self._recorder())
        (bundle / BUNDLE_MANIFEST).unlink()
        with pytest.raises(InvalidParameterError):
            validate_bundle(bundle)

    def test_missing_listed_file_fails_validation(self, tmp_path):
        bundle = write_bundle(tmp_path / "incident", self._recorder())
        (bundle / "ring.jsonl").unlink()
        with pytest.raises(InvalidParameterError):
            validate_bundle(bundle)
