"""Counter/gauge/histogram semantics and registry behaviour."""

from __future__ import annotations

import bisect
import random
import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    STANDARD_METRICS,
    declare_standard_metrics,
    get_registry,
    render_snapshot,
    snapshot_percentile,
)
from repro.obs.stats import percentile


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_decrements(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_reset(self):
        counter = Counter("c")
        counter.inc(3)
        counter.reset()
        assert counter.value == 0

    def test_snapshot(self):
        counter = Counter("c")
        counter.inc(2)
        assert counter.snapshot() == {"type": "counter", "value": 2}


class TestGauge:
    def test_unset_is_none(self):
        assert Gauge("g").value is None

    def test_set_and_move(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_inc_from_unset_counts_from_zero(self):
        gauge = Gauge("g")
        gauge.inc(2)
        assert gauge.value == 2

    def test_reset(self):
        gauge = Gauge("g")
        gauge.set(1)
        gauge.reset()
        assert gauge.value is None


class TestHistogram:
    def test_aggregates(self):
        histogram = Histogram("h")
        for value in (2.0, 4.0, 9.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 15.0
        assert histogram.mean == 5.0
        snap = histogram.snapshot()
        assert snap["min"] == 2.0
        assert snap["max"] == 9.0
        assert snap["samples"] == [2.0, 4.0, 9.0]

    def test_empty_mean_is_none(self):
        assert Histogram("h").mean is None

    def test_sample_retention_is_capped(self):
        histogram = Histogram("h")
        for value in range(5000):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 5000
        assert len(snap["samples"]) < 5000
        assert snap["max"] == 4999  # aggregates keep updating past the cap

    def test_reset(self):
        histogram = Histogram("h")
        histogram.observe(1.0)
        histogram.reset()
        assert histogram.count == 0
        assert histogram.snapshot()["samples"] == []


class TestRegistry:
    def test_instruments_are_memoized_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_name_collision_across_types_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("questions").inc(7)
        registry.histogram("lat").observe(1.5)
        snap = registry.snapshot()
        assert snap["questions"]["value"] == 7
        assert snap["lat"]["count"] == 1
        registry.reset()
        snap = registry.snapshot()
        assert snap["questions"]["value"] == 0  # still registered, zeroed
        assert snap["lat"]["count"] == 0

    def test_default_registry_is_a_singleton(self):
        assert get_registry() is get_registry()

    def test_declare_standard_metrics_preregisters_names(self):
        registry = MetricsRegistry()
        declare_standard_metrics(registry)
        names = registry.names()
        for _, name in STANDARD_METRICS:
            assert name in names

    def test_thread_safety_of_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")

        def work() -> None:
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 40_000


class TestRender:
    def test_render_empty(self):
        assert "no metrics" in render_snapshot({})

    def test_render_mixed_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("engine.rounds").inc(2)
        registry.histogram("engine.candidates_after").observe(8)
        registry.gauge("load").set(0.5)
        text = render_snapshot(registry.snapshot())
        assert "engine.rounds" in text
        assert "count=1" in text
        assert "0.5" in text


class TestBucketedPercentiles:
    def test_custom_buckets_apply_on_first_registration_only(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 2.0))
        assert registry.histogram("h", buckets=(9.0,)) is histogram
        assert histogram.snapshot()["bucket_bounds"] == [1.0, 2.0]

    def test_rejects_unsorted_bucket_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_bucket_counts_are_cumulative_with_inf_slot(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 1.5, 99.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["bucket_counts"] == [1, 3, 4]  # last slot is +Inf

    def test_percentile_exact_below_cap(self):
        histogram = Histogram("h")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        assert histogram.percentile(50) == 2.0
        assert snapshot_percentile(histogram.snapshot(), 50) == 2.0

    def test_p95_within_one_bucket_width_past_sample_cap(self):
        # Acceptance: past the 4096-sample retention cap the bucketed
        # p95 must land within one bucket width of the exact
        # nearest-rank p95 over *all* observations.
        rng = random.Random(42)
        histogram = Histogram("service.query_latency")
        observations = [rng.uniform(0.01, 1000.0) for _ in range(6000)]
        for value in observations:
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["truncated"] is True
        assert len(snap["samples"]) < len(observations)
        exact = percentile(observations, 95)
        estimate = snapshot_percentile(snap, 95)
        bounds = snap["bucket_bounds"]
        index = bisect.bisect_left(bounds, exact)
        lower = bounds[index - 1] if index else 0.0
        upper = bounds[index] if index < len(bounds) else snap["max"]
        assert abs(estimate - exact) <= upper - lower

    def test_estimate_degrades_to_max_in_overflow_bucket(self):
        histogram = Histogram("h", buckets=(1.0,))
        for value in range(5000):
            histogram.observe(float(value))
        assert histogram.percentile(100) == 4999.0

    def test_empty_histogram_percentile_is_none(self):
        assert Histogram("h").percentile(95) is None
        assert snapshot_percentile({"type": "gauge", "value": 3}, 95) is None


class TestTruncatedRendering:
    def test_truncated_flag_is_surfaced(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        for value in range(5000):
            histogram.observe(float(value))
        snap = registry.snapshot()
        assert snap["lat"]["truncated"] is True
        text = render_snapshot(snap)
        assert "truncated" in text
        assert "bucket-estimated" in text

    def test_untruncated_histogram_has_no_marker(self):
        registry = MetricsRegistry()
        registry.histogram("lat").observe(1.0)
        assert "truncated" not in render_snapshot(registry.snapshot())
