"""Tests for the terminal dashboard (``repro.obs.dashboard``)."""

import io

from repro.obs.dashboard import (
    FRAME_LINES,
    DashboardRenderer,
    render_final,
    render_frame,
    sparkline,
)
from repro.service.telemetry import TickSample


def _sample(tick: int, **overrides) -> TickSample:
    payload = dict(
        tick=tick,
        now=100.0 * tick,
        active=2,
        waiting=1,
        backlog=3,
        breaker="none",
        cache_hit_rate=0.5,
        round_latency=240.0,
        questions=40,
        questions_total=40 * tick,
        shared_rounds=tick,
        completed=tick - 1,
        degraded=0,
        shed=0,
        deferred=False,
    )
    payload.update(overrides)
    return TickSample(**payload)


class TestSparkline:
    def test_empty_series(self):
        assert sparkline([]) == ""

    def test_flat_series_renders_lowest_block(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_series_is_monotone(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert list(line) == sorted(line)

    def test_window_clips_to_width(self):
        assert len(sparkline(list(range(100)), width=10)) == 10


class TestRenderFrame:
    def test_has_fixed_line_count(self):
        frame = render_frame([_sample(1), _sample(2)])
        assert len(frame.split("\n")) == FRAME_LINES
        empty = render_frame([])
        assert len(empty.split("\n")) == FRAME_LINES

    def test_shows_current_state(self):
        frame = render_frame([_sample(3, breaker="open", waiting=4)])
        assert "tick 3" in frame
        assert "breaker=open" in frame
        assert "waiting 4" in frame
        assert "plan-cache 50% hit" in frame

    def test_marks_deferred_ticks(self):
        frame = render_frame([_sample(1, deferred=True, round_latency=0.0)])
        assert "(deferred)" in frame

    def test_health_shown_only_when_slo_is_armed(self):
        armed = render_frame(
            [_sample(1, health="degraded", alerts_active=2)]
        )
        assert "health=degraded alerts=2" in armed.splitlines()[0]
        # Unarmed samples leave health empty — the header must stay
        # byte-identical to the pre-SLO rendering.
        plain = render_frame([_sample(1)])
        assert "health=" not in plain
        assert "alerts=" not in plain


class TestRenderFinal:
    def test_summarizes_last_sample(self):
        line = render_final([_sample(1), _sample(9, completed=6, shed=2)])
        assert line == (
            "final: tick=9 t=900.0s completed=6 degraded=0 shed=2 "
            "shared_rounds=9 questions=360"
        )

    def test_empty_series(self):
        assert "no ticks" in render_final([])


class TestDashboardRenderer:
    def test_headless_stream_prints_only_final_frame(self):
        stream = io.StringIO()  # not a TTY
        renderer = DashboardRenderer(stream=stream)
        for tick in (1, 2, 3):
            renderer.update(_sample(tick))
        assert stream.getvalue() == ""  # silent until finish
        summary = renderer.finish()
        out = stream.getvalue()
        assert "tick 3" in out
        assert summary in out
        assert "\x1b[" not in out  # no control codes in headless output

    def test_live_stream_redraws_in_place(self):
        stream = io.StringIO()
        renderer = DashboardRenderer(stream=stream, live=True)
        renderer.update(_sample(1))
        renderer.update(_sample(2))
        out = stream.getvalue()
        assert f"\x1b[{FRAME_LINES}A" in out  # cursor-up between frames
        assert "\x1b[2K" in out  # erase-line before each redraw

    def test_finish_returns_the_summary_line(self):
        renderer = DashboardRenderer(stream=io.StringIO())
        renderer.update(_sample(4))
        assert renderer.finish().startswith("final: tick=4")
