"""Tests for the OpenMetrics text exposition (``repro.obs.openmetrics``)."""

import re
from pathlib import Path

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.openmetrics import (
    metric_name,
    render_openmetrics,
    write_openmetrics,
)

GOLDEN = Path(__file__).parent / "data" / "openmetrics_golden.txt"

#: One exposition line: comment, or `name{labels} value`.
_LINE = re.compile(
    r"^(# (TYPE|EOF).*|[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{le=\"[^\"]+\"\})? [^ ]+)$"
)


def _golden_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("service.rounds").inc(3)
    registry.gauge("service.queue_depth").set(7)
    registry.gauge("unset.gauge")  # never set: must be omitted
    histogram = registry.histogram(
        "service.query_latency", buckets=(0.1, 1.0, 10.0)
    )
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        histogram.observe(value)
    return registry


class TestGoldenFile:
    def test_matches_committed_exposition(self):
        rendered = render_openmetrics(_golden_registry().snapshot())
        assert rendered == GOLDEN.read_text(encoding="utf-8")

    def test_every_line_parses(self):
        rendered = render_openmetrics(_golden_registry().snapshot())
        for line in rendered.rstrip("\n").split("\n"):
            assert _LINE.match(line), f"unparseable exposition line: {line!r}"

    def test_ends_with_eof_terminator(self):
        assert render_openmetrics({}).endswith("# EOF\n")


class TestRendering:
    def test_counter_gets_total_suffix(self):
        registry = MetricsRegistry()
        registry.counter("questions.posted").inc(41)
        assert "questions_posted_total 41" in render_openmetrics(
            registry.snapshot()
        )

    def test_unset_gauge_is_omitted(self):
        registry = MetricsRegistry()
        registry.gauge("never.set")
        rendered = render_openmetrics(registry.snapshot())
        assert "never_set" not in rendered

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 1.5, 99.0):
            histogram.observe(value)
        rendered = render_openmetrics(registry.snapshot())
        assert 'h_bucket{le="1"} 1' in rendered
        assert 'h_bucket{le="2"} 3' in rendered
        assert 'h_bucket{le="+Inf"} 4' in rendered
        assert "h_count 4" in rendered

    def test_histogram_counts_survive_sample_cap(self):
        # Past the per-histogram sample cap the bucket counters (which
        # never truncate) still expose every observation.
        registry = MetricsRegistry()
        histogram = registry.histogram("big", buckets=(10.0,))
        for index in range(5000):
            histogram.observe(float(index % 20))
        rendered = render_openmetrics(registry.snapshot())
        assert 'big_bucket{le="+Inf"} 5000' in rendered
        assert "big_count 5000" in rendered

    def test_unknown_instrument_type_is_an_error(self):
        with pytest.raises(ValueError):
            render_openmetrics({"x": {"type": "summary"}})


class TestNameSanitization:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("service.query_latency", "service_query_latency"),
            ("time.fig15.tdp", "time_fig15_tdp"),
            ("9starts-with-digit", "_9starts_with_digit"),
            ("ok_name", "ok_name"),
        ],
    )
    def test_sanitizes_to_exposition_grammar(self, raw, expected):
        assert metric_name(raw) == expected


class TestWriteOpenmetrics:
    def test_writes_atomically_and_is_rereadable(self, tmp_path):
        path = tmp_path / "metrics.prom"
        registry = _golden_registry()
        write_openmetrics(registry.snapshot(), path)
        first = path.read_text(encoding="utf-8")
        assert first.endswith("# EOF\n")
        # Rewrite (the per-tick serve path): replaced, never appended.
        registry.counter("service.rounds").inc()
        write_openmetrics(registry.snapshot(), path)
        second = path.read_text(encoding="utf-8")
        assert second.count("# EOF") == 1
        assert "service_rounds_total 4" in second
        # No leftover temp files from the atomic replace.
        assert [p.name for p in tmp_path.iterdir()] == ["metrics.prom"]


class TestLabeledSeries:
    def test_labeled_name_sorts_and_quotes(self):
        from repro.obs.metrics import labeled_name

        assert labeled_name("m", {"b": "2", "a": "1"}) == 'm{a="1",b="2"}'
        assert labeled_name("m", {}) == "m"

    @pytest.mark.parametrize(
        "raw,escaped",
        [
            ('back\\slash', 'back\\\\slash'),
            ('quo"te', 'quo\\"te'),
            ("new\nline", "new\\nline"),
            ('all\\"\n', 'all\\\\\\"\\n'),
        ],
    )
    def test_label_values_are_escaped(self, raw, escaped):
        from repro.obs.metrics import labeled_name

        assert labeled_name("m", {"k": raw}) == f'm{{k="{escaped}"}}'

    def test_split_labels_round_trips(self):
        from repro.obs.metrics import labeled_name
        from repro.obs.openmetrics import split_labels

        name = labeled_name("service.latency_component", {"component": "retry"})
        base, labels = split_labels(name)
        assert base == "service.latency_component"
        assert labels == 'component="retry"'
        assert split_labels("plain.name") == ("plain.name", "")

    def test_labeled_counter_and_gauge_render_with_labels(self):
        from repro.obs.metrics import labeled_name

        registry = MetricsRegistry()
        registry.counter(labeled_name("reqs", {"kind": "a"})).inc(2)
        registry.counter(labeled_name("reqs", {"kind": "b"})).inc(3)
        registry.gauge(labeled_name("depth", {"q": "x"})).set(7)
        rendered = render_openmetrics(registry.snapshot())
        assert 'reqs_total{kind="a"} 2' in rendered
        assert 'reqs_total{kind="b"} 3' in rendered
        assert 'depth{q="x"} 7' in rendered
        # One TYPE line per family, not per labeled series.
        assert rendered.count("# TYPE reqs counter") == 1

    def test_labeled_histogram_merges_labels_with_le(self):
        from repro.obs.metrics import labeled_name

        registry = MetricsRegistry()
        name = labeled_name("lat", {"component": "retry"})
        histogram = registry.histogram(name, buckets=(1.0,))
        histogram.observe(0.5)
        histogram.observe(9.0)
        rendered = render_openmetrics(registry.snapshot())
        assert 'lat_bucket{component="retry",le="1"} 1' in rendered
        assert 'lat_bucket{component="retry",le="+Inf"} 2' in rendered
        assert 'lat_sum{component="retry"} 9.5' in rendered
        assert 'lat_count{component="retry"} 2' in rendered

    def test_escaped_label_values_render_verbatim(self):
        from repro.obs.metrics import labeled_name

        registry = MetricsRegistry()
        registry.counter(
            labeled_name("odd", {"k": 'v"\\\n'})
        ).inc()
        rendered = render_openmetrics(registry.snapshot())
        assert 'odd_total{k="v\\"\\\\\\n"} 1' in rendered
        # The raw newline never splits the series line in two.
        series = [l for l in rendered.splitlines() if l.startswith("odd_total")]
        assert len(series) == 1

    def test_unlabeled_rendering_is_unchanged(self):
        # The golden test pins this too; keep an explicit guard close to
        # the label machinery.
        rendered = render_openmetrics(_golden_registry().snapshot())
        assert "{" not in rendered.replace('{le="', "")
