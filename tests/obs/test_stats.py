"""Tests for the shared nearest-rank percentile (``repro.obs.stats``)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.obs.stats import nearest_rank, percentile
from repro.service.report import nearest_rank_percentile


class TestNearestRank:
    def test_textbook_examples(self):
        assert nearest_rank(10, 50) == 5
        assert nearest_rank(10, 95) == 10
        assert nearest_rank(10, 100) == 10
        assert nearest_rank(1, 1) == 1
        assert nearest_rank(4, 26) == 2

    def test_tiny_percentile_clamps_to_first(self):
        assert nearest_rank(1000, 0.001) == 1

    def test_rejects_empty_sample(self):
        with pytest.raises(InvalidParameterError):
            nearest_rank(0, 50)

    @pytest.mark.parametrize("p", [0, -1, 100.001, 200])
    def test_rejects_out_of_range_percentile(self, p):
        with pytest.raises(InvalidParameterError):
            nearest_rank(10, p)


class TestPercentile:
    def test_median_is_an_observation(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_unsorted_input(self):
        assert percentile([9, 1, 5, 7, 3], 95) == 9

    def test_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            percentile([], 50)

    @given(
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=300
        ),
        st.floats(0.001, 100),
    )
    def test_matches_numpy_inverted_cdf(self, values, p):
        # The nearest-rank definition IS numpy's inverted_cdf method;
        # this pins the obs/service percentile to the reference
        # implementation exactly (no interpolation, no off-by-one).
        assert percentile(values, p) == float(
            np.percentile(values, p, method="inverted_cdf")
        )

    @given(
        st.lists(
            st.floats(-1e3, 1e3, allow_nan=False), min_size=1, max_size=50
        ),
        st.floats(0.001, 100),
    )
    def test_result_is_always_an_observation(self, values, p):
        assert percentile(values, p) in values


class TestServiceReportAlias:
    def test_delegates_to_shared_definition(self):
        values = [5.0, 1.0, 4.0, 2.0, 3.0]
        for p in (1, 25, 50, 75, 95, 100):
            assert nearest_rank_percentile(values, p) == percentile(values, p)

    def test_same_errors(self):
        with pytest.raises(InvalidParameterError):
            nearest_rank_percentile([], 50)
        with pytest.raises(InvalidParameterError):
            nearest_rank_percentile([1.0], 0)
