"""Tests for the shared stats helpers (``repro.obs.stats``)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.obs.stats import escalation_step, nearest_rank, percentile
from repro.service.report import nearest_rank_percentile


class TestNearestRank:
    def test_textbook_examples(self):
        assert nearest_rank(10, 50) == 5
        assert nearest_rank(10, 95) == 10
        assert nearest_rank(10, 100) == 10
        assert nearest_rank(1, 1) == 1
        assert nearest_rank(4, 26) == 2

    def test_tiny_percentile_clamps_to_first(self):
        assert nearest_rank(1000, 0.001) == 1

    def test_rejects_empty_sample(self):
        with pytest.raises(InvalidParameterError):
            nearest_rank(0, 50)

    @pytest.mark.parametrize("p", [0, -1, 100.001, 200])
    def test_rejects_out_of_range_percentile(self, p):
        with pytest.raises(InvalidParameterError):
            nearest_rank(10, p)


class TestPercentile:
    def test_median_is_an_observation(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_unsorted_input(self):
        assert percentile([9, 1, 5, 7, 3], 95) == 9

    def test_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            percentile([], 50)

    @given(
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=300
        ),
        st.floats(0.001, 100),
    )
    def test_matches_numpy_inverted_cdf(self, values, p):
        # The nearest-rank definition IS numpy's inverted_cdf method;
        # this pins the obs/service percentile to the reference
        # implementation exactly (no interpolation, no off-by-one).
        assert percentile(values, p) == float(
            np.percentile(values, p, method="inverted_cdf")
        )

    @given(
        st.lists(
            st.floats(-1e3, 1e3, allow_nan=False), min_size=1, max_size=50
        ),
        st.floats(0.001, 100),
    )
    def test_result_is_always_an_observation(self, values, p):
        assert percentile(values, p) in values


class TestEscalationStep:
    def test_escalates_at_threshold(self):
        assert escalation_step(
            100.0, 0, threshold=100.0, clear_threshold=75.0, max_level=3
        ) == (0, 1)

    def test_saturates_at_max_level(self):
        assert escalation_step(
            500.0, 3, threshold=100.0, clear_threshold=75.0, max_level=3
        ) is None

    def test_holds_inside_hysteresis_band(self):
        # [clear_threshold, threshold) neither escalates nor de-escalates.
        assert escalation_step(
            80.0, 1, threshold=100.0, clear_threshold=75.0, max_level=3
        ) is None

    def test_deescalates_below_clear(self):
        assert escalation_step(
            74.9, 2, threshold=100.0, clear_threshold=75.0, max_level=3
        ) == (2, 1)

    def test_level_zero_never_deescalates(self):
        assert escalation_step(
            0.0, 0, threshold=100.0, clear_threshold=75.0, max_level=3
        ) is None

    @given(
        st.floats(0, 1000, allow_nan=False),
        st.integers(0, 3),
    )
    def test_steps_are_single_and_in_range(self, value, level):
        change = escalation_step(
            value, level, threshold=100.0, clear_threshold=75.0, max_level=3
        )
        if change is not None:
            old, new = change
            assert old == level
            assert abs(new - old) == 1
            assert 0 <= new <= 3


class TestServiceReportAlias:
    def test_delegates_to_shared_definition(self):
        values = [5.0, 1.0, 4.0, 2.0, 3.0]
        for p in (1, 25, 50, 75, 95, 100):
            assert nearest_rank_percentile(values, p) == percentile(values, p)

    def test_same_errors(self):
        with pytest.raises(InvalidParameterError):
            nearest_rank_percentile([], 50)
        with pytest.raises(InvalidParameterError):
            nearest_rank_percentile([1.0], 0)
