"""Per-backend labeled metrics series (satellite: exposition contract).

The router exports ``backend.*`` series with a ``backend`` label per
configured backend.  The contract under test: label values are escaped
per the OpenMetrics ABNF (backslash, double-quote, newline), and series
cardinality is bounded — exactly one series per configured backend per
instrument, no matter how many rounds are routed.
"""

import re

import numpy as np
import pytest

from repro.core.latency import LinearLatency
from repro.crowd.ground_truth import GroundTruth
from repro.crowd.multibackend import (
    BackendSpec,
    CapacityAwareRouter,
    build_backends,
)
from repro.obs.metrics import get_registry, labeled_name
from repro.obs.openmetrics import render_openmetrics

# Newlines are rejected at the BackendSpec level (tested elsewhere); the
# escaper still has to survive quotes and backslashes in real names.
AWKWARD_NAMES = ['we"ird\\', "back\\slash", "plain"]


def _routed_registry(names, rounds=3):
    """Run *rounds* routed rounds over a fleet named *names*."""
    registry = get_registry()
    registry.reset()
    # reset() keeps instruments registered; drop them so series from a
    # previous fleet cannot leak into this test's cardinality counts.
    with registry._lock:
        registry._instruments.clear()
    truth = GroundTruth.random(20, np.random.default_rng((0, 0)))
    # Tight capacities force the 8-question round to split, so every
    # backend in the fleet carries traffic (and therefore gets a series).
    specs = [
        BackendSpec(
            name=name,
            latency=LinearLatency(100.0 + 10 * i, 0.1),
            capacity=3,
        )
        for i, name in enumerate(names)
    ]
    router = CapacityAwareRouter(build_backends(specs, truth, 0))
    questions = [(i, i + 10) for i in range(8)]
    for tick in range(rounds):
        router.post_round([(0, questions)], now=float(tick), tick=tick)
    return registry


class TestLabelEscaping:
    def test_label_values_are_escaped(self):
        name = labeled_name("backend.rounds", {"backend": 'we"ird\\'})
        assert name == 'backend.rounds{backend="we\\"ird\\\\"}'
        name = labeled_name("backend.rounds", {"backend": "new\nline"})
        assert name == 'backend.rounds{backend="new\\nline"}'

    def test_awkward_backend_names_render_and_parse(self):
        registry = _routed_registry(AWKWARD_NAMES)
        rendered = render_openmetrics(registry.snapshot())
        # Every exposition line is a comment or `name{labels} value` with
        # no raw newline/quote leaking out of a label value.
        line_re = re.compile(
            r"^(# (TYPE|EOF).*|[a-zA-Z_:][a-zA-Z0-9_:]*"
            r'(\{([a-zA-Z_]+="(\\.|[^"\\])*",?)+\})? [^ ]+)$'
        )
        for line in rendered.rstrip("\n").split("\n"):
            assert line_re.match(line), f"unparseable line: {line!r}"
        assert 'backend="we\\"ird\\\\"' in rendered
        assert 'backend="back\\\\slash"' in rendered
        assert 'backend="plain"' in rendered

    def test_labels_are_sorted_for_stable_series_identity(self):
        assert labeled_name("x", {"b": "2", "a": "1"}) == labeled_name(
            "x", dict([("a", "1"), ("b", "2")])
        )


class TestCardinality:
    @pytest.mark.parametrize("n_backends", [1, 3])
    def test_one_series_per_configured_backend(self, n_backends):
        names = [f"backend-{i}" for i in range(n_backends)]
        registry = _routed_registry(names, rounds=5)
        rendered = render_openmetrics(registry.snapshot())
        for instrument in ("backend_rounds_total",
                           "backend_questions_posted_total"):
            series = [
                line
                for line in rendered.split("\n")
                if line.startswith(f"{instrument}{{")
            ]
            assert len(series) == n_backends
        latency_counts = [
            line
            for line in rendered.split("\n")
            if line.startswith("backend_round_latency_count{")
        ]
        assert len(latency_counts) == n_backends

    def test_rounds_accumulate_without_new_series(self):
        few = render_openmetrics(
            _routed_registry(["a", "b"], rounds=2).snapshot()
        )
        many = render_openmetrics(
            _routed_registry(["a", "b"], rounds=10).snapshot()
        )

        def series_names(rendered):
            return sorted(
                line.split(" ")[0]
                for line in rendered.rstrip("\n").split("\n")
                if line.startswith("backend_")
            )

        assert series_names(few) == series_names(many)
        assert 'backend_rounds_total{backend="a"} 10' in many

    def test_outages_only_export_for_outaged_backends(self):
        registry = _routed_registry(["a", "b"])
        rendered = render_openmetrics(registry.snapshot())
        assert "backend_outages_total" not in rendered
