"""Tracer semantics: NullTracer no-ops, recording order, spans, scoping."""

from __future__ import annotations

from repro.obs.events import RoundPosted, SpanCompleted
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    RecordingTracer,
    current_tracer,
    timed,
    use_tracer,
)


def _round_event(index: int = 0) -> RoundPosted:
    return RoundPosted(
        round_index=index,
        budget=10,
        questions_posted=10,
        candidates_before=20,
    )


class FakeClock:
    """A deterministic, manually advanced clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestNullTracer:
    def test_disabled_flag(self):
        assert NullTracer().enabled is False
        assert NULL_TRACER.enabled is False

    def test_emit_is_a_noop(self):
        tracer = NullTracer()
        assert tracer.emit(_round_event()) is None
        tracer.advance_sim(5.0)  # also a no-op, must not raise

    def test_is_the_ambient_default(self):
        assert current_tracer() is NULL_TRACER


class TestRecordingTracer:
    def test_sequence_numbers_are_dense_and_ordered(self):
        tracer = RecordingTracer()
        for index in range(5):
            tracer.emit(_round_event(index))
        records = tracer.records
        assert [r.seq for r in records] == [0, 1, 2, 3, 4]
        assert [r.event.round_index for r in records] == [0, 1, 2, 3, 4]

    def test_wall_times_are_monotonic_from_zero(self):
        clock = FakeClock()
        tracer = RecordingTracer(clock=clock)
        clock.now = 1.5
        tracer.emit(_round_event(0))
        clock.now = 2.25
        tracer.emit(_round_event(1))
        walls = [r.wall_time for r in tracer.records]
        assert walls == [1.5, 2.25]

    def test_sim_clock_tracking_and_override(self):
        tracer = RecordingTracer()
        tracer.emit(_round_event(0))
        tracer.advance_sim(240.0)
        tracer.emit(_round_event(1))
        tracer.emit(_round_event(2), sim_time=99.0)
        sims = [r.sim_time for r in tracer.records]
        assert sims == [0.0, 240.0, 99.0]
        assert tracer.sim_time == 240.0

    def test_events_filter_by_kind(self):
        tracer = RecordingTracer()
        tracer.emit(_round_event())
        tracer.emit(SpanCompleted(label="x", seconds=0.1))
        assert len(tracer.events("RoundPosted")) == 1
        assert len(tracer.events("SpanCompleted")) == 1
        assert len(tracer.events()) == 2

    def test_clear(self):
        tracer = RecordingTracer()
        tracer.emit(_round_event())
        tracer.advance_sim(10.0)
        tracer.clear()
        assert tracer.records == ()
        assert tracer.sim_time == 0.0


class TestUseTracer:
    def test_scoped_install_and_restore(self):
        tracer = RecordingTracer()
        assert current_tracer() is NULL_TRACER
        with use_tracer(tracer) as installed:
            assert installed is tracer
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_restores_on_exception(self):
        tracer = RecordingTracer()
        try:
            with use_tracer(tracer):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_tracer() is NULL_TRACER


class TestTimed:
    def test_context_manager_measures_and_records(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        with timed("unit", registry=registry, clock=clock) as span:
            clock.now = 0.75
        assert span.seconds == 0.75
        snap = registry.snapshot()["time.unit"]
        assert snap["count"] == 1
        assert snap["samples"] == [0.75]

    def test_emits_span_event_on_active_tracer(self):
        registry = MetricsRegistry()
        tracer = RecordingTracer()
        with timed("unit", registry=registry, tracer=tracer):
            pass
        events = tracer.events("SpanCompleted")
        assert len(events) == 1
        assert events[0].label == "unit"

    def test_null_tracer_receives_nothing(self):
        registry = MetricsRegistry()
        with timed("unit", registry=registry):
            pass  # ambient tracer is NULL_TRACER; must not raise

    def test_decorator_measures_every_call(self):
        registry = MetricsRegistry()

        @timed("decorated", registry=registry)
        def add(a, b):
            return a + b

        assert add(1, 2) == 3
        assert add(3, 4) == 7
        assert registry.snapshot()["time.decorated"]["count"] == 2

    def test_records_even_when_body_raises(self):
        registry = MetricsRegistry()
        try:
            with timed("failing", registry=registry):
                raise ValueError("boom")
        except ValueError:
            pass
        assert registry.snapshot()["time.failing"]["count"] == 1
