"""JSONL round-trip (export -> parse -> report) and event serialization."""

from __future__ import annotations

import io

import pytest

from repro.obs.events import (
    AnswersReceived,
    CandidateSetShrunk,
    DPTableBuilt,
    RWLRetry,
    RoundPosted,
    RunFinished,
    RunStarted,
    SpanCompleted,
    TraceRecord,
    WorkerServiced,
    event_from_dict,
)
from repro.obs.export import read_jsonl, write_jsonl
from repro.obs.report import render_trace_report, report_file
from repro.obs.tracer import RecordingTracer

ALL_EVENTS = (
    RunStarted(n_elements=30, budget=70, rounds_planned=2, engine="MaxEngine"),
    RoundPosted(round_index=0, budget=42, questions_posted=42, candidates_before=30),
    AnswersReceived(round_index=0, n_answers=42, latency=241.5),
    CandidateSetShrunk(round_index=0, candidates_before=30, candidates_after=8),
    RWLRetry(distinct_questions=28, questions_posted=84, repetition=3, majority_flips=2),
    WorkerServiced(worker_id=5, n_answers=17, busy_time=120.5),
    DPTableBuilt(solver="frontier", n_elements=30, budget=150, seconds=0.002, states=107),
    SpanCompleted(label="tdp.solve", seconds=0.002),
    RunFinished(winner=2, rounds_run=2, total_questions=70, total_latency=482.2, singleton=True),
)


def _trace() -> RecordingTracer:
    tracer = RecordingTracer()
    for event in ALL_EVENTS:
        tracer.emit(event)
    return tracer


class TestEventSerialization:
    @pytest.mark.parametrize("event", ALL_EVENTS, ids=lambda e: e.kind)
    def test_dict_round_trip_every_kind(self, event):
        assert event_from_dict(event.kind, event.to_dict()) == event

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            event_from_dict("NoSuchEvent", {})

    def test_record_round_trip_preserves_timestamps(self):
        record = TraceRecord(
            seq=3, wall_time=0.5, sim_time=240.0, event=ALL_EVENTS[1]
        )
        assert TraceRecord.from_dict(record.to_dict()) == record

    def test_record_round_trip_with_null_sim_time(self):
        record = TraceRecord(seq=0, wall_time=0.1, sim_time=None, event=ALL_EVENTS[0])
        assert TraceRecord.from_dict(record.to_dict()) == record


class TestJsonl:
    def test_file_round_trip_is_lossless(self, tmp_path):
        tracer = _trace()
        path = tmp_path / "trace.jsonl"
        count = write_jsonl(tracer, path)
        assert count == len(ALL_EVENTS)
        assert read_jsonl(path) == list(tracer.records)

    def test_stream_round_trip(self):
        tracer = _trace()
        buffer = io.StringIO()
        write_jsonl(tracer, buffer)
        buffer.seek(0)
        assert read_jsonl(buffer) == list(tracer.records)

    def test_accepts_plain_record_iterables(self, tmp_path):
        records = list(_trace().records)
        path = tmp_path / "trace.jsonl"
        write_jsonl(records, path)
        assert read_jsonl(path) == records

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(_trace(), path)
        content = path.read_text()
        path.write_text("\n" + content + "\n\n")
        assert len(read_jsonl(path)) == len(ALL_EVENTS)

    def test_one_json_object_per_line(self, tmp_path):
        import json

        path = tmp_path / "trace.jsonl"
        write_jsonl(_trace(), path)
        lines = path.read_text().splitlines()
        assert len(lines) == len(ALL_EVENTS)
        for line in lines:
            assert isinstance(json.loads(line), dict)


class TestReport:
    def test_full_pipeline_export_parse_report(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(_trace(), path)
        report = report_file(path)
        # Run header and result line.
        assert "c0=30" in report
        assert "MAX=2 (singleton)" in report
        # The per-round breakdown row: round 0, 30 -> 8 candidates.
        assert "per-round breakdown:" in report
        assert "30" in report and "8" in report
        assert "241.5" in report
        # Section per instrumented layer.
        assert "allocator DP builds:" in report
        assert "frontier" in report
        assert "RWL repairs:" in report
        assert "56 redundant question(s)" in report
        assert "profiling spans:" in report
        assert "tdp.solve" in report

    def test_report_without_rounds(self):
        tracer = RecordingTracer()
        tracer.emit(SpanCompleted(label="only.spans", seconds=0.5))
        report = render_trace_report(tracer.records)
        assert "(no rounds recorded)" in report
        assert "only.spans" in report

    def test_cumulative_latency_column(self):
        tracer = RecordingTracer()
        for index, latency in enumerate((100.0, 50.0)):
            tracer.emit(
                RoundPosted(
                    round_index=index,
                    budget=10,
                    questions_posted=10,
                    candidates_before=20 - index,
                )
            )
            tracer.emit(
                AnswersReceived(round_index=index, n_answers=10, latency=latency)
            )
        report = render_trace_report(tracer.records)
        assert "150.0" in report  # cumulative after round 1
