"""Tests for trace sinks: streaming JSONL, in-memory, tee, crash prefix."""

import json

import pytest

from repro.chaos import ChaosScenario, build_scheduler
from repro.errors import InvalidParameterError
from repro.obs.events import RoundPosted, TraceRecord
from repro.obs.export import read_jsonl
from repro.obs.sinks import InMemorySink, StreamingJsonlSink, TeeSink
from repro.obs.tracer import RecordingTracer, use_tracer


def _event(index: int) -> RoundPosted:
    return RoundPosted(
        round_index=index, budget=10, questions_posted=10, candidates_before=5
    )


class TestInMemorySink:
    def test_collects_records_in_order(self):
        sink = InMemorySink()
        tracer = RecordingTracer(sinks=[sink])
        for i in range(5):
            tracer.emit(_event(i))
        assert [r.seq for r in sink.records] == [0, 1, 2, 3, 4]
        assert sink.records == tracer.records


class TestStreamingJsonlSink:
    def test_writes_one_line_per_record(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with StreamingJsonlSink(path, flush_interval=1) as sink:
            tracer = RecordingTracer(sinks=[sink])
            for i in range(3):
                tracer.emit(_event(i))
        records = read_jsonl(path)
        assert len(records) == 3
        assert [r.event.round_index for r in records] == [0, 1, 2]

    def test_flush_interval_controls_durability(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = StreamingJsonlSink(path, flush_interval=4)
        tracer = RecordingTracer(sinks=[sink])
        for i in range(6):
            tracer.emit(_event(i))
        # 6 written, last flush at 4: the readable prefix is 4 records.
        assert sink.records_written == 6
        assert len(read_jsonl(path)) == 4
        sink.flush()
        assert len(read_jsonl(path)) == 6

    def test_closed_sink_rejects_writes(self, tmp_path):
        sink = StreamingJsonlSink(tmp_path / "t.jsonl")
        sink.close()
        with pytest.raises(InvalidParameterError):
            sink.write(TraceRecord(0, 0.0, 0.0, _event(0)))

    def test_close_is_idempotent(self, tmp_path):
        sink = StreamingJsonlSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()

    def test_rejects_bad_flush_interval(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            StreamingJsonlSink(tmp_path / "t.jsonl", flush_interval=0)


class TestTeeSink:
    def test_fans_out_to_all_sinks(self, tmp_path):
        memory = InMemorySink()
        jsonl = StreamingJsonlSink(tmp_path / "t.jsonl", flush_interval=1)
        tee = TeeSink([memory, jsonl])
        tracer = RecordingTracer(sinks=[tee])
        for i in range(4):
            tracer.emit(_event(i))
        tee.close()
        assert len(memory.records) == 4
        assert len(read_jsonl(tmp_path / "t.jsonl")) == 4


class TestTracerSinkIntegration:
    def test_unbuffered_tracer_keeps_no_records(self, tmp_path):
        sink = InMemorySink()
        tracer = RecordingTracer(sinks=[sink], buffer=False)
        for i in range(7):
            tracer.emit(_event(i))
        assert tracer.records == ()
        assert tracer.emitted == 7
        assert len(sink.records) == 7
        # seq numbering is independent of buffering.
        assert [r.seq for r in sink.records] == list(range(7))

    def test_clear_resets_seq(self):
        tracer = RecordingTracer()
        tracer.emit(_event(0))
        tracer.clear()
        tracer.emit(_event(1))
        assert tracer.records[0].seq == 0

    def test_close_sinks_flushes(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = RecordingTracer(
            sinks=[StreamingJsonlSink(path, flush_interval=100)]
        )
        tracer.emit(_event(0))
        assert read_jsonl(path) == []
        tracer.close_sinks()
        assert len(read_jsonl(path)) == 1


class TestCrashLeavesReadablePrefix:
    def test_killed_run_prefix_parses_and_matches(self, tmp_path):
        """Abandon a scheduler mid-run; the sink's on-disk prefix must
        parse cleanly and be an exact prefix of the emitted stream."""
        scenario = ChaosScenario(workload="smoke", seed=7)
        trace_path = tmp_path / "trace.jsonl"
        sink = StreamingJsonlSink(trace_path, flush_interval=2)
        tracer = RecordingTracer(sinks=[sink])
        victim = build_scheduler(scenario)
        with use_tracer(tracer):
            for _ in range(2):
                if not victim.step():
                    break
        # Kill: the scheduler and sink are abandoned without close();
        # only flushed lines are on disk (the sink object stays alive so
        # no destructor flushes behind our back).
        del victim
        on_disk = read_jsonl(trace_path)
        emitted = tracer.records
        assert len(emitted) > 0
        assert len(on_disk) <= len(emitted)
        assert len(on_disk) >= len(emitted) - (sink.flush_interval - 1)
        for parsed, original in zip(on_disk, emitted):
            assert parsed.to_dict() == original.to_dict()
        # Every line on disk is whole — no torn JSON at the tail.
        with open(trace_path, "r", encoding="utf-8") as handle:
            for line in handle.read().splitlines():
                json.loads(line)
