"""Tests for per-query latency attribution (``repro.obs.attribution``)."""

import pytest

from repro.errors import InvalidParameterError
from repro.obs.attribution import (
    COMPONENTS,
    Chunk,
    QueryWaterfall,
    component_metric,
    render_attribution,
    render_waterfall,
    summarize_attribution,
    waterfalls_from_records,
)
from repro.obs.events import SpanClosed, SpanOpened
from repro.obs.metrics import STANDARD_METRICS
from repro.obs.tracer import RecordingTracer


def _waterfall(chunks, start=0.0, end=None, status="ok", query_id=0):
    if end is None:
        end = chunks[-1].end if chunks else start
    return QueryWaterfall(
        query_id=query_id, start=start, end=end, status=status,
        chunks=tuple(chunks),
    )


class TestWaterfallInvariant:
    def test_exact_tiling_validates(self):
        wf = _waterfall([
            Chunk("queue_wait", 0.0, 10.0),
            Chunk("round_post", 10.0, 250.0),
            Chunk("retry", 250.0, 400.0),
        ])
        wf.validate()
        assert wf.total == 400.0

    def test_gap_is_rejected(self):
        wf = _waterfall([
            Chunk("queue_wait", 0.0, 10.0),
            Chunk("round_post", 11.0, 20.0),
        ])
        with pytest.raises(InvalidParameterError, match="expected 10.0"):
            wf.validate()

    def test_overlap_is_rejected(self):
        wf = _waterfall([
            Chunk("queue_wait", 0.0, 10.0),
            Chunk("round_post", 9.0, 20.0),
        ])
        with pytest.raises(InvalidParameterError):
            wf.validate()

    def test_short_tiling_is_rejected(self):
        wf = _waterfall([Chunk("round_post", 0.0, 10.0)], end=20.0)
        with pytest.raises(InvalidParameterError, match="chunks end at 10.0"):
            wf.validate()

    def test_open_waterfall_cannot_validate(self):
        wf = QueryWaterfall(
            query_id=0, start=0.0, end=None, status=None, chunks=(),
        )
        with pytest.raises(InvalidParameterError, match="still open"):
            wf.validate()

    def test_zero_latency_query_needs_no_chunks(self):
        _waterfall([], start=5.0, end=5.0).validate()

    def test_chunk_sum_telescopes_exactly(self):
        # Boundaries that are not nicely representable: per-chunk
        # durations lose the last bit, the signed-endpoint fsum does not.
        a, b, c = 1.949163034576543, 200.67655863962463, 578.9315876433593
        wf = _waterfall(
            [Chunk("queue_wait", a, b), Chunk("round_post", b, c)], start=a,
        )
        wf.validate()
        assert wf.chunk_sum == wf.total == c - a

    def test_open_waterfall_has_no_chunk_sum(self):
        wf = QueryWaterfall(
            query_id=0, start=0.0, end=None, status=None, chunks=(),
        )
        assert wf.chunk_sum is None

    def test_components_sum_to_total(self):
        wf = _waterfall([
            Chunk("queue_wait", 0.0, 10.0),
            Chunk("round_post", 10.0, 20.0),
            Chunk("round_post", 20.0, 35.0),
        ])
        components = wf.components()
        assert components == {"queue_wait": 10.0, "round_post": 25.0}
        assert sum(components.values()) == wf.total


class TestTraceReassembly:
    def _records(self):
        tracer = RecordingTracer()
        for event in (
            SpanOpened(span_id="q0", parent_id=None, name="query", start=0.0,
                       query_id=0),
            SpanOpened(span_id="q0/wait", parent_id="q0", name="queue_wait",
                       start=0.0, query_id=0),
            SpanClosed(span_id="q0/wait", end=10.0),
            SpanOpened(span_id="q0/t1", parent_id="q0/r0", name="round_post",
                       start=10.0, query_id=0),
            SpanClosed(span_id="q0/t1", end=30.0),
            SpanClosed(span_id="q0", end=30.0, status="completed"),
            # A second query still in flight when the trace ends.
            SpanOpened(span_id="q1", parent_id=None, name="query", start=5.0,
                       query_id=1),
        ):
            tracer.emit(event)
        return tracer.records

    def test_waterfalls_rebuilt_from_span_events(self):
        waterfalls = waterfalls_from_records(self._records())
        assert set(waterfalls) == {0, 1}
        waterfalls[0].validate()
        assert waterfalls[0].total == 30.0
        assert waterfalls[0].status == "completed"

    def test_open_query_has_no_total(self):
        waterfalls = waterfalls_from_records(self._records())
        assert waterfalls[1].end is None
        assert waterfalls[1].total is None
        assert "still in flight" in render_waterfall(waterfalls[1])

    def test_non_component_spans_are_not_chunks(self):
        # Round spans (name "round") must not double-count against the
        # round_post leaves they contain.
        tracer = RecordingTracer()
        for event in (
            SpanOpened(span_id="q0", parent_id=None, name="query", start=0.0,
                       query_id=0),
            SpanOpened(span_id="q0/r0", parent_id="q0", name="round",
                       start=0.0, query_id=0),
            SpanOpened(span_id="q0/t0", parent_id="q0/r0", name="round_post",
                       start=0.0, query_id=0),
            SpanClosed(span_id="q0/t0", end=10.0),
            SpanClosed(span_id="q0/r0", end=10.0),
            SpanClosed(span_id="q0", end=10.0),
        ):
            tracer.emit(event)
        (wf,) = waterfalls_from_records(tracer.records).values()
        assert [c.component for c in wf.chunks] == ["round_post"]
        wf.validate()


class TestAggregation:
    def test_summarize_orders_by_canonical_component(self):
        stats = summarize_attribution({
            0: [("round_post", 0.0, 10.0), ("queue_wait", 10.0, 12.0)],
            1: [("queue_wait", 0.0, 6.0)],
        })
        assert [s.component for s in stats] == ["queue_wait", "round_post"]
        wait = stats[0]
        assert wait.total == 8.0
        assert wait.queries == 2
        assert wait.p50 == 2.0
        assert wait.p95 == 6.0

    def test_shares_sum_to_one(self):
        stats = summarize_attribution({
            0: [("round_post", 0.0, 30.0), ("stall", 30.0, 40.0)],
        })
        assert sum(s.share for s in stats) == pytest.approx(1.0)

    def test_empty_attribution_renders_placeholder(self):
        assert render_attribution(()) == [
            "latency attribution: (no attributed queries)"
        ]

    def test_render_lists_every_component(self):
        stats = summarize_attribution({0: [("defer", 0.0, 5.0)]})
        lines = render_attribution(stats)
        assert any("defer" in line for line in lines)


class TestMetricSync:
    def test_component_metric_embeds_the_label(self):
        assert component_metric("retry") == (
            'service.latency_component{component="retry"}'
        )

    def test_standard_metrics_mirror_components(self):
        declared = {
            name
            for _, name in STANDARD_METRICS
            if name.startswith("service.latency_component{")
        }
        assert declared == {component_metric(c) for c in COMPONENTS}
