"""Tests for the solver profiling counters (``repro.obs.profiling``)."""

import pytest

from repro.core.latency import LinearLatency
from repro.core.tdp import solve_min_latency
from repro.core.tdp_memo import solve_min_latency_memo
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import (
    PROFILER,
    SolverProfiler,
    profiled,
    render_profile,
)
from repro.service.plan_cache import PlanCache, PlanKey

LATENCY = LinearLatency(239, 0.06)


class TestSolverProfiler:
    def test_disabled_by_default(self):
        assert PROFILER.enabled is False

    def test_add_and_set_max(self):
        profiler = SolverProfiler()
        profiler.add("cells", 10)
        profiler.add("cells", 5)
        profiler.set_max("width", 3)
        profiler.set_max("width", 2)
        assert profiler.snapshot() == {"cells": 15, "width": 3}

    def test_reset_clears_counts_not_the_flag(self):
        profiler = SolverProfiler()
        profiler.enabled = True
        profiler.add("x")
        profiler.reset()
        assert profiler.snapshot() == {}
        assert profiler.enabled is True

    def test_publish_prefixes_solver(self):
        registry = MetricsRegistry()
        profiler = SolverProfiler()
        profiler.add("memo.hits", 4)
        profiler.publish(registry)
        assert registry.counter("solver.memo.hits").value == 4


class TestProfiledContext:
    def test_enables_resets_and_restores(self):
        PROFILER.add("stale", 1)
        with profiled(publish=False) as profiler:
            assert profiler is PROFILER
            assert PROFILER.enabled is True
            assert "stale" not in PROFILER.snapshot()
        assert PROFILER.enabled is False

    def test_restores_flag_on_exception(self):
        with pytest.raises(RuntimeError):
            with profiled(publish=False):
                raise RuntimeError("boom")
        assert PROFILER.enabled is False

    def test_publishes_to_the_given_registry(self):
        registry = MetricsRegistry()
        with profiled(registry):
            solve_min_latency(20, 60, LATENCY)
        assert registry.counter("solver.frontier.solves").value == 1
        assert registry.counter("solver.frontier.rows").value == 19


class TestSolverCounters:
    def test_frontier_counts_are_deterministic_work(self):
        with profiled(publish=False) as profiler:
            solve_min_latency(50, 300, LATENCY)
        first = profiler.snapshot()
        with profiled(publish=False) as profiler:
            solve_min_latency(50, 300, LATENCY)
        assert profiler.snapshot() == first
        assert first["frontier.solves"] == 1
        assert first["frontier.rows"] == 49
        assert first["frontier.cells"] > 0
        assert first["frontier.candidates"] >= first["frontier.cells"]

    def test_memo_counts_hits_and_misses(self):
        with profiled(publish=False) as profiler:
            solve_min_latency_memo(15, 40, LATENCY)
        counts = profiler.snapshot()
        assert counts["memo.solves"] == 1
        assert counts["memo.misses"] > 0
        assert counts["memo.hits"] > 0
        assert 0 < counts["memo.states"] <= counts["memo.misses"]

    def test_disabled_solves_record_nothing(self):
        solve_min_latency(20, 60, LATENCY)
        solve_min_latency_memo(15, 40, LATENCY)
        assert PROFILER.snapshot() == {} or not PROFILER.enabled


class TestPlanCacheCounters:
    def _key(self, n=20, budget=100, latency_key="lin"):
        return PlanKey(
            n_elements=n, budget=budget, latency_key=latency_key, repetition=1,
        )

    def _allocation(self, n=20, budget=100):
        from repro.core.allocation import Allocation

        plan = solve_min_latency(n, budget, LATENCY)
        return Allocation.from_element_sequence(plan.sequence, "tDP")

    def test_hit_miss_and_shape_hit(self):
        cache = PlanCache()
        with profiled(publish=False) as profiler:
            key = self._key()
            assert cache.get(key) is None          # cold miss, no shape
            cache.put(key, self._allocation())
            assert cache.get(key) is not None      # full hit
            # Same (n, budget) shape, different latency: shape hit.
            assert cache.get(self._key(latency_key="other")) is None
        counts = profiler.snapshot()
        assert counts["plan_cache.hits"] == 1
        assert counts["plan_cache.misses"] == 2
        assert counts["plan_cache.shape_hits"] == 1

    def test_eviction_drops_the_shape(self):
        cache = PlanCache(capacity=1)
        with profiled(publish=False) as profiler:
            cache.put(self._key(n=20), self._allocation(n=20))
            cache.put(self._key(n=30), self._allocation(n=30))  # evicts n=20
            assert cache.get(self._key(n=20, latency_key="other")) is None
        assert "plan_cache.shape_hits" not in profiler.snapshot()

    def test_clear_drops_shapes(self):
        cache = PlanCache()
        cache.put(self._key(), self._allocation())
        cache.clear()
        with profiled(publish=False) as profiler:
            assert cache.get(self._key(latency_key="other")) is None
        assert "plan_cache.shape_hits" not in profiler.snapshot()


class TestRendering:
    def test_render_empty(self):
        assert render_profile({}) == "no profiling counters recorded"

    def test_render_aligns_names(self):
        text = render_profile({"a": 1, "long.counter.name": 22})
        lines = text.splitlines()
        assert lines[0].startswith("counter")
        assert any(line.startswith("long.counter.name  22") for line in lines)
