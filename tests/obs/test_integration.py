"""End-to-end instrumentation: engines, allocators, RWL, platform, CLI.

Includes the regression guard: tracing must never perturb simulation
outcomes (same winner, rounds and latencies with the tracer off vs on).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.core.latency import LinearLatency
from repro.core.tdp import TDPAllocator, solve_min_latency
from repro.core.tdp_memo import solve_min_latency_memo
from repro.crowd.error_models import UniformError
from repro.crowd.ground_truth import GroundTruth
from repro.crowd.platform import SimulatedPlatform
from repro.crowd.rwl import ReliableWorkerLayer
from repro.engine.max_engine import (
    MaxEngine,
    OracleAnswerSource,
    PlatformAnswerSource,
)
from repro.obs.export import read_jsonl
from repro.obs.metrics import get_registry
from repro.obs.tracer import RecordingTracer, use_tracer
from repro.selection.tournament import TournamentFormation

LATENCY = LinearLatency(delta=239.0, alpha=0.06)


def _oracle_run(tracer=None, n_elements=40, budget=160, seed=7):
    rng = np.random.default_rng(seed)
    truth = GroundTruth.random(n_elements, rng)
    allocation = TDPAllocator().allocate(n_elements, budget, LATENCY)
    engine = MaxEngine(
        TournamentFormation(),
        OracleAnswerSource(truth, LATENCY),
        rng,
        tracer=tracer,
    )
    return engine.run(truth, allocation)


class TestEngineTracing:
    def test_one_posted_received_pair_per_round(self):
        tracer = RecordingTracer()
        result = _oracle_run(tracer=tracer)
        posted = tracer.events("RoundPosted")
        received = tracer.events("AnswersReceived")
        assert len(posted) == result.rounds_run >= 1
        assert len(received) == result.rounds_run
        assert [e.round_index for e in posted] == [
            e.round_index for e in received
        ]
        # Posted/received alternate in emission order.
        paired = [
            e for e in tracer.events() if e.kind in ("RoundPosted", "AnswersReceived")
        ]
        kinds = [e.kind for e in paired]
        assert kinds == ["RoundPosted", "AnswersReceived"] * result.rounds_run

    def test_candidate_counts_are_non_increasing(self):
        tracer = RecordingTracer()
        _oracle_run(tracer=tracer)
        shrinks = tracer.events("CandidateSetShrunk")
        assert shrinks, "expected at least one CandidateSetShrunk event"
        for event in shrinks:
            assert event.candidates_after <= event.candidates_before
        counts = [shrinks[0].candidates_before] + [
            e.candidates_after for e in shrinks
        ]
        assert counts == sorted(counts, reverse=True)

    def test_run_lifecycle_events_match_result(self):
        tracer = RecordingTracer()
        result = _oracle_run(tracer=tracer)
        (started,) = tracer.events("RunStarted")
        (finished,) = tracer.events("RunFinished")
        assert started.n_elements == 40
        assert started.engine == "MaxEngine"
        assert finished.winner == result.winner
        assert finished.rounds_run == result.rounds_run
        assert finished.total_questions == result.total_questions
        assert finished.total_latency == pytest.approx(result.total_latency)
        assert finished.singleton == result.singleton_termination

    def test_sim_clock_accumulates_round_latencies(self):
        tracer = RecordingTracer()
        result = _oracle_run(tracer=tracer)
        received = [
            r for r in tracer.records if r.event.kind == "AnswersReceived"
        ]
        cumulative = 0.0
        for record in received:
            cumulative += record.event.latency
            assert record.sim_time == pytest.approx(cumulative)
        assert cumulative == pytest.approx(result.total_latency)

    def test_ambient_tracer_is_picked_up(self):
        tracer = RecordingTracer()
        with use_tracer(tracer):
            result = _oracle_run()  # no explicit tracer argument
        assert len(tracer.events("RoundPosted")) == result.rounds_run


class TestAllocatorInstrumentation:
    def test_frontier_solver_emits_dp_table_built(self):
        tracer = RecordingTracer()
        with use_tracer(tracer):
            plan = solve_min_latency(50, 200, LATENCY)
        (event,) = tracer.events("DPTableBuilt")
        assert event.solver == "frontier"
        assert event.n_elements == 50
        assert event.budget == 200
        assert event.states == sum(plan.frontier_sizes)
        assert event.seconds >= 0.0

    def test_memo_solver_emits_dp_table_built_and_counts_hits(self):
        registry = get_registry()
        registry.reset()
        tracer = RecordingTracer()
        with use_tracer(tracer):
            plan = solve_min_latency_memo(30, 120, LATENCY)
        (event,) = tracer.events("DPTableBuilt")
        assert event.solver == "memo"
        assert event.states == plan.states_visited
        snapshot = registry.snapshot()
        assert snapshot["tdp_memo.memo_misses"]["value"] > 0
        assert snapshot["tdp_memo.memo_hits"]["value"] > 0
        assert snapshot["tdp_memo.states_visited"]["value"] == plan.states_visited

    def test_engine_metrics_accumulate(self):
        registry = get_registry()
        registry.reset()
        result = _oracle_run()
        snapshot = registry.snapshot()
        assert snapshot["engine.runs"]["value"] == 1
        assert snapshot["engine.rounds"]["value"] == result.rounds_run
        assert (
            snapshot["engine.questions_posted"]["value"] == result.total_questions
        )
        assert snapshot["engine.candidates_after"]["samples"] == [
            record.candidates_after for record in result.records
        ]


class TestCrowdInstrumentation:
    def _noisy_run(self, tracer):
        rng = np.random.default_rng(3)
        truth = GroundTruth.random(16, rng)
        platform = SimulatedPlatform(
            truth, rng, error_model=UniformError(0.35), tracer=tracer
        )
        rwl = ReliableWorkerLayer(platform, rng, repetition=3, tracer=tracer)
        allocation = TDPAllocator().allocate(16, 60, LATENCY)
        engine = MaxEngine(
            TournamentFormation(), PlatformAnswerSource(rwl), rng, tracer=tracer
        )
        return engine.run(truth, allocation)

    def test_platform_emits_worker_serviced(self):
        tracer = RecordingTracer()
        self._noisy_run(tracer)
        serviced = tracer.events("WorkerServiced")
        assert serviced
        for event in serviced:
            assert event.n_answers >= 1
            assert event.busy_time > 0.0

    def test_rwl_redundancy_metrics(self):
        registry = get_registry()
        registry.reset()
        self._noisy_run(RecordingTracer())
        snapshot = registry.snapshot()
        posted = snapshot["rwl.questions_posted"]["value"]
        distinct = snapshot["rwl.distinct_questions"]["value"]
        assert posted == 3 * distinct  # repetition overhead
        assert snapshot["platform.questions_posted"]["value"] == posted


class TestTracingIsNonInvasive:
    """Regression guard: instrumentation must not perturb outcomes."""

    def test_oracle_run_identical_with_tracer_off_and_on(self):
        baseline = _oracle_run(tracer=None)
        traced = _oracle_run(tracer=RecordingTracer())
        assert traced.winner == baseline.winner
        assert traced.singleton_termination == baseline.singleton_termination
        assert traced.rounds_run == baseline.rounds_run
        assert traced.total_questions == baseline.total_questions
        assert traced.total_latency == pytest.approx(baseline.total_latency)
        assert traced.records == baseline.records

    def test_noisy_platform_run_identical_with_tracer_off_and_on(self):
        crowd = TestCrowdInstrumentation()
        baseline = crowd._noisy_run(None)
        traced = crowd._noisy_run(RecordingTracer())
        assert traced.winner == baseline.winner
        assert traced.records == baseline.records
        assert traced.total_latency == pytest.approx(baseline.total_latency)


class TestCliObservability:
    def test_solve_trace_and_metrics(self, tmp_path, capsys):
        trace_path = tmp_path / "out.jsonl"
        assert (
            main(
                [
                    "solve",
                    "--elements",
                    "30",
                    "--budget",
                    "150",
                    "--trace",
                    str(trace_path),
                    "--metrics",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "metrics snapshot:" in out
        # Per-round candidate counts, RWL overhead and DP timing all appear.
        assert "engine.candidates_after" in out
        assert "rwl.questions_posted" in out
        assert "time.tdp.solve" in out
        records = read_jsonl(trace_path)
        rounds = [r for r in records if r.event.kind == "RoundPosted"]
        assert len(rounds) >= 1
        # At least one event per executed round plus run lifecycle events.
        assert len(records) > len(rounds)

    def test_default_path_prints_no_observability_output(self, capsys):
        assert main(["solve", "--elements", "20", "--budget", "60"]) == 0
        out = capsys.readouterr().out
        assert "metrics snapshot" not in out
        assert "trace event" not in out

    def test_experiment_metrics_flag(self, capsys):
        assert main(["experiment", "fig15", "--scale", "small", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "metrics snapshot:" in out
        assert "tdp.solver_calls" in out
        assert "time.fig15.tdp" in out

    def test_verbose_flag_logs_round_progress(self, tmp_path, capsys, caplog):
        import logging

        with caplog.at_level(logging.DEBUG, logger="repro"):
            assert main(["-v", "solve", "--elements", "12", "--budget", "40"]) == 0
        messages = [record.getMessage() for record in caplog.records]
        assert any("candidates" in message for message in messages)
