"""Tests for concrete tournament-graph construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.questions import tournament_questions, tournament_sizes
from repro.errors import InvalidParameterError
from repro.graphs.tournaments import form_tournaments, tournament_question_graph


class TestFormTournaments:
    def test_partition_is_exact(self, rng):
        groups = form_tournaments(list(range(24)), 5, rng)
        flattened = sorted(e for group in groups for e in group)
        assert flattened == list(range(24))

    def test_group_sizes_match_definition(self, rng):
        groups = form_tournaments(list(range(24)), 5, rng)
        assert sorted(len(g) for g in groups) == sorted(tournament_sizes(24, 5))

    def test_single_tournament(self, rng):
        groups = form_tournaments([3, 1, 4], 1, rng)
        assert len(groups) == 1
        assert sorted(groups[0]) == [1, 3, 4]

    def test_deterministic_under_seed(self):
        first = form_tournaments(list(range(30)), 4, np.random.default_rng(9))
        second = form_tournaments(list(range(30)), 4, np.random.default_rng(9))
        assert first == second

    def test_assignment_is_randomized(self):
        results = {
            tuple(
                tuple(g)
                for g in form_tournaments(
                    list(range(12)), 3, np.random.default_rng(seed)
                )
            )
            for seed in range(10)
        }
        assert len(results) > 1

    def test_empty_elements_rejected(self, rng):
        with pytest.raises(InvalidParameterError):
            form_tournaments([], 1, rng)

    @given(st.integers(1, 50), st.data())
    @settings(max_examples=30, deadline=None)
    def test_partition_properties(self, n, data):
        n_tournaments = data.draw(st.integers(1, n))
        rng = np.random.default_rng(0)
        groups = form_tournaments(list(range(n)), n_tournaments, rng)
        assert len(groups) == n_tournaments
        assert sum(len(g) for g in groups) == n


class TestQuestionGraph:
    def test_edge_count_matches_q(self, rng):
        for c_prev, c_next in [(20, 5), (24, 5), (7, 3), (10, 1)]:
            groups = form_tournaments(list(range(c_prev)), c_next, rng)
            questions = tournament_question_graph(groups)
            assert len(questions) == tournament_questions(c_prev, c_next)

    def test_questions_are_canonical_and_distinct(self, rng):
        groups = form_tournaments(list(range(15)), 4, rng)
        questions = tournament_question_graph(groups)
        assert all(a < b for a, b in questions)
        assert len(set(questions)) == len(questions)

    def test_questions_stay_inside_groups(self, rng):
        groups = form_tournaments(list(range(12)), 3, rng)
        group_of = {e: i for i, g in enumerate(groups) for e in g}
        for a, b in tournament_question_graph(groups):
            assert group_of[a] == group_of[b]
