"""Tests for the answer DAG (Section 4, Figure 7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InconsistentAnswersError, InvalidParameterError
from repro.graphs.answer_graph import AnswerGraph, undirected_question_graph
from repro.types import Answer


def fig7_graph() -> AnswerGraph:
    """The DAG of Figure 7(a): answers {a>b, c>b, d>c, d>a, d>b}."""
    a, b, c, d = 0, 1, 2, 3
    graph = AnswerGraph([a, b, c, d])
    graph.record_all(
        [
            Answer(winner=a, loser=b),
            Answer(winner=c, loser=b),
            Answer(winner=d, loser=c),
            Answer(winner=d, loser=a),
            Answer(winner=d, loser=b),
        ]
    )
    return graph


class TestConstruction:
    def test_needs_elements(self):
        with pytest.raises(InvalidParameterError):
            AnswerGraph([])

    def test_record_unknown_element_rejected(self):
        graph = AnswerGraph([0, 1])
        with pytest.raises(InvalidParameterError):
            graph.record(Answer(winner=0, loser=7))

    def test_duplicate_answer_is_idempotent(self):
        graph = AnswerGraph([0, 1])
        graph.record(Answer(winner=0, loser=1))
        graph.record(Answer(winner=0, loser=1))
        assert graph.n_answers == 1

    def test_contradicting_answer_rejected(self):
        graph = AnswerGraph([0, 1])
        graph.record(Answer(winner=0, loser=1))
        with pytest.raises(InconsistentAnswersError):
            graph.record(Answer(winner=1, loser=0))


class TestRemainingCandidates:
    def test_fig7_rc_is_the_max(self):
        """In Figure 7(a) element d never lost: RC = {d} and d is the MAX."""
        assert fig7_graph().remaining_candidates() == {3}

    def test_no_answers_means_everyone_remains(self):
        graph = AnswerGraph(range(5))
        assert graph.remaining_candidates() == set(range(5))

    def test_losing_once_eliminates(self):
        graph = AnswerGraph(range(3))
        graph.record(Answer(winner=0, loser=2))
        assert graph.remaining_candidates() == {0, 1}


class TestQueries:
    def test_direct_result(self):
        graph = fig7_graph()
        assert graph.direct_result(0, 1) == 0
        assert graph.direct_result(1, 0) == 0
        assert graph.direct_result(0, 2) is None

    def test_winners_and_losers(self):
        graph = fig7_graph()
        assert graph.winners_over(1) == frozenset({0, 2, 3})
        assert graph.losers_to(3) == frozenset({0, 1, 2})

    def test_answered_questions_are_canonical(self):
        questions = fig7_graph().answered_questions()
        assert all(a < b for a, b in questions)
        assert len(questions) == 5

    def test_iter_answers_round_trips(self):
        graph = fig7_graph()
        clone = AnswerGraph(graph.elements)
        clone.record_all(graph.iter_answers())
        assert clone.answered_questions() == graph.answered_questions()


class TestTopology:
    def test_topological_order_losers_first(self):
        order = fig7_graph().topological_order()
        position = {element: i for i, element in enumerate(order)}
        # b lost to everyone it met; d beat everyone: b before d.
        assert position[1] < position[3]

    def test_cycle_detection(self):
        graph = AnswerGraph(range(3))
        graph.record(Answer(winner=0, loser=1))
        graph.record(Answer(winner=1, loser=2))
        graph.record(Answer(winner=2, loser=0))
        with pytest.raises(InconsistentAnswersError):
            graph.validate_acyclic()

    def test_transitive_wins_fig17(self):
        """Figure 17 commentary: element e 'has won over three elements;
        implicitly or explicitly'."""
        a, b, c, d, e = range(5)
        graph = AnswerGraph(range(5))
        # Figure 17(a): a lost to c and d; b lost to d; d lost to e.
        graph.record_all(
            [
                Answer(winner=c, loser=a),
                Answer(winner=d, loser=a),
                Answer(winner=d, loser=b),
                Answer(winner=e, loser=d),
            ]
        )
        wins = graph.transitive_wins()
        assert wins[e] == 3  # d explicitly; a, b implicitly
        assert wins[d] == 2
        assert wins[c] == 1
        assert wins[a] == wins[b] == 0

    @given(st.integers(2, 12), st.data())
    @settings(max_examples=30, deadline=None)
    def test_transitive_wins_matches_reachability(self, n, data):
        """wins(v) equals the number of elements reachable from v through
        the 'beat' relation, for random orderly DAGs."""
        rank = list(range(n))
        edges = data.draw(
            st.sets(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                    lambda t: t[0] < t[1]
                ),
                max_size=n * 2,
            )
        )
        graph = AnswerGraph(range(n))
        for low, high in edges:
            # Orient by rank so the graph is a DAG by construction.
            graph.record(Answer(winner=rank[low], loser=rank[high]))
        wins = graph.transitive_wins()

        def reachable(start):
            seen = set()
            stack = [start]
            while stack:
                node = stack.pop()
                for loser in graph.losers_to(node):
                    if loser not in seen:
                        seen.add(loser)
                        stack.append(loser)
            return seen

        for element in range(n):
            assert wins[element] == len(reachable(element))


class TestRestriction:
    def test_restricted_to_keeps_internal_answers(self):
        graph = fig7_graph()
        sub = graph.restricted_to([0, 1, 2])
        assert sub.answered_questions() == {(0, 1), (1, 2)}

    def test_restricted_to_unknown_elements(self):
        with pytest.raises(InvalidParameterError):
            fig7_graph().restricted_to([0, 99])


class TestUndirectedHelper:
    def test_normalizes_and_dedupes(self):
        nodes, edges = undirected_question_graph([2, 0, 1], [(1, 0), (0, 1), (2, 1)])
        assert nodes == [0, 1, 2]
        assert edges == [(0, 1), (1, 2)]

    def test_rejects_foreign_elements(self):
        with pytest.raises(InvalidParameterError):
            undirected_question_graph([0, 1], [(0, 5)])
