"""Tests for maxRC / maxIND and expected-RC computations (Section 4, App A)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.questions import tournament_questions
from repro.errors import InvalidParameterError
from repro.graphs.answer_graph import AnswerGraph
from repro.graphs.candidates import (
    degree_sequence,
    expected_remaining_candidates,
    max_independent_set,
    max_remaining_candidates,
    worst_case_answers,
)
from repro.graphs.tournaments import tournament_question_graph


def random_graph(n, data):
    edges = data.draw(
        st.sets(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda t: t[0] < t[1]
            ),
            max_size=n * (n - 1) // 2,
        )
    )
    return list(range(n)), sorted(edges)


def brute_force_mis_size(nodes, edges) -> int:
    adjacency = {v: set() for v in nodes}
    for a, b in edges:
        adjacency[a].add(b)
        adjacency[b].add(a)
    best = 0
    for r in range(len(nodes), 0, -1):
        for subset in itertools.combinations(nodes, r):
            subset_set = set(subset)
            if all(not (adjacency[v] & subset_set) for v in subset):
                return r
    return best


def brute_force_max_rc_size(nodes, edges) -> int:
    """maxRC by enumerating every permutation-induced orientation."""
    best = 0
    for order in itertools.permutations(nodes):
        rank = {v: i for i, v in enumerate(order)}
        losers = {a if rank[a] > rank[b] else b for a, b in edges}
        best = max(best, len(nodes) - len(losers))
    return best


class TestMaxIndependentSet:
    def test_square_graph_fig8(self):
        """Figure 8: the 4-cycle a-b-c-d has maxRC = 2 ({a,c} or {b,d})."""
        nodes = [0, 1, 2, 3]
        edges = [(0, 1), (1, 2), (2, 3), (0, 3)]
        mis = max_independent_set(nodes, edges)
        assert len(mis) == 2
        assert mis in ({0, 2}, {1, 3})

    def test_fig7_undirected(self):
        """Figure 7(b): maxIND of the square-with-diagonal is {a, c}."""
        nodes = [0, 1, 2, 3]  # a, b, c, d
        edges = [(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)]
        assert max_independent_set(nodes, edges) == {0, 2}

    def test_empty_graph_everyone_independent(self):
        assert max_independent_set(range(6), []) == set(range(6))

    def test_clique_has_singleton_mis(self):
        nodes = list(range(5))
        edges = [(a, b) for a in nodes for b in nodes if a < b]
        assert len(max_independent_set(nodes, edges)) == 1

    def test_tournament_graph_mis_is_tournament_count(self):
        """A tournament graph G_T(c_prev, c_next) has maxIND = c_next (one
        element per clique) — the fact behind Theorem 3."""
        groups = [[0, 1, 2], [3, 4, 5], [6, 7]]
        edges = tournament_question_graph(groups)
        assert len(max_independent_set(range(8), edges)) == 3

    @given(st.integers(1, 8), st.data())
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force(self, n, data):
        nodes, edges = random_graph(n, data)
        mis = max_independent_set(nodes, edges)
        # Independence:
        edge_set = set(edges)
        assert all(
            (a, b) not in edge_set
            for a in mis
            for b in mis
            if a < b
        )
        # Maximality:
        assert len(mis) == brute_force_mis_size(nodes, edges)

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            max_independent_set([], [])
        with pytest.raises(InvalidParameterError):
            max_independent_set([0, 1], [(0, 5)])
        with pytest.raises(InvalidParameterError):
            max_independent_set([0, 1], [(0, 0)])


class TestTheorem2:
    """maxRC (over answer orientations) equals maxIND."""

    @given(st.integers(1, 6), st.data())
    @settings(max_examples=30, deadline=None)
    def test_max_rc_equals_max_ind(self, n, data):
        nodes, edges = random_graph(n, data)
        assert len(max_remaining_candidates(nodes, edges)) == (
            brute_force_max_rc_size(nodes, edges)
        )


class TestTheorem3:
    """Any graph with maxIND = c_next has at least Q(c_prev, c_next) edges."""

    @given(st.integers(1, 7), st.data())
    @settings(max_examples=30, deadline=None)
    def test_edge_lower_bound(self, n, data):
        nodes, edges = random_graph(n, data)
        independence = len(max_independent_set(nodes, edges))
        assert len(edges) >= tournament_questions(n, independence)


class TestWorstCaseAnswers:
    def test_surviving_set_survives(self):
        nodes = [0, 1, 2, 3]
        edges = [(0, 1), (1, 2), (2, 3), (0, 3)]
        answers = worst_case_answers(nodes, edges, surviving={0, 2})
        graph = AnswerGraph(nodes)
        graph.record_all(answers)
        graph.validate_acyclic()
        assert graph.remaining_candidates() >= {0, 2}

    def test_every_question_is_answered(self):
        nodes = [0, 1, 2, 3, 4]
        edges = [(0, 1), (1, 2), (2, 3), (3, 4)]
        answers = worst_case_answers(nodes, edges, surviving={0, 2, 4})
        assert len(answers) == len(edges)

    def test_dependent_set_rejected(self):
        with pytest.raises(InvalidParameterError):
            worst_case_answers([0, 1, 2], [(0, 1)], surviving={0, 1})

    @given(st.integers(2, 7), st.data())
    @settings(max_examples=25, deadline=None)
    def test_worst_case_realizes_max_rc(self, n, data):
        """Lemma 2 constructively: the maxIND set is an RC set of some
        orientation."""
        nodes, edges = random_graph(n, data)
        mis = max_independent_set(nodes, edges)
        answers = worst_case_answers(nodes, edges, surviving=mis)
        graph = AnswerGraph(nodes)
        graph.record_all(answers)
        graph.validate_acyclic()
        survivors = graph.remaining_candidates()
        assert mis <= survivors
        # Isolated vertices always survive, so equality holds on the nodes
        # that have at least one question.
        questioned = {v for edge in edges for v in edge}
        assert survivors & questioned == mis & questioned


class TestExpectedRemainingCandidates:
    def test_paper_fig16_example(self):
        """Figure 16: the path a-b-c has E[R] = 4/3."""
        assert expected_remaining_candidates(
            [0, 1, 2], [(0, 1), (1, 2)]
        ) == pytest.approx(4 / 3)

    def test_no_questions(self):
        assert expected_remaining_candidates(range(4), []) == 4

    def test_clique(self):
        """A clique keeps exactly one element in expectation... and in fact
        always: sum 1/(d+1) = n * 1/n = 1."""
        nodes = list(range(6))
        edges = [(a, b) for a in nodes for b in nodes if a < b]
        assert expected_remaining_candidates(nodes, edges) == pytest.approx(1.0)

    def test_degree_sequence(self):
        assert degree_sequence([0, 1, 2], [(0, 1), (1, 2)]) == (2, 1, 1)
