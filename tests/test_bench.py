"""Tests for benchmark regression artifacts (``repro.bench``)."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    combine_times,
    compare_times,
    load_bench_times,
    make_artifact,
    write_artifact,
)
from repro.errors import InvalidParameterError


class TestArtifacts:
    def test_make_and_write(self, tmp_path):
        artifact = make_artifact("bench_solve", 1.25, scale="smoke")
        assert artifact["kind"] == "bench_artifact"
        assert artifact["schema"] == BENCH_SCHEMA_VERSION
        path = write_artifact(artifact, tmp_path / "artifacts")
        assert path.name == "BENCH_bench_solve.json"
        on_disk = json.loads(path.read_text(encoding="utf-8"))
        assert on_disk == artifact

    def test_rejects_negative_seconds(self):
        with pytest.raises(InvalidParameterError):
            make_artifact("b", -0.1, scale="smoke")

    def test_compact_metrics_ride_along(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.histogram("lat").observe(2.0)
        artifact = make_artifact(
            "b", 1.0, scale="smoke", metrics=registry.snapshot()
        )
        assert artifact["metrics"]["lat"]["count"] == 1
        assert "samples" not in artifact["metrics"]["lat"]  # compacted


class TestLoadBenchTimes:
    def test_loads_a_directory_of_artifacts(self, tmp_path):
        write_artifact(make_artifact("a", 1.0, scale="smoke"), tmp_path)
        write_artifact(make_artifact("b", 2.0, scale="smoke"), tmp_path)
        assert load_bench_times(tmp_path) == {"a": 1.0, "b": 2.0}

    def test_loads_a_single_artifact(self, tmp_path):
        path = write_artifact(make_artifact("a", 1.5, scale="smoke"), tmp_path)
        assert load_bench_times(path) == {"a": 1.5}

    def test_loads_a_combined_baseline(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(combine_times({"a": 1.0})), encoding="utf-8"
        )
        assert load_bench_times(path) == {"a": 1.0}

    def test_rejects_unrecognized_files(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"kind": "other"}', encoding="utf-8")
        with pytest.raises(InvalidParameterError):
            load_bench_times(path)


class TestCompareTimes:
    def test_threshold_boundary(self):
        # 25% over baseline is the default tolerance: exactly at the
        # boundary passes, just beyond fails.
        assert compare_times({"b": 1.0}, {"b": 1.25}).ok
        assert not compare_times({"b": 1.0}, {"b": 1.26}).ok

    def test_speedups_pass(self):
        assert compare_times({"b": 1.0}, {"b": 0.1}).ok

    def test_render_names_the_regressed_bench(self):
        comparison = compare_times({"b": 1.0}, {"b": 3.0})
        text = comparison.render()
        assert "b" in text
        assert "FAIL" in text
        assert "3.00" in text
