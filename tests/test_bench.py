"""Tests for benchmark regression artifacts (``repro.bench``)."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    append_history,
    combine_times,
    compare_times,
    filter_times,
    load_bench_times,
    load_history,
    make_artifact,
    make_history_entry,
    render_history,
    write_artifact,
)
from repro.errors import InvalidParameterError


class TestArtifacts:
    def test_make_and_write(self, tmp_path):
        artifact = make_artifact("bench_solve", 1.25, scale="smoke")
        assert artifact["kind"] == "bench_artifact"
        assert artifact["schema"] == BENCH_SCHEMA_VERSION
        path = write_artifact(artifact, tmp_path / "artifacts")
        assert path.name == "BENCH_bench_solve.json"
        on_disk = json.loads(path.read_text(encoding="utf-8"))
        assert on_disk == artifact

    def test_rejects_negative_seconds(self):
        with pytest.raises(InvalidParameterError):
            make_artifact("b", -0.1, scale="smoke")

    def test_compact_metrics_ride_along(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.histogram("lat").observe(2.0)
        artifact = make_artifact(
            "b", 1.0, scale="smoke", metrics=registry.snapshot()
        )
        assert artifact["metrics"]["lat"]["count"] == 1
        assert "samples" not in artifact["metrics"]["lat"]  # compacted


class TestLoadBenchTimes:
    def test_loads_a_directory_of_artifacts(self, tmp_path):
        write_artifact(make_artifact("a", 1.0, scale="smoke"), tmp_path)
        write_artifact(make_artifact("b", 2.0, scale="smoke"), tmp_path)
        assert load_bench_times(tmp_path) == {"a": 1.0, "b": 2.0}

    def test_loads_a_single_artifact(self, tmp_path):
        path = write_artifact(make_artifact("a", 1.5, scale="smoke"), tmp_path)
        assert load_bench_times(path) == {"a": 1.5}

    def test_loads_a_combined_baseline(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(combine_times({"a": 1.0})), encoding="utf-8"
        )
        assert load_bench_times(path) == {"a": 1.0}

    def test_rejects_unrecognized_files(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"kind": "other"}', encoding="utf-8")
        with pytest.raises(InvalidParameterError):
            load_bench_times(path)


class TestCompareTimes:
    def test_threshold_boundary(self):
        # 25% over baseline is the default tolerance: exactly at the
        # boundary passes, just beyond fails.
        assert compare_times({"b": 1.0}, {"b": 1.25}).ok
        assert not compare_times({"b": 1.0}, {"b": 1.26}).ok

    def test_speedups_pass(self):
        assert compare_times({"b": 1.0}, {"b": 0.1}).ok

    def test_render_names_the_regressed_bench(self):
        comparison = compare_times({"b": 1.0}, {"b": 3.0})
        text = comparison.render()
        assert "b" in text
        assert "FAIL" in text
        assert "3.00" in text


class TestFilterTimes:
    def test_empty_patterns_keep_everything(self):
        times = {"bench_a": 1.0, "bench_b": 2.0}
        assert filter_times(times, []) == times

    def test_exact_and_glob_patterns(self):
        times = {"bench_solve": 1.0, "bench_render": 2.0, "other": 3.0}
        assert filter_times(times, ["bench_solve"]) == {"bench_solve": 1.0}
        assert filter_times(times, ["bench_*"]) == {
            "bench_solve": 1.0, "bench_render": 2.0,
        }

    def test_any_pattern_matching_keeps_the_bench(self):
        times = {"a": 1.0, "b": 2.0}
        assert filter_times(times, ["a", "nope"]) == {"a": 1.0}

    def test_no_match_yields_empty(self):
        assert filter_times({"a": 1.0}, ["zzz"]) == {}


class TestHistory:
    def test_make_history_entry_shape(self):
        entry = make_history_entry(
            {"bench_a": 1.5}, git_sha="abc123", timestamp="2026-08-08T00:00:00",
        )
        assert entry["kind"] == "bench_history"
        assert entry["schema"] == BENCH_SCHEMA_VERSION
        assert entry["git_sha"] == "abc123"
        assert entry["benches"] == {"bench_a": 1.5}

    def test_empty_times_rejected(self):
        with pytest.raises(InvalidParameterError):
            make_history_entry({})

    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "nested" / "history.jsonl"
        first = make_history_entry({"a": 1.0}, git_sha="s1")
        second = make_history_entry({"a": 1.1}, git_sha="s2")
        append_history(first, path)
        append_history(second, path)
        assert load_history(path) == [first, second]

    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []

    def test_load_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "history.jsonl"
        entry = make_history_entry({"a": 1.0})
        append_history(entry, path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write("{not json\n")
            handle.write('"a bare string"\n')
        assert load_history(path) == [entry]


class TestRenderHistory:
    def _entries(self, *times):
        return [make_history_entry({"bench_a": t}) for t in times]

    def test_empty_history_placeholder(self):
        assert render_history([]) == "bench history: (empty)"

    def test_header_counts_runs(self):
        text = render_history(self._entries(1.0, 1.1))
        assert "2 run(s)" in text

    def test_flags_regressions_against_baseline(self):
        text = render_history(
            self._entries(1.0, 3.0), baseline={"bench_a": 1.0},
        )
        assert "3.00x !" in text

    def test_within_threshold_is_not_flagged(self):
        text = render_history(
            self._entries(1.0, 1.1), baseline={"bench_a": 1.0},
        )
        assert "1.10x" in text
        assert "!" not in text

    def test_missing_baseline_entry_renders_dash(self):
        text = render_history(
            self._entries(1.0), baseline={"bench_other": 1.0},
        )
        assert "-" in text

    def test_limit_trims_the_sparkline_not_the_latest(self):
        entries = self._entries(*[float(i + 1) for i in range(30)])
        text = render_history(entries, limit=5)
        assert "30.000" in text
