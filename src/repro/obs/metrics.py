"""Process-wide metrics: counters, gauges and histograms.

A :class:`MetricsRegistry` is a named collection of instruments with
``snapshot()`` / ``reset()`` semantics.  Instruments are created lazily on
first access and are thread-safe (the simulated platform is single-threaded
today, but the ROADMAP's scaling direction — sharded/async execution — must
not invalidate the metrics layer).

The instrumented hot paths record into the process-wide default registry
(:func:`get_registry`) so that metrics work with zero setup; tests that
need isolation construct their own registry.  Recording is cheap — one
lock-guarded float update per call — and the hot paths only record
*aggregates* (e.g. one counter bump per DP solve, not per DP cell).

Histograms retain the first :data:`_HISTOGRAM_SAMPLE_CAP` raw samples and
additionally maintain fixed-boundary cumulative **buckets** over *every*
observation, so percentiles stay accurate (to within one bucket width) on
runs long enough to blow past the sample cap, and any snapshot can be
rendered in the OpenMetrics exposition format
(:mod:`repro.obs.openmetrics`).
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.stats import nearest_rank, percentile

#: Sample-retention cap per histogram; beyond it the running aggregates
#: (count/total/min/max) and the cumulative buckets keep updating, and
#: snapshots carry ``truncated: True``.
_HISTOGRAM_SAMPLE_CAP = 4096

Number = Union[int, float]

#: Default histogram bucket upper bounds (seconds).  A 1-2.5-5 geometric
#: ladder from a millisecond to a simulated fortnight: fine enough that
#: a bucket-estimated percentile stays within one bucket width of the
#: exact nearest-rank value, coarse enough that a snapshot stays small.
#: An implicit +Inf bucket always follows the last finite bound.
DEFAULT_BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    mantissa * 10.0**exponent
    for exponent in range(-3, 6)
    for mantissa in (1.0, 2.5, 5.0)
)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the OpenMetrics exposition grammar."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def labeled_name(base: str, labels: Dict[str, str]) -> str:
    """The canonical registry name of a labeled series.

    The registry itself is label-unaware — a labeled series is just an
    instrument whose name embeds a sorted, escaped OpenMetrics label set:
    ``labeled_name("service.latency_component", {"component": "retry"})``
    is ``service.latency_component{component="retry"}``.  The exposition
    renderer (:mod:`repro.obs.openmetrics`) splits the suffix back off,
    so the same instrument scrapes as a properly-labeled series.
    """
    if not labels:
        return base
    parts = ",".join(
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return f"{base}{{{parts}}}"


def bucket_percentile(
    bounds: Sequence[float],
    cumulative_counts: Sequence[int],
    count: int,
    p: float,
    minimum: Number,
    maximum: Number,
) -> float:
    """Estimate the nearest-rank *p*-th percentile from cumulative buckets.

    Returns the upper bound of the bucket containing the rank, clamped to
    the observed ``[minimum, maximum]`` range — so the estimate is off by
    at most one bucket width, and the +Inf bucket degrades to the exact
    observed maximum.
    """
    rank = nearest_rank(count, p)
    index = bisect.bisect_left(cumulative_counts, rank)
    if index >= len(bounds):  # the +Inf overflow bucket
        return float(maximum)
    return float(min(max(bounds[index], minimum), maximum))


def snapshot_percentile(state: Dict[str, Any], p: float) -> Optional[float]:
    """The *p*-th percentile of a histogram *snapshot* dict.

    Exact (nearest-rank over the retained samples) while the sample cap
    has not been reached; bucket-estimated once the snapshot is
    ``truncated``.  ``None`` for an empty histogram.
    """
    if state.get("type") != "histogram" or not state.get("count"):
        return None
    if not state.get("truncated"):
        return float(percentile(state["samples"], p))
    return bucket_percentile(
        state["bucket_bounds"],
        state["bucket_counts"],
        state["count"],
        p,
        state["min"],
        state["max"],
    )


class Counter:
    """A monotonically increasing count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease: {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Number:
        return self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self._value}

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A value that can go up and down; remembers only the latest."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value: Optional[Number] = None

    def set(self, value: Number) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: Number = 1) -> None:
        with self._lock:
            self._value = (self._value or 0) + amount

    def dec(self, amount: Number = 1) -> None:
        self.inc(-amount)

    @property
    def value(self) -> Optional[Number]:
        return self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self._value}

    def reset(self) -> None:
        with self._lock:
            self._value = None


class Histogram:
    """A stream of observations with running aggregates and fixed buckets.

    The first ``_HISTOGRAM_SAMPLE_CAP`` samples are retained in order (the
    per-round candidate counts of a run, say, stay individually visible in
    a snapshot); past the cap the aggregates *and* the fixed-boundary
    cumulative buckets keep updating, so :meth:`percentile` stays accurate
    to within one bucket width on arbitrarily long runs, and snapshots say
    so explicitly via their ``truncated`` flag.
    """

    def __init__(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> None:
        self.name = name
        self._lock = threading.Lock()
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKET_BOUNDS
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name} bucket bounds must be strictly "
                f"increasing: {bounds}"
            )
        self._bounds = bounds
        #: Per-bucket (non-cumulative) counts; the final slot is +Inf.
        self._bucket_counts = [0] * (len(bounds) + 1)
        self._samples: List[Number] = []
        self._count = 0
        self._total: float = 0.0
        self._min: Optional[Number] = None
        self._max: Optional[Number] = None

    def observe(self, value: Number) -> None:
        with self._lock:
            self._count += 1
            self._total += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            self._bucket_counts[bisect.bisect_left(self._bounds, value)] += 1
            if len(self._samples) < _HISTOGRAM_SAMPLE_CAP:
                self._samples.append(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> Optional[float]:
        return self._total / self._count if self._count else None

    def percentile(self, p: float) -> Optional[float]:
        """The nearest-rank *p*-th percentile of everything observed.

        Exact while every observation is still retained; bucket-estimated
        (within one bucket width) once the sample cap has been passed.
        ``None`` for an empty histogram.
        """
        with self._lock:
            if not self._count:
                return None
            if len(self._samples) == self._count:
                return float(percentile(self._samples, p))
            return bucket_percentile(
                self._bounds,
                self._cumulative_counts(),
                self._count,
                p,
                self._min,
                self._max,
            )

    def _cumulative_counts(self) -> List[int]:
        cumulative, running = [], 0
        for count in self._bucket_counts:
            running += count
            cumulative.append(running)
        return cumulative

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "type": "histogram",
                "count": self._count,
                "total": self._total,
                "min": self._min,
                "max": self._max,
                "mean": self.mean,
                "samples": list(self._samples),
                "truncated": self._count > len(self._samples),
                "bucket_bounds": list(self._bounds),
                "bucket_counts": self._cumulative_counts(),
            }

    def reset(self) -> None:
        with self._lock:
            self._samples = []
            self._count = 0
            self._total = 0.0
            self._min = None
            self._max = None
            self._bucket_counts = [0] * (len(self._bounds) + 1)


class MetricsRegistry:
    """A named, thread-safe collection of instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, Any] = {}

    def _get(self, name: str, factory: type) -> Any:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory(name)
                self._instruments[name] = instrument
            elif not isinstance(instrument, factory):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {factory.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        """Get or create a histogram.

        *buckets* applies only on first registration (the instrument's
        boundaries are fixed for its lifetime, as in Prometheus).
        """
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = Histogram(name, buckets=buckets)
                self._instruments[name] = instrument
            elif not isinstance(instrument, Histogram):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not Histogram"
                )
            return instrument

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Freeze every instrument's state into plain dicts."""
        with self._lock:
            instruments = dict(self._instruments)
        return {name: instruments[name].snapshot() for name in sorted(instruments)}

    def reset(self) -> None:
        """Zero every instrument (instruments stay registered)."""
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument.reset()


_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry the hot paths record into."""
    return _DEFAULT_REGISTRY


#: The instrument names the instrumented layers record, so a snapshot can
#: pre-register them and show zeros instead of omitting untouched layers
#: (an oracle run never exercises the RWL, but its overhead line should
#: still appear in ``--metrics`` output).
STANDARD_METRICS = (
    ("counter", "engine.runs"),
    ("counter", "engine.rounds"),
    ("counter", "engine.questions_posted"),
    ("counter", "engine.answers_resolved"),
    ("histogram", "engine.candidates_after"),
    ("counter", "rwl.batches"),
    ("counter", "rwl.distinct_questions"),
    ("counter", "rwl.questions_posted"),
    ("counter", "rwl.cycle_repairs"),
    ("counter", "rwl.majority_flips"),
    ("counter", "service.queries_admitted"),
    ("counter", "service.queries_completed"),
    ("counter", "service.queries_degraded"),
    ("counter", "service.queries_shed"),
    ("counter", "service.rounds"),
    ("counter", "service.questions_posted"),
    ("counter", "service.plan_cache.hits"),
    ("counter", "service.plan_cache.misses"),
    ("histogram", "service.query_latency"),
    ("histogram", "service.queue_wait"),
    ("histogram", "service.round_latency"),
    ("gauge", "service.queue_depth"),
    ("gauge", "service.active_queries"),
    ("gauge", "service.queue_wait_mean"),
    ("counter", "service.checkpoints"),
    ("counter", "service.recoveries"),
    ("counter", "circuit.opened"),
    ("counter", "circuit.closed"),
    ("counter", "circuit.deferred_rounds"),
    ("counter", "circuit.blocked_posts"),
    ("counter", "circuit.probes"),
    ("counter", "platform.batches_posted"),
    ("counter", "platform.questions_posted"),
    ("counter", "platform.workers_serviced"),
    ("counter", "tdp.solver_calls"),
    ("counter", "tdp.frontier_points"),
    ("histogram", "time.tdp.solve"),
    ("counter", "tdp_memo.solver_calls"),
    ("counter", "tdp_memo.states_visited"),
    ("counter", "tdp_memo.memo_hits"),
    ("counter", "tdp_memo.memo_misses"),
    ("histogram", "time.tdp_memo.solve"),
    # Solver profiling counters (repro.obs.profiling); published only
    # when a profiled() block ran, pre-declared so exports show zeros.
    ("counter", "solver.frontier.solves"),
    ("counter", "solver.frontier.rows"),
    ("counter", "solver.frontier.cells"),
    ("counter", "solver.frontier.candidates"),
    ("counter", "solver.frontier.points"),
    ("counter", "solver.memo.solves"),
    ("counter", "solver.memo.hits"),
    ("counter", "solver.memo.misses"),
    ("counter", "solver.plan_cache.hits"),
    ("counter", "solver.plan_cache.misses"),
    ("counter", "solver.plan_cache.shape_hits"),
    # Deadline enforcement, hedged posting and brownout (repro.service
    # .deadline / the router); pre-declared so exports show zeros.
    ("counter", "deadline.met"),
    ("counter", "deadline.degraded"),
    ("counter", "deadline.shed"),
    ("counter", "deadline.exceeded"),
    ("counter", "deadline.replans"),
    ("counter", "hedge.posts"),
    ("counter", "hedge.wins"),
    ("counter", "hedge.waste"),
    ("counter", "brownout.transitions"),
    ("gauge", "brownout.state"),
    ("counter", "alerts.fired"),
    ("counter", "alerts.resolved"),
    ("gauge", "alerts.active"),
) + tuple(
    # Per-component latency attribution histograms — one labeled series
    # per component; must mirror repro.obs.attribution.COMPONENTS (the
    # obs test suite asserts the two stay in sync).
    ("histogram", labeled_name("service.latency_component", {"component": c}))
    for c in (
        "queue_wait", "round_post", "retry", "defer", "outage", "stall",
        "hedge",
    )
)


def declare_standard_metrics(registry: Optional[MetricsRegistry] = None) -> None:
    """Pre-register the standard instruments on *registry* (default: global)."""
    registry = registry if registry is not None else get_registry()
    for instrument_type, name in STANDARD_METRICS:
        getattr(registry, instrument_type)(name)


def render_snapshot(snapshot: Dict[str, Dict[str, Any]]) -> str:
    """Format a registry snapshot as an aligned human-readable block."""
    if not snapshot:
        return "(no metrics recorded)"
    width = max(len(name) for name in snapshot)
    lines = []
    for name, state in snapshot.items():
        if state["type"] == "histogram":
            if state["count"]:
                detail = (
                    f"count={state['count']} mean={state['mean']:.4g} "
                    f"min={state['min']:.4g} max={state['max']:.4g}"
                )
                p50 = snapshot_percentile(state, 50)
                p95 = snapshot_percentile(state, 95)
                if p50 is not None and p95 is not None:
                    detail += f" p50={p50:.4g} p95={p95:.4g}"
                samples = state["samples"]
                if samples and len(samples) <= 16:
                    rendered = ", ".join(f"{s:.4g}" for s in samples)
                    detail += f" [{rendered}]"
                if state.get("truncated"):
                    detail += (
                        f" (truncated: first {len(samples)} samples kept, "
                        f"percentiles bucket-estimated)"
                    )
            else:
                detail = "count=0"
            lines.append(f"{name:<{width}}  {detail}")
        else:
            value = state["value"]
            rendered = "-" if value is None else f"{value:g}"
            lines.append(f"{name:<{width}}  {rendered}")
    return "\n".join(lines)
