"""Process-wide metrics: counters, gauges and histograms.

A :class:`MetricsRegistry` is a named collection of instruments with
``snapshot()`` / ``reset()`` semantics.  Instruments are created lazily on
first access and are thread-safe (the simulated platform is single-threaded
today, but the ROADMAP's scaling direction — sharded/async execution — must
not invalidate the metrics layer).

The instrumented hot paths record into the process-wide default registry
(:func:`get_registry`) so that metrics work with zero setup; tests that
need isolation construct their own registry.  Recording is cheap — one
lock-guarded float update per call — and the hot paths only record
*aggregates* (e.g. one counter bump per DP solve, not per DP cell).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Union

#: Sample-retention cap per histogram; beyond it only the running
#: aggregates (count/total/min/max) keep updating.
_HISTOGRAM_SAMPLE_CAP = 4096

Number = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease: {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Number:
        return self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self._value}

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A value that can go up and down; remembers only the latest."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value: Optional[Number] = None

    def set(self, value: Number) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: Number = 1) -> None:
        with self._lock:
            self._value = (self._value or 0) + amount

    def dec(self, amount: Number = 1) -> None:
        self.inc(-amount)

    @property
    def value(self) -> Optional[Number]:
        return self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self._value}

    def reset(self) -> None:
        with self._lock:
            self._value = None


class Histogram:
    """A stream of observations with running aggregates.

    The first ``_HISTOGRAM_SAMPLE_CAP`` samples are retained in order (the
    per-round candidate counts of a run, say, stay individually visible in
    a snapshot); past the cap only the aggregates keep updating.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._samples: List[Number] = []
        self._count = 0
        self._total: float = 0.0
        self._min: Optional[Number] = None
        self._max: Optional[Number] = None

    def observe(self, value: Number) -> None:
        with self._lock:
            self._count += 1
            self._total += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            if len(self._samples) < _HISTOGRAM_SAMPLE_CAP:
                self._samples.append(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> Optional[float]:
        return self._total / self._count if self._count else None

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "type": "histogram",
                "count": self._count,
                "total": self._total,
                "min": self._min,
                "max": self._max,
                "mean": self.mean,
                "samples": list(self._samples),
            }

    def reset(self) -> None:
        with self._lock:
            self._samples = []
            self._count = 0
            self._total = 0.0
            self._min = None
            self._max = None


class MetricsRegistry:
    """A named, thread-safe collection of instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, Any] = {}

    def _get(self, name: str, factory: type) -> Any:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory(name)
                self._instruments[name] = instrument
            elif not isinstance(instrument, factory):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {factory.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Freeze every instrument's state into plain dicts."""
        with self._lock:
            instruments = dict(self._instruments)
        return {name: instruments[name].snapshot() for name in sorted(instruments)}

    def reset(self) -> None:
        """Zero every instrument (instruments stay registered)."""
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument.reset()


_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry the hot paths record into."""
    return _DEFAULT_REGISTRY


#: The instrument names the instrumented layers record, so a snapshot can
#: pre-register them and show zeros instead of omitting untouched layers
#: (an oracle run never exercises the RWL, but its overhead line should
#: still appear in ``--metrics`` output).
STANDARD_METRICS = (
    ("counter", "engine.runs"),
    ("counter", "engine.rounds"),
    ("counter", "engine.questions_posted"),
    ("counter", "engine.answers_resolved"),
    ("histogram", "engine.candidates_after"),
    ("counter", "rwl.batches"),
    ("counter", "rwl.distinct_questions"),
    ("counter", "rwl.questions_posted"),
    ("counter", "rwl.cycle_repairs"),
    ("counter", "rwl.majority_flips"),
    ("counter", "service.queries_admitted"),
    ("counter", "service.queries_completed"),
    ("counter", "service.queries_degraded"),
    ("counter", "service.queries_shed"),
    ("counter", "service.rounds"),
    ("counter", "service.questions_posted"),
    ("counter", "service.plan_cache.hits"),
    ("counter", "service.plan_cache.misses"),
    ("histogram", "service.query_latency"),
    ("histogram", "service.queue_wait"),
    ("counter", "service.checkpoints"),
    ("counter", "service.recoveries"),
    ("counter", "circuit.opened"),
    ("counter", "circuit.closed"),
    ("counter", "circuit.deferred_rounds"),
    ("counter", "circuit.blocked_posts"),
    ("counter", "circuit.probes"),
    ("counter", "platform.batches_posted"),
    ("counter", "platform.questions_posted"),
    ("counter", "platform.workers_serviced"),
    ("counter", "tdp.solver_calls"),
    ("counter", "tdp.frontier_points"),
    ("histogram", "time.tdp.solve"),
    ("counter", "tdp_memo.solver_calls"),
    ("counter", "tdp_memo.states_visited"),
    ("counter", "tdp_memo.memo_hits"),
    ("counter", "tdp_memo.memo_misses"),
    ("histogram", "time.tdp_memo.solve"),
)


def declare_standard_metrics(registry: Optional[MetricsRegistry] = None) -> None:
    """Pre-register the standard instruments on *registry* (default: global)."""
    registry = registry if registry is not None else get_registry()
    for instrument_type, name in STANDARD_METRICS:
        getattr(registry, instrument_type)(name)


def render_snapshot(snapshot: Dict[str, Dict[str, Any]]) -> str:
    """Format a registry snapshot as an aligned human-readable block."""
    if not snapshot:
        return "(no metrics recorded)"
    width = max(len(name) for name in snapshot)
    lines = []
    for name, state in snapshot.items():
        if state["type"] == "histogram":
            if state["count"]:
                detail = (
                    f"count={state['count']} mean={state['mean']:.4g} "
                    f"min={state['min']:.4g} max={state['max']:.4g}"
                )
                samples = state["samples"]
                if samples and len(samples) <= 16:
                    rendered = ", ".join(f"{s:.4g}" for s in samples)
                    detail += f" [{rendered}]"
            else:
                detail = "count=0"
            lines.append(f"{name:<{width}}  {detail}")
        else:
            value = state["value"]
            rendered = "-" if value is None else f"{value:g}"
            lines.append(f"{name:<{width}}  {rendered}")
    return "\n".join(lines)
