"""OpenMetrics / Prometheus text exposition of a metrics snapshot.

:func:`render_openmetrics` turns any
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` into the text
exposition format scraped by Prometheus and anything OpenMetrics-aware:

* counters become ``<name>_total``;
* gauges keep their name (unset gauges are omitted — the format has no
  null);
* histograms expose cumulative ``<name>_bucket{le="..."}`` series ending
  with the mandatory ``le="+Inf"`` bucket, plus ``<name>_sum`` and
  ``<name>_count``.

Instrument names are sanitized to the exposition grammar (dots and other
non-identifier characters become underscores): ``service.query_latency``
is scraped as ``service_query_latency``.

Labeled series are supported through the canonical embedded form produced
by :func:`repro.obs.metrics.labeled_name` — an instrument registered as
``service.latency_component{component="retry"}`` renders with its label
set intact (histogram buckets merge the labels with ``le``), while plain
names render exactly as before.

:func:`write_openmetrics` renders and writes atomically
(temp-file + rename, via :func:`repro.persistence.save_text`), which is
exactly what the Prometheus node-exporter *textfile collector* expects:
``tdp-repro serve --metrics-out FILE`` rewrites the file once per
scheduler tick and a scraper never observes a half-written exposition.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Any, Dict, List, Union

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str) -> str:
    """Sanitize an instrument name to the exposition grammar."""
    sanitized = _NAME_RE.sub("_", name)
    if not sanitized or not (sanitized[0].isalpha() or sanitized[0] in "_:"):
        sanitized = "_" + sanitized
    return sanitized


#: Canonical labeled instrument name: ``base{key="value",...}`` with the
#: label block already escaped by :func:`repro.obs.metrics.labeled_name`.
_LABELED_RE = re.compile(r"^(?P<base>[^{]+)\{(?P<labels>.+)\}$")


def split_labels(name: str) -> "tuple[str, str]":
    """Split a registry name into ``(base, label_block)``.

    The label block is the raw ``key="value",...`` text (``""`` for
    unlabeled names); values were escaped when the name was built, so
    the renderer re-emits the block verbatim.
    """
    match = _LABELED_RE.match(name)
    if match is None:
        return name, ""
    return match.group("base"), match.group("labels")


def _fmt(value: Any) -> str:
    """Format a sample value: integers bare, floats in shortest repr."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_openmetrics(snapshot: Dict[str, Dict[str, Any]]) -> str:
    """Render a registry snapshot in OpenMetrics text exposition format.

    The output ends with the ``# EOF`` terminator; metric families appear
    in sorted-name order so the rendering is deterministic (the golden
    test relies on that).
    """
    lines: List[str] = []
    typed: set = set()
    for name in sorted(snapshot):
        state = snapshot[name]
        base, labels = split_labels(name)
        flat = metric_name(base)
        suffix = f"{{{labels}}}" if labels else ""
        kind = state["type"]
        if kind == "counter":
            if flat not in typed:
                typed.add(flat)
                lines.append(f"# TYPE {flat} counter")
            lines.append(f"{flat}_total{suffix} {_fmt(state['value'])}")
        elif kind == "gauge":
            if state["value"] is None:
                continue  # unset gauge: nothing to expose
            if flat not in typed:
                typed.add(flat)
                lines.append(f"# TYPE {flat} gauge")
            lines.append(f"{flat}{suffix} {_fmt(state['value'])}")
        elif kind == "histogram":
            if flat not in typed:
                typed.add(flat)
                lines.append(f"# TYPE {flat} histogram")
            bounds = state.get("bucket_bounds", [])
            counts = state.get("bucket_counts", [])
            merged = f"{labels}," if labels else ""
            for bound, cumulative in zip(bounds, counts):
                lines.append(
                    f'{flat}_bucket{{{merged}le="{_fmt(bound)}"}}'
                    f" {_fmt(cumulative)}"
                )
            lines.append(
                f'{flat}_bucket{{{merged}le="+Inf"}} {_fmt(state["count"])}'
            )
            lines.append(f"{flat}_sum{suffix} {_fmt(state['total'])}")
            lines.append(f"{flat}_count{suffix} {_fmt(state['count'])}")
        else:
            raise ValueError(f"unknown instrument type {kind!r} for {name!r}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(
    snapshot: Dict[str, Dict[str, Any]], path: Union[str, Path]
) -> None:
    """Atomically write a snapshot's exposition to *path*.

    Temp-file + rename in the target directory: a concurrent scraper (or
    a crash mid-write) sees either the previous complete exposition or
    the new one, never a torn file.
    """
    from repro.persistence import save_text

    save_text(render_openmetrics(snapshot), path)
