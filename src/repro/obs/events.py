"""Typed trace events emitted by the instrumented layers.

Every event is a small frozen dataclass carrying *what happened*; *when*
it happened lives in the :class:`TraceRecord` the tracer wraps around it
(monotonic wall-clock seconds since the tracer started, plus the simulated
platform clock when the emitter knows it).  Keeping the payload and the
timestamps separate means emitters never touch a clock — the tracer owns
time — and a ``NullTracer`` run constructs nothing at all.

The taxonomy follows the layers of the system:

* engine — :class:`RunStarted`, :class:`RoundPosted`,
  :class:`AnswersReceived`, :class:`CandidateSetShrunk`,
  :class:`RunFinished`;
* multi-query service — :class:`QueryAdmitted`, :class:`QueryScheduled`,
  :class:`QueryCompleted`, :class:`QueryShed`;
* deadlines / overload — :class:`DeadlineExceeded`, :class:`RoundHedged`,
  :class:`BrownoutStateChanged`;
* SLO engine — :class:`AlertFired`, :class:`AlertResolved`;
* durability — :class:`CheckpointWritten`, :class:`RecoveryCompleted`,
  :class:`CircuitOpened`, :class:`CircuitClosed`;
* reliable worker layer — :class:`RWLRetry`, :class:`BatchRetried`;
* simulated platform — :class:`WorkerServiced`, :class:`FaultInjected`;
* allocators — :class:`DPTableBuilt`;
* profiling — :class:`SpanCompleted` (emitted by :func:`repro.obs.timed`);
* causal spans — :class:`SpanOpened` / :class:`SpanClosed` (see
  :mod:`repro.obs.spans`).

Events round-trip through plain dicts (:meth:`TraceEvent.to_dict` /
:func:`event_from_dict`) so traces can be exported to JSONL and read back
without loss.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Optional, Tuple, Type

#: Registry of event kinds, populated by ``TraceEvent.__init_subclass__``.
EVENT_KINDS: Dict[str, Type["TraceEvent"]] = {}


@dataclass(frozen=True)
class TraceEvent:
    """Base class of all trace events.

    Subclasses set the class attribute ``kind`` (the stable wire name used
    in JSONL exports) and add their payload fields.
    """

    kind: ClassVar[str] = "TraceEvent"

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        EVENT_KINDS[cls.kind] = cls

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the payload to a plain dict (no timestamps)."""
        return dataclasses.asdict(self)


def event_from_dict(kind: str, data: Dict[str, Any]) -> TraceEvent:
    """Reconstruct a typed event from its wire form.

    Unknown kinds raise ``KeyError`` — a trace written by a newer version
    should fail loudly rather than silently dropping events.
    """
    cls = EVENT_KINDS[kind]
    return cls(**data)


# ----------------------------------------------------------------------
# Engine events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunStarted(TraceEvent):
    """A MAX run began.

    Attributes:
        n_elements: collection size ``c_0``.
        budget: total question budget (planned rounds summed for a static
            allocation; the raw budget for the adaptive engine).
        rounds_planned: rounds in the driving allocation (0 = adaptive).
        engine: engine class name (``MaxEngine``/``AdaptiveMaxEngine``).
    """

    kind: ClassVar[str] = "RunStarted"
    n_elements: int
    budget: int
    rounds_planned: int
    engine: str


@dataclass(frozen=True)
class RoundPosted(TraceEvent):
    """One round's questions were handed to the answer source."""

    kind: ClassVar[str] = "RoundPosted"
    round_index: int
    budget: int
    questions_posted: int
    candidates_before: int


@dataclass(frozen=True)
class AnswersReceived(TraceEvent):
    """The answer source resolved one round's questions."""

    kind: ClassVar[str] = "AnswersReceived"
    round_index: int
    n_answers: int
    latency: float


@dataclass(frozen=True)
class CandidateSetShrunk(TraceEvent):
    """The surviving-candidate set was recomputed after a round."""

    kind: ClassVar[str] = "CandidateSetShrunk"
    round_index: int
    candidates_before: int
    candidates_after: int


@dataclass(frozen=True)
class RunFinished(TraceEvent):
    """A MAX run terminated."""

    kind: ClassVar[str] = "RunFinished"
    winner: int
    rounds_run: int
    total_questions: int
    total_latency: float
    singleton: bool


# ----------------------------------------------------------------------
# Multi-query service events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryAdmitted(TraceEvent):
    """Admission control accepted a query into the service.

    Attributes:
        query_id: the query's requester-chosen identifier.
        n_elements: the query's collection size ``c0``.
        budget: the query's distinct-question budget.
        priority: the query's priority class.
        plan_cache_hit: whether the tDP allocation came from the plan
            cache instead of a fresh solve.
    """

    kind: ClassVar[str] = "QueryAdmitted"
    query_id: int
    n_elements: int
    budget: int
    priority: int
    plan_cache_hit: bool


@dataclass(frozen=True)
class QueryScheduled(TraceEvent):
    """A query's pending round was packed into a shared platform round.

    Attributes:
        query_id: the scheduled query.
        tick: 0-based index of the scheduler tick (one shared round each).
        round_index: the query's own allocation round being served.
        n_questions: the query's distinct questions in the shared batch.
    """

    kind: ClassVar[str] = "QueryScheduled"
    query_id: int
    tick: int
    round_index: int
    n_questions: int


@dataclass(frozen=True)
class QueryCompleted(TraceEvent):
    """A query left the service with a declared winner.

    Attributes:
        query_id: the finished query.
        state: terminal state (``"completed"`` or ``"degraded"``).
        winner: declared MAX in the query's local element IDs.
        latency: arrival-to-completion simulated seconds.
        queue_wait: seconds between arrival and first scheduling.
        rounds: allocation rounds actually executed.
    """

    kind: ClassVar[str] = "QueryCompleted"
    query_id: int
    state: str
    winner: int
    latency: float
    queue_wait: float
    rounds: int


@dataclass(frozen=True)
class QueryShed(TraceEvent):
    """Admission control rejected a query under overload.

    Attributes:
        query_id: the rejected query.
        reason: human-readable overload description.
    """

    kind: ClassVar[str] = "QueryShed"
    query_id: int
    reason: str


# ----------------------------------------------------------------------
# Deadline / overload events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DeadlineExceeded(TraceEvent):
    """A query's enforced latency budget ran out.

    Emitted when the scheduler degrades an expired query, or when a
    query finishes past its deadline anyway (``outcome="exceeded"``).

    Attributes:
        query_id: the affected query.
        deadline: the effective budget in seconds.
        overrun: seconds past the deadline at emission time (>= 0).
        outcome: the terminal deadline outcome being recorded
            (``"degraded"`` or ``"exceeded"``).
    """

    kind: ClassVar[str] = "DeadlineExceeded"
    query_id: int
    deadline: float
    overrun: float
    outcome: str


@dataclass(frozen=True)
class RoundHedged(TraceEvent):
    """The router mirrored a predicted-slow sub-batch to a second backend.

    Attributes:
        tick: the scheduler tick the hedge happened in.
        backend: the primary backend whose sub-batch was mirrored.
        mirror: the backend the mirror copy was posted to.
        questions: distinct questions in the hedged sub-batch.
        winner: ``"primary"``, ``"mirror"`` or ``"none"`` (both members
            were swallowed by outages).
    """

    kind: ClassVar[str] = "RoundHedged"
    tick: int
    backend: str
    mirror: str
    questions: int
    winner: str


@dataclass(frozen=True)
class BrownoutStateChanged(TraceEvent):
    """The overload brownout controller changed level.

    Attributes:
        level: the new brownout level (0 = fully restored).
        previous: the level before the transition.
        queue_wait_p95: the live queue-wait p95 that drove the change.
        tick: the scheduler tick of the transition.
    """

    kind: ClassVar[str] = "BrownoutStateChanged"
    level: int
    previous: int
    queue_wait_p95: float
    tick: int


@dataclass(frozen=True)
class AlertFired(TraceEvent):
    """An SLO engine alert rule started firing.

    Attributes:
        alert: the rule's name.
        severity: ``"warning"`` or ``"critical"``.
        value: the burn rate or signal value that crossed the threshold.
        tick: the scheduler tick of the transition.
    """

    kind: ClassVar[str] = "AlertFired"
    alert: str
    severity: str
    value: float
    tick: int


@dataclass(frozen=True)
class AlertResolved(TraceEvent):
    """A previously-firing SLO engine alert rule recovered.

    Attributes:
        alert: the rule's name.
        severity: ``"warning"`` or ``"critical"``.
        value: the burn rate or signal value at resolution.
        tick: the scheduler tick of the transition.
    """

    kind: ClassVar[str] = "AlertResolved"
    alert: str
    severity: str
    value: float
    tick: int


# ----------------------------------------------------------------------
# Durability events (journal / recovery / circuit breaker)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CheckpointWritten(TraceEvent):
    """The scheduler journal wrote a full state snapshot.

    Attributes:
        tick: scheduler tick the snapshot captures.
        n_active: queries running sessions at snapshot time.
        n_waiting: admitted queries waiting for a slot.
        n_results: queries already finished.
    """

    kind: ClassVar[str] = "CheckpointWritten"
    tick: int
    n_active: int
    n_waiting: int
    n_results: int


@dataclass(frozen=True)
class RecoveryCompleted(TraceEvent):
    """A scheduler was rebuilt from a write-ahead journal.

    Attributes:
        snapshot_tick: tick of the snapshot recovery restored to.
        records_read: journal records parsed (header included).
        tail_corrupt: whether a truncated/garbage tail was discarded.
    """

    kind: ClassVar[str] = "RecoveryCompleted"
    snapshot_tick: int
    records_read: int
    tail_corrupt: bool


@dataclass(frozen=True)
class CircuitOpened(TraceEvent):
    """The platform circuit breaker tripped open.

    Attributes:
        consecutive_outages: outages observed since the last success.
    """

    kind: ClassVar[str] = "CircuitOpened"
    consecutive_outages: int
    span_id: str = ""


@dataclass(frozen=True)
class CircuitClosed(TraceEvent):
    """The circuit breaker closed again after successful probes.

    Attributes:
        probe_successes: successful half-open probes that closed it.
    """

    kind: ClassVar[str] = "CircuitClosed"
    probe_successes: int
    span_id: str = ""


# ----------------------------------------------------------------------
# Reliable Worker Layer events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RWLRetry(TraceEvent):
    """The RWL's cycle-resolution repair fired for a batch.

    Emitted only when the majority answers contained a preference cycle
    and had to be re-oriented; clean batches emit nothing.

    Attributes:
        distinct_questions: distinct questions in the batch.
        questions_posted: posted copies (``distinct * repetition``).
        repetition: per-question repetition factor.
        majority_flips: answers whose direction was flipped by the repair.
    """

    kind: ClassVar[str] = "RWLRetry"
    distinct_questions: int
    questions_posted: int
    repetition: int
    majority_flips: int


@dataclass(frozen=True)
class BatchRetried(TraceEvent):
    """The RWL re-posted a round's unanswered questions.

    Emitted once per retry attempt, before the re-posted batch runs.

    Attributes:
        attempt: 1-based index of the posting attempt being started
            (``2`` = first retry).
        distinct_questions: distinct questions still unanswered.
        questions_reposted: posted copies (``distinct * repetition``).
        backoff_seconds: simulated seconds waited before re-posting.
        reason: ``"outage"`` (the whole previous batch was lost) or
            ``"unanswered"`` (some answers never arrived).
        span_id: causal span the retry happened under (``""`` when the
            emitter ran outside any span scope).
    """

    kind: ClassVar[str] = "BatchRetried"
    attempt: int
    distinct_questions: int
    questions_reposted: int
    backoff_seconds: float
    reason: str
    span_id: str = ""


# ----------------------------------------------------------------------
# Simulated-platform events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultInjected(TraceEvent):
    """The fault-injection layer perturbed a posted batch.

    Emitted once per (batch, fault family) with a nonzero count, not per
    affected answer, to keep traces compact.

    Attributes:
        fault: fault family — ``"outage"``, ``"abandonment"``, ``"drop"``,
            ``"straggler"`` or ``"duplicate"``.
        n_affected: answers affected (questions in the batch for an
            outage).
        batch_index: 0-based index of the batch on this FaultyPlatform.
        span_id: causal span the batch ran under (``""`` outside spans).
    """

    kind: ClassVar[str] = "FaultInjected"
    fault: str
    n_affected: int
    batch_index: int
    span_id: str = ""



@dataclass(frozen=True)
class WorkerServiced(TraceEvent):
    """One simulated worker finished contributing to a batch.

    Attributes:
        worker_id: platform-wide worker identifier.
        n_answers: answers the worker submitted in this batch.
        busy_time: total service seconds the worker spent.
    """

    kind: ClassVar[str] = "WorkerServiced"
    worker_id: int
    n_answers: int
    busy_time: float


# ----------------------------------------------------------------------
# Allocator events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DPTableBuilt(TraceEvent):
    """A dynamic-programming solver finished building its table.

    Attributes:
        solver: ``"frontier"`` (the Pareto solver), ``"frontier-bounded"``
            or ``"memo"`` (the literal Algorithm 1 recursion).
        n_elements: ``c_0`` of the solved instance.
        budget: ``b`` of the solved instance.
        seconds: wall-clock seconds the build took.
        states: table size — frontier points kept, or memoized states.
    """

    kind: ClassVar[str] = "DPTableBuilt"
    solver: str
    n_elements: int
    budget: int
    seconds: float
    states: int


# ----------------------------------------------------------------------
# Profiling events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpanCompleted(TraceEvent):
    """A :func:`repro.obs.timed` span closed."""

    kind: ClassVar[str] = "SpanCompleted"
    label: str
    seconds: float


# ----------------------------------------------------------------------
# Causal-span events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpanOpened(TraceEvent):
    """A causal span began (see :mod:`repro.obs.spans`).

    Span ids are *structural* — derived from stable coordinates like
    ``(query_id, round_index)`` rather than emission counters or wall
    time — so a journal-recovered run re-emits the very same ids and
    span trees stay comparable across crashes.

    Attributes:
        span_id: structural identifier, unique within one trace.
        parent_id: enclosing span's id (``None`` for roots).
        name: span type, e.g. ``"query"``, ``"plan"``, ``"round"``, or a
            leaf attribution component such as ``"round_post"``.
        start: simulated-clock seconds when the span opened.
        query_id: owning query, ``-1`` for shared/unowned spans.
        detail: free-form annotation (cache hit, retry reason, ...).
    """

    kind: ClassVar[str] = "SpanOpened"
    span_id: str
    parent_id: Optional[str]
    name: str
    start: float
    query_id: int = -1
    detail: str = ""


@dataclass(frozen=True)
class SpanClosed(TraceEvent):
    """A causal span ended.

    Attributes:
        span_id: the id given at :class:`SpanOpened`.
        end: simulated-clock seconds when the span closed.
        status: ``"ok"`` or a failure tag (``"outage"``, ``"degraded"``).
    """

    kind: ClassVar[str] = "SpanClosed"
    span_id: str
    end: float
    status: str = "ok"


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped entry in a trace buffer.

    Attributes:
        seq: emission order (0-based, dense).
        wall_time: monotonic seconds since the tracer was created.
        sim_time: simulated-clock seconds, when the emitter knew it.
        event: the typed payload.
    """

    seq: int
    wall_time: float
    sim_time: Optional[float]
    event: TraceEvent

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "wall_time": self.wall_time,
            "sim_time": self.sim_time,
            "kind": self.event.kind,
            "data": self.event.to_dict(),
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "TraceRecord":
        return cls(
            seq=int(raw["seq"]),
            wall_time=float(raw["wall_time"]),
            sim_time=None if raw["sim_time"] is None else float(raw["sim_time"]),
            event=event_from_dict(raw["kind"], raw["data"]),
        )


def events_of(records: Tuple[TraceRecord, ...], kind: str) -> Tuple[TraceRecord, ...]:
    """Filter *records* down to one event kind (export/report helper)."""
    return tuple(r for r in records if r.event.kind == kind)
