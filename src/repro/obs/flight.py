"""Incident flight recorder: a bounded ring plus debug bundles.

A :class:`FlightRecorder` rides along with the scheduler, keeping the
last *capacity* entries — tick samples, alert transitions, whatever the
host feeds :meth:`FlightRecorder.record` — in a ring, for free until
something goes wrong.  When an alert fires (or an operator runs
``tdp-repro diagnose``), :func:`write_bundle` snapshots the ring plus
the surrounding context to a crash-readable directory:

========================= =========================================
file                      contents
========================= =========================================
``ring.jsonl``            the ring, oldest entry first, one per line
``state.json``            breaker/brownout/hedge/router/engine state,
                          active alerts, health, journal tail pointer
``metrics.prom``          OpenMetrics snapshot of the registry
``spans.txt``             open span trees, when a tracer was attached
``manifest.json``         index of the above — **written last**, so a
                          bundle with a manifest is a complete bundle
========================= =========================================

Every file goes through the atomic writers in :mod:`repro.persistence`
and nothing in a bundle reads the wall clock, so re-writing a bundle on
deterministic replay is idempotent: same ticks in, same bytes out.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Union

from repro.errors import InvalidParameterError
from repro.obs.openmetrics import render_openmetrics

__all__ = [
    "BUNDLE_MANIFEST",
    "FlightRecorder",
    "write_bundle",
    "validate_bundle",
]

#: The bundle index file; its presence marks a complete bundle.
BUNDLE_MANIFEST = "manifest.json"


class FlightRecorder:
    """A bounded ring of recent observations.

    Entries are plain JSON-serializable dicts tagged with a ``kind``;
    the ring drops the oldest entry once *capacity* is reached.  The
    ring round-trips through :meth:`state_dict`, so a recovered
    scheduler diagnoses with the same recent history it crashed with.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise InvalidParameterError(
                f"flight recorder capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._ring)

    def record(self, kind: str, **payload: Any) -> None:
        """Append one entry (oldest evicted once the ring is full)."""
        self._ring.append({"kind": kind, **payload})

    def entries(self) -> List[Dict[str, Any]]:
        """The ring contents, oldest first."""
        return [dict(entry) for entry in self._ring]

    # -- snapshot / restore -------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Serialize the ring for a journal snapshot."""
        return {"capacity": self.capacity, "entries": self.entries()}

    def load_state_dict(self, payload: Dict[str, Any]) -> None:
        """Restore the counterpart of :meth:`state_dict`."""
        self._ring.clear()
        for entry in payload.get("entries", []):
            self._ring.append(dict(entry))


def write_bundle(
    directory: Union[str, Path],
    recorder: FlightRecorder,
    *,
    state: Optional[Dict[str, Any]] = None,
    metrics_snapshot: Optional[Dict[str, Dict[str, Any]]] = None,
    spans: Optional[str] = None,
    reason: str = "diagnose",
) -> Path:
    """Snapshot a debug bundle into *directory* (created if missing).

    Writes the ring, the host-provided *state* dict, an OpenMetrics
    rendering of *metrics_snapshot* and optional span trees, then the
    manifest last — a reader finding ``manifest.json`` can trust every
    file it lists.  Returns the bundle directory.
    """
    # Deferred: repro.persistence pulls in the engine package, which
    # imports repro.obs back — a cycle at module-import time only.
    from repro.persistence import save_json, save_text

    bundle = Path(directory)
    bundle.mkdir(parents=True, exist_ok=True)
    entries = recorder.entries()
    ring_lines = "".join(
        json.dumps(entry, separators=(",", ":"), sort_keys=True) + "\n"
        for entry in entries
    )
    files = {"ring.jsonl": len(entries)}
    save_text(ring_lines, bundle / "ring.jsonl")
    save_json(state if state is not None else {}, bundle / "state.json")
    files["state.json"] = 1
    if metrics_snapshot is not None:
        save_text(render_openmetrics(metrics_snapshot),
                  bundle / "metrics.prom")
        files["metrics.prom"] = 1
    if spans is not None:
        save_text(spans, bundle / "spans.txt")
        files["spans.txt"] = 1
    manifest = {
        "schema": 1,
        "reason": reason,
        "ring_entries": len(entries),
        "files": sorted(files),
    }
    save_json(manifest, bundle / BUNDLE_MANIFEST)
    return bundle


def validate_bundle(directory: Union[str, Path]) -> Dict[str, Any]:
    """Check a bundle is complete; returns its manifest.

    Raises:
        InvalidParameterError: when the manifest is missing or a file it
            lists is absent — i.e. the bundle write did not finish.
    """
    bundle = Path(directory)
    manifest_path = bundle / BUNDLE_MANIFEST
    if not manifest_path.is_file():
        raise InvalidParameterError(
            f"no {BUNDLE_MANIFEST} in {bundle} — incomplete bundle"
        )
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    for name in manifest.get("files", []):
        if not (bundle / name).is_file():
            raise InvalidParameterError(
                f"bundle {bundle} is missing {name} listed in its manifest"
            )
    return manifest
