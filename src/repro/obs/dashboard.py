"""Terminal dashboard over per-tick scheduler telemetry.

Renders a compact, fixed-height ANSI frame from a sequence of
tick samples (anything with the attribute set of
:class:`repro.service.telemetry.TickSample` — the module duck-types so
the obs layer keeps no import on the service layer):

* sparklines (``▁▂▃▄▅▆▇█``) of queue depth, active queries and shared
  round latency over the recent window;
* current breaker state, plan-cache hit rate and cumulative outcome
  counters.

:class:`DashboardRenderer` drives it two ways.  On a TTY it redraws in
place each tick (cursor-up + erase-line, no curses dependency, no
alternate screen).  On a pipe or file — CI, ``| tee`` — it stays silent
until :meth:`DashboardRenderer.finish` and prints one final frame, so
logs are not flooded with control codes.  Both ``tdp-repro serve
--dashboard`` (live) and ``tdp-repro top`` (journal replay/follow) end
with the same :func:`render_final` line, which is how the two views are
checked against each other: same journal, same final counters.
"""

from __future__ import annotations

import sys
from typing import IO, List, Optional, Sequence

_BLOCKS = "▁▂▃▄▅▆▇█"
#: Ticks shown in each sparkline window.
SPARK_WIDTH = 48
#: Lines in one rendered frame (the in-place redraw depends on it).
FRAME_LINES = 8


def sparkline(values: Sequence[float], width: int = SPARK_WIDTH) -> str:
    """A unicode block-character sparkline of the last *width* values.

    The vertical scale is the window's own min..max (a flat series
    renders as its lowest block); an empty series renders empty.
    """
    window = [float(v) for v in values[-width:]]
    if not window:
        return ""
    lo, hi = min(window), max(window)
    span = hi - lo
    if span <= 0:
        return _BLOCKS[0] * len(window)
    top = len(_BLOCKS) - 1
    return "".join(
        _BLOCKS[min(top, int((v - lo) / span * len(_BLOCKS)))] for v in window
    )


def _fmt_seconds(seconds: float) -> str:
    return f"{seconds:.1f}s" if seconds < 600 else f"{seconds / 60:.1f}m"


def render_frame(samples: Sequence, width: int = SPARK_WIDTH) -> str:
    """Render one dashboard frame (exactly :data:`FRAME_LINES` lines)."""
    if not samples:
        return "\n".join(["(no ticks yet)"] + [""] * (FRAME_LINES - 1))
    last = samples[-1]
    depth = [s.waiting + s.backlog for s in samples]
    active = [s.active for s in samples]
    latency = [s.round_latency for s in samples]
    # Health appears only when an SLO engine stamped the sample (old
    # journals and engine-off runs carry ""), keeping the header
    # byte-identical to pre-SLO output — live or replayed.
    health = getattr(last, "health", "")
    slo = (
        f"  health={health} alerts={getattr(last, 'alerts_active', 0)}"
        if health else ""
    )
    lines = [
        f"tick {last.tick}  t={_fmt_seconds(last.now)}  "
        f"breaker={last.breaker}  "
        f"plan-cache {100 * last.cache_hit_rate:.0f}% hit{slo}",
        f"  queue depth   {sparkline(depth, width):<{width}} "
        f"{depth[-1]:>6d}  (waiting {last.waiting}, backlog {last.backlog})",
        f"  active        {sparkline(active, width):<{width}} "
        f"{active[-1]:>6d}",
        f"  round latency {sparkline(latency, width):<{width}} "
        f"{_fmt_seconds(latency[-1]):>6}"
        f"{'  (deferred)' if last.deferred else ''}",
        f"  this round: {last.questions} questions  "
        f"cumulative: {last.shared_rounds} rounds / "
        f"{last.questions_total} questions",
        f"  queries: {last.completed} completed  "
        f"{last.degraded} degraded  {last.shed} shed  "
        # Duck-typed defaults: samples from old journals may lack the
        # queue_wait_mean / deadline / brownout attributes.
        f"wait {_fmt_seconds(getattr(last, 'queue_wait_mean', 0.0))}",
        f"  deadlines: {getattr(last, 'deadline_met', 0)} met  "
        f"{getattr(last, 'deadline_breached', 0)} breached  "
        f"brownout L{getattr(last, 'brownout_level', 0)}",
        "",
    ]
    return "\n".join(lines)


def render_final(samples: Sequence) -> str:
    """The one-line end-of-run summary shared by ``serve`` and ``top``.

    Derived purely from the last sample, so a live run and a journal
    replay of the same run print byte-identical summaries.
    """
    if not samples:
        return "final: no ticks recorded"
    last = samples[-1]
    return (
        f"final: tick={last.tick} t={last.now:.1f}s "
        f"completed={last.completed} degraded={last.degraded} "
        f"shed={last.shed} shared_rounds={last.shared_rounds} "
        f"questions={last.questions_total}"
    )


class DashboardRenderer:
    """Incrementally render tick samples to a terminal.

    Args:
        stream: output stream (default ``sys.stdout``).
        live: force in-place redraw on (True) or off (False); by default
            redraw is used only when *stream* is a TTY.  When off, only
            the final frame and summary are printed — headless runs (CI,
            piped output) get clean logs.
        width: sparkline window width, ticks.
    """

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        live: Optional[bool] = None,
        width: int = SPARK_WIDTH,
    ) -> None:
        self._stream = stream if stream is not None else sys.stdout
        if live is None:
            isatty = getattr(self._stream, "isatty", None)
            live = bool(isatty()) if callable(isatty) else False
        self._live = live
        self._width = width
        self._samples: List = []
        self._drawn = False

    @property
    def samples(self) -> Sequence:
        return tuple(self._samples)

    def update(self, sample) -> None:
        """Ingest one tick sample; redraw immediately when live."""
        self._samples.append(sample)
        if not self._live:
            return
        frame = render_frame(self._samples, self._width)
        if self._drawn:
            # Constant frame height: move up and overwrite in place.
            self._stream.write(f"\x1b[{FRAME_LINES}A")
        self._drawn = True
        for line in frame.split("\n"):
            self._stream.write(f"\x1b[2K{line}\n")
        self._stream.flush()

    def finish(self) -> str:
        """Print the final frame + summary; returns the summary line."""
        summary = render_final(self._samples)
        if not self._live:
            self._stream.write(render_frame(self._samples, self._width) + "\n")
        self._stream.write(summary + "\n")
        self._stream.flush()
        return summary
