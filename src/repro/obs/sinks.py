"""Trace sinks: stream events out of the process as they happen.

A :class:`~repro.obs.tracer.RecordingTracer` historically only *buffered*
records, exporting them after the run — so a killed run lost its whole
trace, and a long ``serve`` run held every event in memory.  Sinks fix
both: the tracer hands each :class:`~repro.obs.events.TraceRecord` to its
sinks at emission time.

* :class:`StreamingJsonlSink` appends one JSONL line per event with a
  periodic flush, so a crashed run leaves a readable prefix on disk —
  the same guarantee the scheduler's write-ahead journal makes.  Line
  writes are atomic with respect to the flush boundary (a flush never
  splits a record), so ``repro.obs.export.read_jsonl`` always parses the
  prefix.
* :class:`InMemorySink` collects records in a list (tests, ad-hoc
  analysis).
* :class:`TeeSink` fans one stream out to several sinks.

The zero-overhead null path is untouched: sinks hang off *recording*
tracers only, and an uninstrumented run still pays exactly one attribute
read per potential event (pinned by the tracer-noninvasiveness regression
guard in ``tests/obs/test_integration.py``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Tuple, Union

from repro.errors import InvalidParameterError
from repro.obs.events import TraceRecord


class TraceSink:
    """Interface of all sinks: receive records, flush, close."""

    def write(self, record: TraceRecord) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered records to durable storage (no-op by default)."""

    def close(self) -> None:
        """Flush and release resources (no-op by default)."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class InMemorySink(TraceSink):
    """Buffer records in memory (the sink equivalent of the old tracer)."""

    def __init__(self) -> None:
        self._records: List[TraceRecord] = []

    def write(self, record: TraceRecord) -> None:
        self._records.append(record)

    @property
    def records(self) -> Tuple[TraceRecord, ...]:
        return tuple(self._records)


class StreamingJsonlSink(TraceSink):
    """Append each record to a JSONL file as it is emitted.

    Args:
        path: destination file; truncated on construction (one sink = one
            run's trace).
        flush_interval: flush the OS-level buffer every N records (>= 1).
            Smaller = more durable prefix after a kill, larger = cheaper.
            Whatever the interval, only whole lines ever reach the file,
            so the on-disk prefix is always parseable.
    """

    def __init__(
        self, path: Union[str, Path], flush_interval: int = 64
    ) -> None:
        if flush_interval < 1:
            raise InvalidParameterError(
                f"flush_interval must be >= 1, got {flush_interval}"
            )
        self.path = Path(path)
        self.flush_interval = flush_interval
        self._handle = open(self.path, "w", encoding="utf-8")
        self._since_flush = 0
        self._written = 0
        self._closed = False

    @property
    def records_written(self) -> int:
        """Records handed to the sink so far (flushed or not)."""
        return self._written

    def write(self, record: TraceRecord) -> None:
        if self._closed:
            raise InvalidParameterError(
                f"sink {self.path} is closed; no further records accepted"
            )
        self._handle.write(json.dumps(record.to_dict()) + "\n")
        self._written += 1
        self._since_flush += 1
        if self._since_flush >= self.flush_interval:
            self.flush()

    def flush(self) -> None:
        if not self._closed:
            self._handle.flush()
            self._since_flush = 0

    def close(self) -> None:
        if not self._closed:
            self._handle.flush()
            self._closed = True
            self._handle.close()


class TeeSink(TraceSink):
    """Fan one record stream out to several sinks, in order."""

    def __init__(self, sinks: Sequence[TraceSink]) -> None:
        self.sinks: Tuple[TraceSink, ...] = tuple(sinks)

    def write(self, record: TraceRecord) -> None:
        for sink in self.sinks:
            sink.write(record)

    def flush(self) -> None:
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
