"""Shared order statistics for the observability and service layers.

Percentiles appear in three places — :class:`~repro.service.report.ServiceReport`
(per-query latency), :class:`~repro.obs.metrics.Histogram` (instrument
snapshots) and the terminal dashboard — and all of them must agree, or an
operator comparing a report against a scraped histogram chases phantom
regressions.  This module is the single definition they share.

The definition is **nearest-rank**: the *p*-th percentile of *n* sorted
samples is the ``ceil(p / 100 * n)``-th smallest (1-based), i.e. the
smallest sample at or above the requested rank.  It is deterministic, does
no interpolation (every returned value is an actual observation), and
matches ``numpy.percentile(..., method="inverted_cdf")`` — a property test
pins that equivalence.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple, Union

from repro.errors import InvalidParameterError

Number = Union[int, float]


def escalation_step(
    value: float,
    level: int,
    *,
    threshold: float,
    clear_threshold: float,
    max_level: int,
) -> Optional[Tuple[int, int]]:
    """One step of a threshold + hysteresis escalation ladder.

    The shared state machine behind the brownout controller and the SLO
    threshold rules: a signal at or above *threshold* escalates one level
    per call (capped at *max_level*); a signal strictly below
    *clear_threshold* restores one level per call; anything in the
    hysteresis band ``[clear_threshold, threshold)`` holds the level.

    Returns ``(previous, new)`` on a level change, ``None`` otherwise.
    The function is pure — callers apply the returned level themselves —
    so replaying the same signal sequence reproduces the same
    transitions bit for bit.
    """
    if value >= threshold:
        if level < max_level:
            return (level, level + 1)
    elif value < clear_threshold and level > 0:
        return (level, level - 1)
    return None


def nearest_rank(n_samples: int, p: float) -> int:
    """The 1-based nearest-rank index of the *p*-th percentile.

    Raises:
        InvalidParameterError: when ``n_samples < 1`` or *p* is outside
            ``(0, 100]``.
    """
    if n_samples < 1:
        raise InvalidParameterError("cannot take a percentile of zero samples")
    if not 0 < p <= 100:
        raise InvalidParameterError(f"percentile must be in (0, 100], got {p}")
    return max(1, math.ceil(p / 100 * n_samples))


def percentile(values: Sequence[Number], p: float) -> float:
    """The nearest-rank *p*-th percentile of *values* (``0 < p <= 100``).

    Raises:
        InvalidParameterError: on an empty sample or out-of-range *p*.
    """
    rank = nearest_rank(len(values), p)
    return sorted(values)[rank - 1]
