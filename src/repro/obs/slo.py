"""Deterministic SLO engine: objectives, burn-rate alerts, health.

The telemetry pipeline measures; this module *watches*.  An
:class:`SLOEngine` evaluates three kinds of declarative rules once per
scheduler tick:

* :class:`SLOTarget` — an objective over a rolling tick window, e.g.
  "95% of finished queries meet their deadline over the last 200 ticks";
* :class:`BurnRateRule` — the SRE multi-window alert: the *burn rate* is
  the observed bad fraction divided by the SLO's error budget
  (``1 - target``), and an alert fires only when **both** a fast and a
  slow window burn at or above the threshold (fast catches the incident,
  slow suppresses blips), resolving once the fast window recovers;
* :class:`ThresholdRule` — a hysteresis comparator over any scheduler
  signal (``queue_wait_p95``, ``breaker_open``, ``brownout_level``,
  ``hedge_waste``, ...), sharing
  :func:`repro.obs.stats.escalation_step` with the brownout controller.

Determinism is the design constraint: the engine consumes only the
per-tick :class:`~repro.service.telemetry.TickSample` counters and a
scheduler-built signals mapping — both derived from journaled,
snapshot-restored state — never wall clocks or the process-global
metrics registry.  Feeding the same tick sequence therefore reproduces
the same :class:`AlertTransition` sequence bit for bit, which is what
lets crash recovery replay alert history exactly
(:mod:`repro.service.journal` snapshots :meth:`SLOEngine.state_dict`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Mapping, Optional, Tuple

from repro.errors import InvalidParameterError
from repro.obs.stats import escalation_step

__all__ = [
    "ALERT_SEVERITIES",
    "SLO_OBJECTIVES",
    "SLOTarget",
    "BurnRateRule",
    "ThresholdRule",
    "SLOConfig",
    "AlertTransition",
    "HealthStatus",
    "SLOEngine",
    "default_slo_config",
    "slo_config_from_dict",
]

#: Alert severities, mildest first.  ``critical`` drives the aggregate
#: health to ``critical``; anything else active means ``degraded``.
ALERT_SEVERITIES = ("warning", "critical")

#: What an :class:`SLOTarget` counts as good/bad per tick:
#: ``deadline`` — deadline-met vs deadline-breached terminals;
#: ``queries`` — completed vs degraded-or-shed terminals.
SLO_OBJECTIVES = ("deadline", "queries")


@dataclass(frozen=True)
class SLOTarget:
    """An objective over a rolling tick window.

    Attributes:
        name: unique handle, referenced by :class:`BurnRateRule`.
        objective: one of :data:`SLO_OBJECTIVES`.
        target: required good fraction, in ``(0, 1)``.
        window: rolling window length in ticks.
    """

    name: str
    objective: str = "deadline"
    target: float = 0.95
    window: int = 200

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidParameterError("SLO target needs a non-empty name")
        if self.objective not in SLO_OBJECTIVES:
            raise InvalidParameterError(
                f"unknown SLO objective {self.objective!r}; "
                f"expected one of {SLO_OBJECTIVES}"
            )
        if not 0.0 < self.target < 1.0:
            raise InvalidParameterError(
                f"SLO target must be in (0, 1), got {self.target}"
            )
        if self.window < 1:
            raise InvalidParameterError(
                f"SLO window must be >= 1 tick, got {self.window}"
            )


@dataclass(frozen=True)
class BurnRateRule:
    """A multi-window burn-rate alert over one :class:`SLOTarget`.

    Attributes:
        name: unique alert name.
        slo: the :attr:`SLOTarget.name` this rule watches.
        fast_window: short window (ticks) — detects, and resolves.
        slow_window: long window (ticks) — confirms, suppressing blips.
        burn_threshold: fire when both windows burn at or above this
            multiple of the error budget; resolve when the fast window
            drops below it.
        severity: one of :data:`ALERT_SEVERITIES`.
    """

    name: str
    slo: str
    fast_window: int = 12
    slow_window: int = 72
    burn_threshold: float = 2.0
    severity: str = "critical"

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidParameterError("burn-rate rule needs a name")
        if self.fast_window < 1 or self.slow_window < 1:
            raise InvalidParameterError(
                "burn-rate windows must be >= 1 tick, got "
                f"{self.fast_window}/{self.slow_window}"
            )
        if self.fast_window >= self.slow_window:
            raise InvalidParameterError(
                f"fast window ({self.fast_window}) must be shorter than "
                f"the slow window ({self.slow_window})"
            )
        if not self.burn_threshold > 0:
            raise InvalidParameterError(
                f"burn threshold must be > 0, got {self.burn_threshold}"
            )
        if self.severity not in ALERT_SEVERITIES:
            raise InvalidParameterError(
                f"unknown severity {self.severity!r}; "
                f"expected one of {ALERT_SEVERITIES}"
            )


@dataclass(frozen=True)
class ThresholdRule:
    """A hysteresis comparator over one scheduler signal.

    Fires when the signal reaches *threshold*; resolves once it drops
    below ``threshold * clear_fraction`` — the same escalate/clear band
    as the brownout controller, via
    :func:`repro.obs.stats.escalation_step` with ``max_level=1``.

    Attributes:
        name: unique alert name.
        signal: key into the scheduler-built signals mapping
            (``queue_wait_p95``, ``breaker_open``, ``brownout_level``,
            ``hedge_waste``, ``queue_depth``, ...).
        threshold: fire at or above this value.
        clear_fraction: hysteresis band, in ``(0, 1]``.
        severity: one of :data:`ALERT_SEVERITIES`.
    """

    name: str
    signal: str
    threshold: float
    clear_fraction: float = 0.75
    severity: str = "warning"

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidParameterError("threshold rule needs a name")
        if not self.signal:
            raise InvalidParameterError(
                f"threshold rule {self.name!r} needs a signal"
            )
        if not self.threshold > 0:
            raise InvalidParameterError(
                f"threshold must be > 0, got {self.threshold}"
            )
        if not 0.0 < self.clear_fraction <= 1.0:
            raise InvalidParameterError(
                f"clear_fraction must be in (0, 1], got {self.clear_fraction}"
            )
        if self.severity not in ALERT_SEVERITIES:
            raise InvalidParameterError(
                f"unknown severity {self.severity!r}; "
                f"expected one of {ALERT_SEVERITIES}"
            )

    @property
    def clear_threshold(self) -> float:
        """The value below which an active alert resolves."""
        return self.threshold * self.clear_fraction


@dataclass(frozen=True)
class SLOConfig:
    """Declarative rule set for one :class:`SLOEngine`.

    Attributes:
        targets: the objectives burn-rate rules draw on.
        burn_rates: multi-window burn alerts (each referencing a target).
        thresholds: signal comparators.
        ring: flight-recorder ring capacity (entries).
        bundle_dir: when set, the scheduler snapshots a debug bundle
            here every time an alert fires.
    """

    targets: Tuple[SLOTarget, ...] = ()
    burn_rates: Tuple[BurnRateRule, ...] = ()
    thresholds: Tuple[ThresholdRule, ...] = ()
    ring: int = 256
    bundle_dir: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "targets", tuple(self.targets))
        object.__setattr__(self, "burn_rates", tuple(self.burn_rates))
        object.__setattr__(self, "thresholds", tuple(self.thresholds))
        if self.ring < 1:
            raise InvalidParameterError(
                f"flight-recorder ring must hold >= 1 entry, got {self.ring}"
            )
        names = [t.name for t in self.targets]
        if len(set(names)) != len(names):
            raise InvalidParameterError("duplicate SLO target names")
        alerts = [r.name for r in self.burn_rates] + [
            r.name for r in self.thresholds
        ]
        if len(set(alerts)) != len(alerts):
            raise InvalidParameterError("duplicate alert rule names")
        known = set(names)
        for rule in self.burn_rates:
            if rule.slo not in known:
                raise InvalidParameterError(
                    f"burn-rate rule {rule.name!r} references unknown "
                    f"SLO target {rule.slo!r}"
                )


@dataclass(frozen=True)
class AlertTransition:
    """One alert firing or resolving, in tick order.

    Attributes:
        rule: the alert rule's name.
        action: ``"fired"`` or ``"resolved"``.
        severity: the rule's severity.
        value: the burn rate or signal value that drove the transition.
        tick: the scheduler tick it happened on.
    """

    rule: str
    action: str
    severity: str
    value: float
    tick: int


@dataclass(frozen=True)
class HealthStatus:
    """Aggregate service health derived from the active alerts.

    ``state`` is ``"ok"`` (nothing active), ``"degraded"`` (active
    alerts, none critical) or ``"critical"``; ``reasons`` lists the
    active alert names, sorted.
    """

    state: str
    reasons: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "reasons", tuple(self.reasons))

    def describe(self) -> str:
        """``"ok"`` or ``"critical (breaker-open, deadline-burn)"``."""
        if not self.reasons:
            return self.state
        return f"{self.state} ({', '.join(self.reasons)})"


class SLOEngine:
    """Tick-driven rule evaluator; pure function of the fed samples.

    Call :meth:`observe` once per tick with the tick's
    :class:`~repro.service.telemetry.TickSample` and the scheduler's
    signals mapping; it returns the tick's :class:`AlertTransition`
    list (possibly empty).  Everything the engine remembers — rolling
    windows, active alerts, threshold levels, totals — round-trips
    through :meth:`state_dict`, so crash recovery resumes mid-alert.
    """

    def __init__(self, config: SLOConfig) -> None:
        self.config = config
        self._targets: Dict[str, SLOTarget] = {
            t.name: t for t in config.targets
        }
        self._depth: Dict[str, int] = {}
        for target in config.targets:
            windows = [target.window] + [
                r.slow_window for r in config.burn_rates if r.slo == target.name
            ]
            self._depth[target.name] = max(windows)
        self._history: Dict[str, Deque[Tuple[int, int]]] = {
            name: deque(maxlen=depth) for name, depth in self._depth.items()
        }
        self._prev: Optional[Dict[str, int]] = None
        # name -> {"severity": str, "since": tick} in firing order.
        self._active: Dict[str, Dict[str, Any]] = {}
        self._levels: Dict[str, int] = {r.name: 0 for r in config.thresholds}
        #: Lifetime alert transitions, either direction.
        self.fired_total = 0
        self.resolved_total = 0

    # -- windows -------------------------------------------------------
    def burn_rate(self, slo: str, window: Optional[int] = None) -> float:
        """Burn rate of *slo* over its last *window* ticks.

        The bad fraction over the window divided by the error budget
        ``1 - target``; ``0.0`` when the window saw no terminals.
        *window* defaults to the target's own window.
        """
        target = self._targets.get(slo)
        if target is None:
            raise InvalidParameterError(f"unknown SLO target {slo!r}")
        span = target.window if window is None else window
        tail = list(self._history[slo])[-span:]
        good = sum(g for g, _ in tail)
        bad = sum(b for _, b in tail)
        total = good + bad
        if total == 0:
            return 0.0
        return (bad / total) / (1.0 - target.target)

    def active_alerts(self) -> Dict[str, Dict[str, Any]]:
        """The active alerts: ``{name: {"severity", "since"}}``."""
        return {name: dict(info) for name, info in self._active.items()}

    def health(self) -> HealthStatus:
        """Aggregate ok/degraded/critical with the active alert names."""
        if not self._active:
            return HealthStatus(state="ok")
        reasons = tuple(sorted(self._active))
        if any(
            info["severity"] == "critical" for info in self._active.values()
        ):
            return HealthStatus(state="critical", reasons=reasons)
        return HealthStatus(state="degraded", reasons=reasons)

    # -- driving -------------------------------------------------------
    def observe(
        self, sample: Any, signals: Mapping[str, float]
    ) -> List[AlertTransition]:
        """Feed one tick; returns the transitions it caused, in order.

        *sample* is the tick's :class:`TickSample` (only its cumulative
        terminal counters are read); *signals* is the scheduler-built
        mapping threshold rules compare against.
        """
        counters = {
            "deadline_met": int(sample.deadline_met),
            "deadline_breached": int(sample.deadline_breached),
            "completed": int(sample.completed),
            "degraded": int(sample.degraded),
            "shed": int(sample.shed),
        }
        prev = self._prev if self._prev is not None else dict.fromkeys(
            counters, 0
        )
        delta = {key: counters[key] - prev.get(key, 0) for key in counters}
        self._prev = counters
        for name, target in self._targets.items():
            if target.objective == "deadline":
                good, bad = delta["deadline_met"], delta["deadline_breached"]
            else:
                good = delta["completed"]
                bad = delta["degraded"] + delta["shed"]
            self._history[name].append((good, bad))

        tick = int(sample.tick)
        transitions: List[AlertTransition] = []
        for rule in self.config.burn_rates:
            fast = self.burn_rate(rule.slo, rule.fast_window)
            slow = self.burn_rate(rule.slo, rule.slow_window)
            if rule.name not in self._active:
                if (
                    fast >= rule.burn_threshold
                    and slow >= rule.burn_threshold
                ):
                    transitions.append(self._fire(rule.name, rule.severity,
                                                  fast, tick))
            elif fast < rule.burn_threshold:
                transitions.append(self._resolve(rule.name, rule.severity,
                                                 fast, tick))
        for rule in self.config.thresholds:
            value = float(signals.get(rule.signal, 0.0))
            change = escalation_step(
                value,
                self._levels[rule.name],
                threshold=rule.threshold,
                clear_threshold=rule.clear_threshold,
                max_level=1,
            )
            if change is None:
                continue
            self._levels[rule.name] = change[1]
            if change[1] > change[0]:
                transitions.append(self._fire(rule.name, rule.severity,
                                              value, tick))
            else:
                transitions.append(self._resolve(rule.name, rule.severity,
                                                 value, tick))
        return transitions

    def _fire(
        self, name: str, severity: str, value: float, tick: int
    ) -> AlertTransition:
        self._active[name] = {"severity": severity, "since": tick}
        self.fired_total += 1
        return AlertTransition(
            rule=name, action="fired", severity=severity,
            value=value, tick=tick,
        )

    def _resolve(
        self, name: str, severity: str, value: float, tick: int
    ) -> AlertTransition:
        self._active.pop(name, None)
        self.resolved_total += 1
        return AlertTransition(
            rule=name, action="resolved", severity=severity,
            value=value, tick=tick,
        )

    # -- snapshot / restore -------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Serialize the mutable engine state for a journal snapshot."""
        return {
            "history": {
                name: [list(pair) for pair in window]
                for name, window in self._history.items()
            },
            "prev": dict(self._prev) if self._prev is not None else None,
            "active": {
                name: dict(info) for name, info in self._active.items()
            },
            "levels": dict(self._levels),
            "fired": self.fired_total,
            "resolved": self.resolved_total,
        }

    def load_state_dict(self, payload: Dict[str, Any]) -> None:
        """Restore the counterpart of :meth:`state_dict`."""
        history = payload.get("history", {})
        for name, window in self._history.items():
            window.clear()
            for pair in history.get(name, []):
                window.append((int(pair[0]), int(pair[1])))
        prev = payload.get("prev")
        self._prev = (
            {key: int(value) for key, value in prev.items()}
            if prev is not None else None
        )
        self._active = {
            name: {"severity": str(info["severity"]),
                   "since": int(info["since"])}
            for name, info in payload.get("active", {}).items()
        }
        levels = payload.get("levels", {})
        self._levels = {
            rule.name: int(levels.get(rule.name, 0))
            for rule in self.config.thresholds
        }
        self.fired_total = int(payload.get("fired", 0))
        self.resolved_total = int(payload.get("resolved", 0))


def default_slo_config(
    *,
    ring: int = 256,
    bundle_dir: Optional[str] = None,
) -> SLOConfig:
    """The stock rule set ``tdp-repro serve --slo`` arms.

    A 95% deadline-attainment SLO and a 90% query-success SLO over 200
    ticks, a critical multi-window burn alert on the deadline SLO, and
    warning thresholds on the breaker, brownout and hedge-waste signals.
    """
    return SLOConfig(
        targets=(
            SLOTarget(name="deadline-attainment", objective="deadline",
                      target=0.95, window=200),
            SLOTarget(name="query-success", objective="queries",
                      target=0.90, window=200),
        ),
        burn_rates=(
            BurnRateRule(name="deadline-burn", slo="deadline-attainment",
                         fast_window=12, slow_window=72,
                         burn_threshold=2.0, severity="critical"),
        ),
        thresholds=(
            ThresholdRule(name="breaker-open", signal="breaker_open",
                          threshold=1.0, severity="warning"),
            ThresholdRule(name="brownout-active", signal="brownout_level",
                          threshold=1.0, severity="warning"),
            ThresholdRule(name="hedge-waste", signal="hedge_waste",
                          threshold=50.0, severity="warning"),
        ),
        ring=ring,
        bundle_dir=bundle_dir,
    )


def slo_config_from_dict(payload: Dict[str, Any]) -> SLOConfig:
    """Rebuild an :class:`SLOConfig` from its ``dataclasses.asdict``."""
    data = dict(payload)
    data["targets"] = tuple(
        SLOTarget(**t) if isinstance(t, dict) else t
        for t in data.get("targets", ())
    )
    data["burn_rates"] = tuple(
        BurnRateRule(**r) if isinstance(r, dict) else r
        for r in data.get("burn_rates", ())
    )
    data["thresholds"] = tuple(
        ThresholdRule(**r) if isinstance(r, dict) else r
        for r in data.get("thresholds", ())
    )
    return SLOConfig(**data)
