"""Tracers: structured-event collection with near-zero default cost.

The default tracer everywhere is the shared :data:`NULL_TRACER`, whose
``enabled`` flag is ``False`` — instrumented hot paths guard event
*construction* behind that flag, so a benchmark run pays one attribute
read per potential event and allocates nothing.

A :class:`RecordingTracer` buffers :class:`~repro.obs.events.TraceRecord`
entries with two clocks: monotonic wall time (seconds since the tracer was
created) and the simulated platform clock, which the emitting layer
advances via :meth:`RecordingTracer.advance_sim` as rounds complete.

Tracers reach the instrumented layers two ways:

* explicitly — ``MaxEngine(..., tracer=tracer)``;
* ambiently — :func:`use_tracer` installs a tracer in a ``contextvars``
  scope and :func:`current_tracer` reads it.  Module-level functions
  (the DP solvers, the simulation helpers) always use the ambient
  tracer; classes fall back to it when no explicit tracer was given.

:func:`timed` is the profiling primitive: a context manager *and*
decorator that measures a wall-clock span, records it into the metrics
registry histogram ``time.<label>`` and, when a tracer is active, emits a
:class:`~repro.obs.events.SpanCompleted` event.
"""

from __future__ import annotations

import contextvars
import functools
import threading
import time
from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.obs.events import SpanCompleted, TraceEvent, TraceRecord
from repro.obs.metrics import MetricsRegistry, get_registry

if TYPE_CHECKING:  # import cycle: sinks imports nothing from tracer, but
    from repro.obs.sinks import TraceSink  # keep runtime deps one-way.


class Tracer:
    """Interface of all tracers.

    ``enabled`` is a plain attribute (not a property) so the hot-path
    guard ``if tracer.enabled:`` costs a single attribute read.
    """

    enabled: bool = True

    def emit(self, event: TraceEvent, sim_time: Optional[float] = None) -> None:
        raise NotImplementedError

    def advance_sim(self, seconds: float) -> None:
        """Advance the simulated clock (no-op unless recording)."""


class NullTracer(Tracer):
    """The do-nothing default; safe to share process-wide."""

    enabled = False

    def emit(self, event: TraceEvent, sim_time: Optional[float] = None) -> None:
        pass


#: Shared no-op tracer instance (the package-wide default).
NULL_TRACER = NullTracer()


class RecordingTracer(Tracer):
    """Buffers timestamped events in memory and/or streams them to sinks.

    Args:
        clock: monotonic time source (injectable for deterministic tests).
        sinks: :class:`~repro.obs.sinks.TraceSink` s each record is handed
            to at emission time (e.g. a ``StreamingJsonlSink``, so a
            crashed run leaves a readable trace prefix on disk).
        buffer: keep records in memory (:attr:`records`).  Turn off for
            long streaming runs whose only consumer is a sink — the
            tracer then holds no per-event state at all.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        sinks: Sequence["TraceSink"] = (),
        buffer: bool = True,
    ) -> None:
        self._clock = clock
        self._origin = clock()
        self._lock = threading.Lock()
        self._records: List[TraceRecord] = []
        self._sinks: Tuple["TraceSink", ...] = tuple(sinks)
        self._buffer = buffer
        self._emitted = 0
        self._sim_time = 0.0

    @property
    def sinks(self) -> Tuple["TraceSink", ...]:
        return self._sinks

    @property
    def emitted(self) -> int:
        """Events emitted so far (buffered or not)."""
        return self._emitted

    @property
    def sim_time(self) -> float:
        """Current simulated-clock reading (seconds)."""
        return self._sim_time

    def advance_sim(self, seconds: float) -> None:
        with self._lock:
            self._sim_time += seconds

    def emit(self, event: TraceEvent, sim_time: Optional[float] = None) -> None:
        """Record *event* now; *sim_time* overrides the tracked sim clock."""
        wall = self._clock() - self._origin
        with self._lock:
            record = TraceRecord(
                seq=self._emitted,
                wall_time=wall,
                sim_time=self._sim_time if sim_time is None else sim_time,
                event=event,
            )
            self._emitted += 1
            if self._buffer:
                self._records.append(record)
            for sink in self._sinks:
                sink.write(record)

    @property
    def records(self) -> Tuple[TraceRecord, ...]:
        with self._lock:
            return tuple(self._records)

    def events(self, kind: Optional[str] = None) -> Tuple[TraceEvent, ...]:
        """The buffered events, optionally filtered to one kind."""
        return tuple(
            r.event
            for r in self.records
            if kind is None or r.event.kind == kind
        )

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._emitted = 0
            self._sim_time = 0.0

    def close_sinks(self) -> None:
        """Flush and close every attached sink."""
        for sink in self._sinks:
            sink.close()


_CURRENT: contextvars.ContextVar[Tracer] = contextvars.ContextVar(
    "repro_obs_tracer", default=NULL_TRACER
)


def current_tracer() -> Tracer:
    """The ambient tracer (the shared ``NULL_TRACER`` unless installed)."""
    return _CURRENT.get()


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install *tracer* as the ambient tracer for the enclosed block."""
    token = _CURRENT.set(tracer)
    try:
        yield tracer
    finally:
        _CURRENT.reset(token)


class timed:
    """Measure a wall-clock span; usable as context manager or decorator.

    As a context manager the span object is yielded and exposes
    ``.seconds`` after exit::

        with timed("fig15.tdp") as span:
            solve_min_latency(...)
        print(span.seconds)

    As a decorator every call of the wrapped function is measured::

        @timed("experiment.run")
        def run(...): ...

    Each closed span observes ``time.<label>`` on the metrics registry and
    emits :class:`~repro.obs.events.SpanCompleted` on the tracer (the
    ambient one by default), giving both aggregate and per-occurrence
    views of the same measurement.
    """

    def __init__(
        self,
        label: str,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.label = label
        self.seconds: Optional[float] = None
        self._registry = registry
        self._tracer = tracer
        self._clock = clock
        self._start: Optional[float] = None

    def __enter__(self) -> "timed":
        self._start = self._clock()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        assert self._start is not None, "span exited without entering"
        self.seconds = self._clock() - self._start
        registry = self._registry if self._registry is not None else get_registry()
        registry.histogram(f"time.{self.label}").observe(self.seconds)
        tracer = self._tracer if self._tracer is not None else current_tracer()
        if tracer.enabled:
            tracer.emit(SpanCompleted(label=self.label, seconds=self.seconds))

    def __call__(self, func: Callable[..., Any]) -> Callable[..., Any]:
        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            # A fresh span per call: the instance-as-context-manager form
            # is single-use, the decorator form is reentrant.
            with timed(
                self.label,
                registry=self._registry,
                tracer=self._tracer,
                clock=self._clock,
            ):
                return func(*args, **kwargs)

        return wrapper
