"""JSONL import/export of trace buffers.

One JSON object per line, schema::

    {"seq": 0, "wall_time": 0.0012, "sim_time": 0.0,
     "kind": "RoundPosted", "data": {"round_index": 0, ...}}

The format is append-friendly (a crashed run leaves a readable prefix)
and greppable (``grep RWLRetry trace.jsonl``).  :func:`read_jsonl`
reconstructs the typed events, so ``write -> read`` is lossless; the
round-trip is pinned by the test suite.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, List, Tuple, Union

from repro.obs.events import TraceRecord
from repro.obs.tracer import RecordingTracer

PathOrFile = Union[str, Path, IO[str]]


def _records_of(
    source: Union[RecordingTracer, Iterable[TraceRecord]],
) -> Tuple[TraceRecord, ...]:
    if isinstance(source, RecordingTracer):
        return source.records
    return tuple(source)


def write_jsonl(
    source: Union[RecordingTracer, Iterable[TraceRecord]],
    destination: PathOrFile,
) -> int:
    """Write a trace to *destination* as JSONL; returns the record count.

    Path destinations are written atomically (temp-file + rename), so an
    interrupted export leaves the previous trace intact rather than a
    truncated one.  For incremental streaming during a run, use
    :class:`~repro.obs.sinks.StreamingJsonlSink` instead.
    """
    records = _records_of(source)
    lines = [json.dumps(record.to_dict()) + "\n" for record in records]
    if hasattr(destination, "write"):
        for line in lines:
            destination.write(line)
    else:
        from repro.persistence import save_text

        save_text("".join(lines), destination)
    return len(records)


def read_jsonl(source: PathOrFile) -> List[TraceRecord]:
    """Parse a JSONL trace back into typed :class:`TraceRecord` objects."""
    if hasattr(source, "read"):
        lines = source.read().splitlines()
    else:
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    records = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        records.append(TraceRecord.from_dict(json.loads(line)))
    return records
