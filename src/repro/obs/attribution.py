"""Per-query latency attribution: waterfalls whose parts sum to the whole.

The scheduler tiles every finished query's lifetime ``[arrival,
completion]`` with non-overlapping, gap-free *chunks*, each labelled with
the component that consumed that stretch of simulated time:

========== =========================================================
component  meaning
========== =========================================================
queue_wait arrival until the query's first packed round
round_post a shared platform round the query's batch rode on
retry      a shared round re-running questions the query had lost
defer      the circuit breaker parked the whole scheduler
outage     a shared round the platform ate entirely
stall      runnable but not packed (backpressure / breaker probe)
hedge      a shared round whose chunk was mirrored to a hedge backend
========== =========================================================

Because chunks are stored as *absolute* simulated timestamps and tile the
interval exactly (each chunk starts where the previous ended), the
component durations provably sum to the end-to-end latency — the same
telescoping sum the scheduler reports as ``QueryResult.latency``.  The
hypothesis suite (``tests/service/test_attribution_property.py``) checks
this exactly, faults and breaker trips included.

Chunks double as leaf spans in the causal tree (:mod:`repro.obs.spans`):
the leaf span *name* is the component, so :func:`waterfalls_from_records`
can rebuild every waterfall from a ``--trace`` JSONL file alone — that is
what ``tdp-repro explain`` renders.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import InvalidParameterError
from repro.obs.events import TraceRecord
from repro.obs.spans import Span, assemble_spans
from repro.obs.stats import percentile

#: Attribution components in canonical (waterfall) order.
COMPONENTS: Tuple[str, ...] = (
    "queue_wait",
    "round_post",
    "retry",
    "defer",
    "outage",
    "stall",
    "hedge",
)

_COMPONENT_SET = frozenset(COMPONENTS)


def component_metric(component: str) -> str:
    """Registry name of a component's latency histogram (labeled series)."""
    from repro.obs.metrics import labeled_name

    return labeled_name("service.latency_component", {"component": component})


@dataclass(frozen=True)
class Chunk:
    """One attributed stretch of a query's lifetime (absolute sim time)."""

    component: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class QueryWaterfall:
    """A finished query's fully-attributed timeline.

    Attributes:
        query_id: the query.
        start: arrival time (simulated seconds).
        end: completion time; ``None`` when the trace ended mid-flight.
        status: terminal span status (``"ok"``/``"degraded"``), ``None``
            while open.
        chunks: the tiling, in start order.
    """

    query_id: int
    start: float
    end: Optional[float]
    status: Optional[str]
    chunks: Tuple[Chunk, ...]

    @property
    def total(self) -> Optional[float]:
        """End-to-end latency — the *same float expression* the scheduler
        uses (``end - start``), so equality with ``QueryResult.latency``
        is exact, not approximate."""
        return None if self.end is None else self.end - self.start

    @property
    def chunk_sum(self) -> Optional[float]:
        """Total chunk time, accumulated exactly (``fsum`` over signed
        endpoints, not over per-chunk differences).  When
        :meth:`validate` passes, interior boundaries cancel bitwise and
        the exact sum telescopes to ``end - start`` — so this equals
        :attr:`total` with ``==``, never ``approx``.  Per-chunk
        ``duration`` values each round once and may lose the last bit."""
        if self.end is None:
            return None
        return math.fsum(
            value for c in self.chunks for value in (c.end, -c.start)
        )

    def components(self) -> Dict[str, float]:
        """Seconds per component, canonical order, zero entries omitted."""
        totals: Dict[str, float] = {}
        for component in COMPONENTS:
            seconds = math.fsum(
                c.duration for c in self.chunks if c.component == component
            )
            if seconds:
                totals[component] = seconds
        return totals

    def validate(self) -> None:
        """Check the tiling invariant; raise ``InvalidParameterError`` if
        the chunks do not exactly tile ``[start, end]``."""
        if self.end is None:
            raise InvalidParameterError(
                f"query {self.query_id} waterfall is still open"
            )
        if not self.chunks:
            if self.end != self.start:
                raise InvalidParameterError(
                    f"query {self.query_id} has latency "
                    f"{self.end - self.start} but no chunks"
                )
            return
        cursor = self.start
        for chunk in self.chunks:
            if chunk.start != cursor:
                raise InvalidParameterError(
                    f"query {self.query_id}: chunk {chunk.component} starts "
                    f"at {chunk.start}, expected {cursor}"
                )
            if chunk.end < chunk.start:
                raise InvalidParameterError(
                    f"query {self.query_id}: chunk {chunk.component} "
                    f"ends before it starts"
                )
            cursor = chunk.end
        if cursor != self.end:
            raise InvalidParameterError(
                f"query {self.query_id}: chunks end at {cursor}, "
                f"query ended at {self.end}"
            )


def chunks_from_spans(spans: Mapping[str, Span], query_id: int) -> List[Chunk]:
    """The attribution leaves owned by *query_id*, in start order."""
    chunks = [
        Chunk(component=s.name, start=s.start, end=s.end)
        for s in spans.values()
        if s.query_id == query_id and s.name in _COMPONENT_SET
        and s.end is not None
    ]
    chunks.sort(key=lambda c: (c.start, c.end))
    return chunks


def waterfalls_from_records(
    records: Iterable[TraceRecord],
) -> Dict[int, QueryWaterfall]:
    """Rebuild every query waterfall present in a trace."""
    spans = assemble_spans(records)
    waterfalls: Dict[int, QueryWaterfall] = {}
    for span in spans.values():
        if span.name != "query":
            continue
        query_id = span.query_id
        waterfalls[query_id] = QueryWaterfall(
            query_id=query_id,
            start=span.start,
            end=span.end,
            status=span.status,
            chunks=tuple(chunks_from_spans(spans, query_id)),
        )
    return waterfalls


# ----------------------------------------------------------------------
# Aggregation (ServiceReport / metrics)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ComponentStat:
    """Aggregate of one component across a service run's queries.

    Attributes:
        component: attribution component name.
        total: summed simulated seconds across queries.
        p50: median per-query seconds (queries with the component).
        p95: 95th-percentile per-query seconds.
        queries: queries that spent any time in the component.
        share: fraction of all attributed seconds (0..1).
    """

    component: str
    total: float
    p50: float
    p95: float
    queries: int
    share: float


RawChunks = Mapping[int, Sequence[Tuple[str, float, float]]]


def summarize_attribution(per_query: RawChunks) -> Tuple[ComponentStat, ...]:
    """Aggregate raw ``(component, start, end)`` chunk lists per query.

    Components nobody spent time in are omitted; ``share`` is relative to
    the grand total so the stats read as a percentage breakdown.
    """
    by_component: Dict[str, List[float]] = {}
    for chunks in per_query.values():
        totals: Dict[str, float] = {}
        for component, start, end in chunks:
            totals[component] = totals.get(component, 0.0) + (end - start)
        for component, seconds in totals.items():
            by_component.setdefault(component, []).append(seconds)
    grand_total = math.fsum(
        seconds for values in by_component.values() for seconds in values
    )
    stats: List[ComponentStat] = []
    for component in COMPONENTS:
        values = by_component.get(component)
        if not values:
            continue
        total = math.fsum(values)
        stats.append(
            ComponentStat(
                component=component,
                total=total,
                p50=float(percentile(values, 50)),
                p95=float(percentile(values, 95)),
                queries=len(values),
                share=total / grand_total if grand_total else 0.0,
            )
        )
    return tuple(stats)


def render_attribution(stats: Sequence[ComponentStat]) -> List[str]:
    """Text table of an aggregated attribution (report / CLI)."""
    if not stats:
        return ["latency attribution: (no attributed queries)"]
    lines = ["latency attribution (simulated seconds):"]
    width = max(len(s.component) for s in stats)
    for s in stats:
        lines.append(
            f"  {s.component:<{width}}  total {s.total:>10.1f}  "
            f"p50 {s.p50:>8.1f}  p95 {s.p95:>8.1f}  "
            f"n={s.queries:<4d} {s.share * 100:5.1f}%"
        )
    return lines


def render_waterfall(waterfall: QueryWaterfall, width: int = 30) -> str:
    """ASCII waterfall of one query (the ``explain`` rendering)."""
    lines: List[str] = []
    total = waterfall.total
    if total is None:
        lines.append(
            f"query {waterfall.query_id}: still in flight "
            f"(arrived t={waterfall.start:g}s; trace ends mid-query)"
        )
    else:
        status = waterfall.status or "ok"
        lines.append(
            f"query {waterfall.query_id}: {status} in {total:g}s "
            f"(arrived t={waterfall.start:g}s, finished "
            f"t={waterfall.end:g}s)"
        )
    components = waterfall.components()
    if components and total:
        name_width = max(len(name) for name in components)
        for name, seconds in components.items():
            share = seconds / total
            bar = "#" * max(1, round(share * width))
            lines.append(
                f"  {name:<{name_width}}  {bar:<{width}}  "
                f"{seconds:>10.1f}s  {share * 100:5.1f}%"
            )
    if waterfall.chunks:
        lines.append("  timeline:")
        for chunk in waterfall.chunks:
            lines.append(
                f"    t={chunk.start:<10g} {chunk.component:<10} "
                f"+{chunk.duration:g}s"
            )
    return "\n".join(lines)


__all__ = [
    "COMPONENTS",
    "Chunk",
    "ComponentStat",
    "QueryWaterfall",
    "chunks_from_spans",
    "component_metric",
    "render_attribution",
    "render_waterfall",
    "summarize_attribution",
    "waterfalls_from_records",
]
