"""repro.obs — observability: tracing, metrics and profiling hooks.

Three cooperating pieces:

* a structured-event **tracer** (:mod:`repro.obs.tracer`,
  :mod:`repro.obs.events`) — typed events with wall-clock and
  simulated-clock timestamps, buffered per run, exportable to JSONL
  (:mod:`repro.obs.export`) and summarizable into a per-round
  latency/budget breakdown (:mod:`repro.obs.report`);
* a process-wide **metrics registry** (:mod:`repro.obs.metrics`) —
  counters, gauges and histograms with ``snapshot()``/``reset()``;
* **profiling spans** (:func:`repro.obs.timed`) — a context
  manager/decorator that feeds both of the above;
* **streaming sinks** (:mod:`repro.obs.sinks`) — live JSONL export of
  events as they happen, so crashed runs keep a readable trace prefix;
* **causal spans** (:mod:`repro.obs.spans`) — deterministic
  ``query -> plan -> round -> attempt`` trees riding the same event
  pipeline, plus per-query **latency attribution**
  (:mod:`repro.obs.attribution`) whose components provably sum to the
  end-to-end latency (``tdp-repro explain``);
* **solver profiling counters** (:mod:`repro.obs.profiling`) — opt-in
  work counters for the tDP solvers and the plan cache
  (``tdp-repro profile``), free when disabled;
* **OpenMetrics export** (:mod:`repro.obs.openmetrics`) — render any
  metrics snapshot in the Prometheus text exposition format;
* a **terminal dashboard** (:mod:`repro.obs.dashboard`) — sparkline view
  of per-tick scheduler telemetry (``tdp-repro serve --dashboard``,
  ``tdp-repro top``).

The engine, allocators, Reliable Worker Layer and simulated platform are
pre-instrumented; by default they see the no-op :data:`NULL_TRACER`, so
uninstrumented use costs one boolean check per potential event.  Turn
tracing on by passing a :class:`RecordingTracer` explicitly or ambiently::

    from repro import obs

    tracer = obs.RecordingTracer()
    with obs.use_tracer(tracer):
        engine.run(truth, allocation)
    obs.write_jsonl(tracer, "trace.jsonl")
    print(obs.render_trace_report(tracer.records))
    print(obs.render_snapshot(obs.get_registry().snapshot()))

or from the CLI: ``tdp-repro solve --trace out.jsonl --metrics``.
"""

from repro.obs.attribution import (
    COMPONENTS,
    Chunk,
    ComponentStat,
    QueryWaterfall,
    render_attribution,
    render_waterfall,
    summarize_attribution,
    waterfalls_from_records,
)
from repro.obs.events import (
    AlertFired,
    AlertResolved,
    AnswersReceived,
    BatchRetried,
    CandidateSetShrunk,
    DPTableBuilt,
    FaultInjected,
    QueryAdmitted,
    QueryCompleted,
    QueryScheduled,
    QueryShed,
    RWLRetry,
    RoundPosted,
    RunFinished,
    RunStarted,
    SpanClosed,
    SpanCompleted,
    SpanOpened,
    TraceEvent,
    TraceRecord,
    WorkerServiced,
    event_from_dict,
)
from repro.obs.flight import (
    BUNDLE_MANIFEST,
    FlightRecorder,
    validate_bundle,
    write_bundle,
)
from repro.obs.slo import (
    ALERT_SEVERITIES,
    SLO_OBJECTIVES,
    AlertTransition,
    BurnRateRule,
    HealthStatus,
    SLOConfig,
    SLOEngine,
    SLOTarget,
    ThresholdRule,
    default_slo_config,
    slo_config_from_dict,
)
from repro.obs.dashboard import (
    DashboardRenderer,
    render_final,
    render_frame,
    sparkline,
)
from repro.obs.export import read_jsonl, write_jsonl
from repro.obs.metrics import (
    DEFAULT_BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    declare_standard_metrics,
    get_registry,
    render_snapshot,
    snapshot_percentile,
)
from repro.obs.openmetrics import render_openmetrics, write_openmetrics
from repro.obs.profiling import (
    PROFILER,
    SolverProfiler,
    profiled,
    render_profile,
)
from repro.obs.report import render_trace_report, report_file
from repro.obs.spans import (
    Span,
    SpanContext,
    assemble_spans,
    close_span,
    current_span,
    current_span_id,
    emit_span,
    open_span,
    render_span_tree,
    span_roots,
    span_scope,
    spans_for_query,
)
from repro.obs.sinks import (
    InMemorySink,
    StreamingJsonlSink,
    TeeSink,
    TraceSink,
)
from repro.obs.stats import escalation_step, nearest_rank, percentile
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    RecordingTracer,
    Tracer,
    current_tracer,
    timed,
    use_tracer,
)

__all__ = [
    # events
    "TraceEvent",
    "TraceRecord",
    "RunStarted",
    "RoundPosted",
    "AnswersReceived",
    "CandidateSetShrunk",
    "RunFinished",
    "QueryAdmitted",
    "QueryScheduled",
    "QueryCompleted",
    "QueryShed",
    "RWLRetry",
    "BatchRetried",
    "WorkerServiced",
    "FaultInjected",
    "DPTableBuilt",
    "SpanCompleted",
    "SpanOpened",
    "SpanClosed",
    "AlertFired",
    "AlertResolved",
    "event_from_dict",
    # spans
    "Span",
    "SpanContext",
    "assemble_spans",
    "close_span",
    "current_span",
    "current_span_id",
    "emit_span",
    "open_span",
    "render_span_tree",
    "span_roots",
    "span_scope",
    "spans_for_query",
    # attribution
    "COMPONENTS",
    "Chunk",
    "ComponentStat",
    "QueryWaterfall",
    "render_attribution",
    "render_waterfall",
    "summarize_attribution",
    "waterfalls_from_records",
    # profiling
    "PROFILER",
    "SolverProfiler",
    "profiled",
    "render_profile",
    # tracer
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RecordingTracer",
    "current_tracer",
    "use_tracer",
    "timed",
    # sinks
    "TraceSink",
    "InMemorySink",
    "StreamingJsonlSink",
    "TeeSink",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKET_BOUNDS",
    "get_registry",
    "declare_standard_metrics",
    "render_snapshot",
    "snapshot_percentile",
    # stats
    "escalation_step",
    "nearest_rank",
    "percentile",
    # slo / alerts
    "ALERT_SEVERITIES",
    "SLO_OBJECTIVES",
    "SLOTarget",
    "BurnRateRule",
    "ThresholdRule",
    "SLOConfig",
    "SLOEngine",
    "AlertTransition",
    "HealthStatus",
    "default_slo_config",
    "slo_config_from_dict",
    # flight recorder
    "BUNDLE_MANIFEST",
    "FlightRecorder",
    "write_bundle",
    "validate_bundle",
    # openmetrics
    "render_openmetrics",
    "write_openmetrics",
    # dashboard
    "sparkline",
    "render_frame",
    "render_final",
    "DashboardRenderer",
    # export / report
    "write_jsonl",
    "read_jsonl",
    "render_trace_report",
    "report_file",
]
