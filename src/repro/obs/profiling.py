"""Zero-overhead-when-disabled profiling counters for the solver hot path.

The tDP solvers (:mod:`repro.core.tdp`, :mod:`repro.core.tdp_memo`) and
the service plan cache are the CPU-bound core of the reproduction; the
upcoming raw-speed pass needs *deterministic* work counters (cells
evaluated, memo hits, frontier widths) to be judged against, not just
wall time.  This module provides them with the same discipline the
tracer uses:

* a single module-level :data:`PROFILER` whose ``enabled`` flag is a
  plain attribute — hot loops pay one predicate
  (``if PROFILER.enabled:``) when profiling is off, and the instrumented
  routines batch their tallies in locals so even the enabled path adds
  O(1) dict updates per solve, not per cell;
* the :func:`profiled` context manager flips the flag, and on exit
  publishes every counter to the ambient metrics registry under
  ``solver.<name>`` — so ``tdp-repro profile`` output and OpenMetrics
  exports agree.

Counters are *work* counts (pure function of the inputs), never timings,
so two runs of the same solve report identical numbers — that is what
makes them usable as a regression harness.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional

from repro.obs.metrics import MetricsRegistry, get_registry


class SolverProfiler:
    """A named-counter sink with a branch-predictable off switch.

    Instrumented code must guard every call on :attr:`enabled`; the
    methods themselves do not re-check, keeping the enabled path cheap
    and the disabled path a single attribute load.
    """

    __slots__ = ("enabled", "_counts")

    def __init__(self) -> None:
        self.enabled = False
        self._counts: Dict[str, int] = {}

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter *name* by *amount*."""
        self._counts[name] = self._counts.get(name, 0) + amount

    def set_max(self, name: str, value: int) -> None:
        """Raise counter *name* to *value* if larger (high-water marks)."""
        if value > self._counts.get(name, 0):
            self._counts[name] = value

    def reset(self) -> None:
        """Drop all counters (does not touch :attr:`enabled`)."""
        self._counts.clear()

    def snapshot(self) -> Dict[str, int]:
        """The counters, sorted by name (deterministic rendering)."""
        return dict(sorted(self._counts.items()))

    def publish(self, registry: Optional[MetricsRegistry] = None) -> None:
        """Add every counter to ``solver.<name>`` in *registry* (ambient
        registry when omitted)."""
        registry = registry if registry is not None else get_registry()
        for name, value in sorted(self._counts.items()):
            registry.counter(f"solver.{name}").inc(value)


#: The process-wide profiler every instrumented module checks.
PROFILER = SolverProfiler()


@contextmanager
def profiled(
    registry: Optional[MetricsRegistry] = None, publish: bool = True
) -> Iterator[SolverProfiler]:
    """Enable :data:`PROFILER` for the ``with`` body.

    Counters are reset on entry; on exit the flag is restored to its
    previous value and (unless ``publish=False``) the tallies land in
    the metrics registry as ``solver.*`` counters.
    """
    previous = PROFILER.enabled
    PROFILER.reset()
    PROFILER.enabled = True
    try:
        yield PROFILER
    finally:
        PROFILER.enabled = previous
        if publish:
            PROFILER.publish(registry)


def render_profile(counts: Mapping[str, int]) -> str:
    """Aligned text table of a counter snapshot (``tdp-repro profile``)."""
    if not counts:
        return "no profiling counters recorded"
    names = sorted(counts)
    width = max(len(name) for name in names)
    lines: List[str] = [f"{'counter':<{width}}  value"]
    for name in names:
        lines.append(f"{name:<{width}}  {counts[name]}")
    return "\n".join(lines)


__all__ = ["PROFILER", "SolverProfiler", "profiled", "render_profile"]
