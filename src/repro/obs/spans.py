"""Deterministic causal spans over the tracer pipeline.

A *span* is an interval of simulated time with a name, an owner query and
a parent — together they form the causal tree

    query -> plan -> round -> batch -> retry / defer

for the multi-query service, and ``run -> round -> attempt`` for the
single-query engines.  Spans ride on the existing event pipeline as
:class:`~repro.obs.events.SpanOpened` / :class:`~repro.obs.events.SpanClosed`
pairs, so a ``--trace`` JSONL file keeps its crash-readable append-only
shape and the usual sinks (buffered or streaming) need no changes.

Two properties are deliberate:

* **Determinism.**  Span ids are structural — built from stable
  coordinates such as ``(query_id, round_index, tick)`` — and every
  timestamp in a payload is the simulated tick clock.  Two runs of the
  same workload (or a run and its journal-recovered replay) emit
  identical span trees; ``tests/service/test_span_recovery.py`` pins
  that down.
* **Zero cost when disabled.**  Emitters guard on ``tracer.enabled``;
  under the default ``NULL_TRACER`` no span objects are constructed.

The ambient *span scope* (a contextvar, mirroring
:func:`repro.obs.use_tracer`) lets deep layers that never see the
scheduler — the RWL, :class:`~repro.crowd.faults.FaultyPlatform`, the
circuit breaker — tag their events with the enclosing span id and anchor
their local relative clocks onto the global simulated clock.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from repro.obs.events import SpanClosed, SpanOpened, TraceRecord
from repro.obs.tracer import Tracer


@dataclass(frozen=True)
class SpanContext:
    """The ambient span a deeper layer is running under.

    Attributes:
        span_id: enclosing span's id.
        base_time: simulated-clock seconds at the scope's start; layers
            that track *local* elapsed time (the RWL's per-batch latency
            accumulator) add it to place their sub-spans on the global
            clock.
    """

    span_id: str
    base_time: float = 0.0


_SCOPE: ContextVar[Optional[SpanContext]] = ContextVar(
    "repro_span_scope", default=None
)


@contextmanager
def span_scope(span_id: str, base_time: float = 0.0) -> Iterator[SpanContext]:
    """Make ``span_id`` the ambient parent span for the ``with`` body."""
    context = SpanContext(span_id=span_id, base_time=base_time)
    token = _SCOPE.set(context)
    try:
        yield context
    finally:
        _SCOPE.reset(token)


def current_span() -> Optional[SpanContext]:
    """The ambient span scope, or ``None`` outside any scope."""
    return _SCOPE.get()


def current_span_id() -> str:
    """The ambient span id, ``""`` outside any scope (event-field form)."""
    context = _SCOPE.get()
    return context.span_id if context is not None else ""


def open_span(
    tracer: Tracer,
    span_id: str,
    name: str,
    *,
    start: float,
    parent_id: Optional[str] = None,
    query_id: int = -1,
    detail: str = "",
) -> None:
    """Emit a :class:`SpanOpened` stamped at simulated time *start*."""
    tracer.emit(
        SpanOpened(
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            start=start,
            query_id=query_id,
            detail=detail,
        ),
        sim_time=start,
    )


def close_span(
    tracer: Tracer, span_id: str, *, end: float, status: str = "ok"
) -> None:
    """Emit a :class:`SpanClosed` stamped at simulated time *end*."""
    tracer.emit(SpanClosed(span_id=span_id, end=end, status=status), sim_time=end)


def emit_span(
    tracer: Tracer,
    span_id: str,
    name: str,
    *,
    start: float,
    end: float,
    parent_id: Optional[str] = None,
    query_id: int = -1,
    detail: str = "",
    status: str = "ok",
) -> None:
    """Emit an already-finished (leaf) span as an open/close pair."""
    open_span(
        tracer,
        span_id,
        name,
        start=start,
        parent_id=parent_id,
        query_id=query_id,
        detail=detail,
    )
    close_span(tracer, span_id, end=end, status=status)


# ----------------------------------------------------------------------
# Trace-side reassembly
# ----------------------------------------------------------------------
@dataclass
class Span:
    """One reassembled span of a trace (see :func:`assemble_spans`).

    ``end``/``status`` stay ``None`` for spans whose close never made it
    into the trace (a crash mid-span) — renderers mark those ``open``.
    """

    span_id: str
    parent_id: Optional[str]
    name: str
    start: float
    query_id: int = -1
    detail: str = ""
    end: Optional[float] = None
    status: Optional[str] = None
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> Optional[float]:
        """Simulated seconds the span covered, ``None`` while open."""
        return None if self.end is None else self.end - self.start


def assemble_spans(records: Iterable[TraceRecord]) -> Dict[str, Span]:
    """Rebuild the span forest of a trace, keyed by span id.

    Tolerant by design — traces are read after crashes and recoveries:

    * an unmatched :class:`SpanClosed` (its open predates a recovery
      snapshot) creates a stub span with name ``"?"`` and the close time
      as its start;
    * a duplicate open keeps the first payload; a duplicate close keeps
      the last (recovery replays converge on the final state).

    Children lists are ordered by ``(start, arrival)``.
    """
    spans: Dict[str, Span] = {}
    order: Dict[str, int] = {}
    for record in records:
        event = record.event
        if isinstance(event, SpanOpened):
            if event.span_id not in spans:
                spans[event.span_id] = Span(
                    span_id=event.span_id,
                    parent_id=event.parent_id,
                    name=event.name,
                    start=event.start,
                    query_id=event.query_id,
                    detail=event.detail,
                )
                order[event.span_id] = len(order)
        elif isinstance(event, SpanClosed):
            span = spans.get(event.span_id)
            if span is None:
                span = Span(
                    span_id=event.span_id,
                    parent_id=None,
                    name="?",
                    start=event.end,
                )
                spans[event.span_id] = span
                order[event.span_id] = len(order)
            span.end = event.end
            span.status = event.status
    for span in spans.values():
        if span.parent_id is not None:
            parent = spans.get(span.parent_id)
            if parent is not None:
                parent.children.append(span)
    for span in spans.values():
        span.children.sort(key=lambda s: (s.start, order[s.span_id]))
    return spans


def span_roots(spans: Dict[str, Span]) -> List[Span]:
    """The forest's roots (no parent, or parent missing from the trace)."""
    roots = [
        span
        for span in spans.values()
        if span.parent_id is None or span.parent_id not in spans
    ]
    roots.sort(key=lambda s: (s.start, s.span_id))
    return roots


def render_span_tree(span: Span, indent: str = "") -> List[str]:
    """ASCII-render one span subtree (``tdp-repro explain --tree``)."""
    if span.end is None:
        timing = f"t={span.start:g}s (open)"
    else:
        timing = f"t={span.start:g}s +{span.end - span.start:g}s"
    status = "" if span.status in (None, "ok") else f" [{span.status}]"
    detail = f" ({span.detail})" if span.detail else ""
    lines = [f"{indent}{span.name} <{span.span_id}> {timing}{status}{detail}"]
    for child in span.children:
        lines.extend(render_span_tree(child, indent + "  "))
    return lines


def spans_for_query(spans: Dict[str, Span], query_id: int) -> List[Span]:
    """All spans owned by *query_id*, in start order."""
    owned = [s for s in spans.values() if s.query_id == query_id]
    owned.sort(key=lambda s: (s.start, s.span_id))
    return owned


__all__ = [
    "Span",
    "SpanContext",
    "assemble_spans",
    "close_span",
    "current_span",
    "current_span_id",
    "emit_span",
    "open_span",
    "render_span_tree",
    "span_roots",
    "span_scope",
    "spans_for_query",
]
