"""Turn a trace into a human-readable latency/budget breakdown.

The per-round table answers the questions the paper's latency argument is
about: how many candidates entered each round, how much of the budget the
round spent, how long it took (simulated platform seconds), and how the
total latency accumulates.  Sections for DP-solver builds, RWL repairs and
profiling spans follow when the trace contains them.

Use it programmatically (:func:`render_trace_report`) or straight from a
JSONL file written by ``tdp-repro solve --trace`` (:func:`report_file`)::

    python -c "from repro.obs.report import report_file; print(report_file('out.jsonl'))"
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.obs.events import TraceRecord
from repro.obs.export import read_jsonl


def _format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def render(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))
    lines = [render(headers), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)


def render_trace_report(records: Sequence[TraceRecord]) -> str:
    """Render a full trace as a multi-section text report."""
    sections: List[str] = []

    runs = [r for r in records if r.event.kind == "RunStarted"]
    finishes = [r for r in records if r.event.kind == "RunFinished"]
    if runs:
        start = runs[0].event
        header = (
            f"run: {start.engine}, c0={start.n_elements}, "
            f"budget={start.budget}"
        )
        if finishes:
            end = finishes[-1].event
            status = "singleton" if end.singleton else "ambiguous"
            header += (
                f"\nresult: MAX={end.winner} ({status}) in {end.rounds_run} "
                f"rounds, {end.total_questions} questions, "
                f"{end.total_latency:.1f} s simulated"
            )
        sections.append(header)

    sections.append(_round_table(records))

    dp_rows = [
        [
            r.event.solver,
            str(r.event.n_elements),
            str(r.event.budget),
            str(r.event.states),
            f"{r.event.seconds * 1000:.2f}",
        ]
        for r in records
        if r.event.kind == "DPTableBuilt"
    ]
    if dp_rows:
        sections.append(
            "allocator DP builds:\n"
            + _format_table(
                ("solver", "c0", "budget", "states", "build (ms)"), dp_rows
            )
        )

    rwl = [r.event for r in records if r.event.kind == "RWLRetry"]
    if rwl:
        total_flips = sum(e.majority_flips for e in rwl)
        overhead = sum(e.questions_posted - e.distinct_questions for e in rwl)
        sections.append(
            f"RWL repairs: {len(rwl)} batch(es) needed cycle resolution, "
            f"{total_flips} answer(s) flipped, "
            f"{overhead} redundant question(s) posted"
        )

    spans = [r.event for r in records if r.event.kind == "SpanCompleted"]
    if spans:
        by_label: Dict[str, List[float]] = {}
        for span in spans:
            by_label.setdefault(span.label, []).append(span.seconds)
        span_rows = [
            [
                label,
                str(len(values)),
                f"{sum(values) * 1000:.2f}",
                f"{1000 * sum(values) / len(values):.2f}",
            ]
            for label, values in sorted(by_label.items())
        ]
        sections.append(
            "profiling spans:\n"
            + _format_table(("label", "calls", "total (ms)", "mean (ms)"), span_rows)
        )

    return "\n\n".join(sections)


def _round_table(records: Sequence[TraceRecord]) -> str:
    """The per-round latency/budget breakdown (the report's centerpiece)."""
    posted: Dict[int, object] = {}
    received: Dict[int, object] = {}
    shrunk: Dict[int, object] = {}
    for record in records:
        event = record.event
        if event.kind == "RoundPosted":
            posted[event.round_index] = event
        elif event.kind == "AnswersReceived":
            received[event.round_index] = event
        elif event.kind == "CandidateSetShrunk":
            shrunk[event.round_index] = event
    if not posted:
        return "(no rounds recorded)"
    rows = []
    cumulative = 0.0
    for index in sorted(posted):
        post = posted[index]
        recv = received.get(index)
        shrink = shrunk.get(index)
        latency = recv.latency if recv is not None else float("nan")
        cumulative += 0.0 if recv is None else recv.latency
        rows.append(
            [
                str(index),
                str(post.candidates_before),
                "-" if shrink is None else str(shrink.candidates_after),
                str(post.budget),
                str(post.questions_posted),
                f"{latency:.1f}",
                f"{cumulative:.1f}",
            ]
        )
    return "per-round breakdown:\n" + _format_table(
        (
            "round",
            "cand in",
            "cand out",
            "budget",
            "questions",
            "latency (s)",
            "cum (s)",
        ),
        rows,
    )


def report_file(path: Union[str, Path]) -> str:
    """Read a JSONL trace file and render its report."""
    return render_trace_report(read_jsonl(path))
