"""JSON persistence for the library's value objects.

Crowdsourced MAX operations run for minutes to hours of wall-clock time; a
deployment wants to checkpoint the accumulated evidence between rounds and
archive finished runs.  This module serializes the three long-lived value
types — allocations, answer graphs and run results — to plain JSON-ready
dictionaries, with strict validation on the way back in.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.core.allocation import Allocation
from repro.core.latency import (
    LatencyFunction,
    LinearLatency,
    PiecewiseLinearLatency,
    PowerLawLatency,
    TabulatedLatency,
)
from repro.crowd.error_models import (
    DistanceSensitiveError,
    ErrorModel,
    PerfectWorkers,
    UniformError,
)
from repro.crowd.workers import WorkerPoolConfig
from repro.engine.results import MaxRunResult, RoundRecord
from repro.engine.session import MaxSession
from repro.errors import InvalidParameterError
from repro.graphs.answer_graph import AnswerGraph
from repro.selection.registry import selector_by_name
from repro.types import Answer

_FORMAT_VERSION = 1


def _require(payload: Dict[str, Any], key: str, kind: str) -> Any:
    try:
        return payload[key]
    except (KeyError, TypeError):
        raise InvalidParameterError(
            f"malformed {kind} payload: missing key {key!r}"
        ) from None


# ----------------------------------------------------------------------
# Allocation
# ----------------------------------------------------------------------
def allocation_to_dict(allocation: Allocation) -> Dict[str, Any]:
    """Serialize an :class:`Allocation`."""
    return {
        "version": _FORMAT_VERSION,
        "kind": "allocation",
        "round_budgets": list(allocation.round_budgets),
        "element_sequence": (
            list(allocation.element_sequence)
            if allocation.element_sequence is not None
            else None
        ),
        "allocator_name": allocation.allocator_name,
    }


def allocation_from_dict(payload: Dict[str, Any]) -> Allocation:
    """Rebuild an :class:`Allocation` (validation re-runs on construction)."""
    sequence = _require(payload, "element_sequence", "allocation")
    return Allocation(
        round_budgets=tuple(_require(payload, "round_budgets", "allocation")),
        element_sequence=tuple(sequence) if sequence is not None else None,
        allocator_name=payload.get("allocator_name", ""),
    )


# ----------------------------------------------------------------------
# AnswerGraph
# ----------------------------------------------------------------------
def answer_graph_to_dict(graph: AnswerGraph) -> Dict[str, Any]:
    """Serialize an :class:`AnswerGraph` (elements + answer edges)."""
    return {
        "version": _FORMAT_VERSION,
        "kind": "answer_graph",
        "elements": sorted(graph.elements),
        "answers": sorted(
            (answer.winner, answer.loser) for answer in graph.iter_answers()
        ),
    }


def answer_graph_from_dict(payload: Dict[str, Any]) -> AnswerGraph:
    """Rebuild an :class:`AnswerGraph`; re-validates every answer."""
    graph = AnswerGraph(_require(payload, "elements", "answer_graph"))
    for winner, loser in _require(payload, "answers", "answer_graph"):
        graph.record(Answer(winner=winner, loser=loser))
    return graph


# ----------------------------------------------------------------------
# MaxRunResult
# ----------------------------------------------------------------------
def run_result_to_dict(result: MaxRunResult) -> Dict[str, Any]:
    """Serialize a finished run, including the per-round trace."""
    return {
        "version": _FORMAT_VERSION,
        "kind": "max_run_result",
        "winner": result.winner,
        "true_max": result.true_max,
        "singleton_termination": result.singleton_termination,
        "total_latency": result.total_latency,
        "total_questions": result.total_questions,
        "records": [
            {
                "round_index": record.round_index,
                "budget": record.budget,
                "candidates_before": record.candidates_before,
                "questions_posted": record.questions_posted,
                "latency": record.latency,
                "candidates_after": record.candidates_after,
            }
            for record in result.records
        ],
        "allocation": (
            allocation_to_dict(result.allocation)
            if result.allocation is not None
            else None
        ),
    }


def run_result_from_dict(payload: Dict[str, Any]) -> MaxRunResult:
    """Rebuild a :class:`MaxRunResult` from its serialized form."""
    records = tuple(
        RoundRecord(
            round_index=_require(entry, "round_index", "round_record"),
            budget=_require(entry, "budget", "round_record"),
            candidates_before=_require(
                entry, "candidates_before", "round_record"
            ),
            questions_posted=_require(
                entry, "questions_posted", "round_record"
            ),
            latency=_require(entry, "latency", "round_record"),
            candidates_after=_require(
                entry, "candidates_after", "round_record"
            ),
        )
        for entry in _require(payload, "records", "max_run_result")
    )
    allocation_payload = payload.get("allocation")
    return MaxRunResult(
        winner=_require(payload, "winner", "max_run_result"),
        true_max=_require(payload, "true_max", "max_run_result"),
        singleton_termination=_require(
            payload, "singleton_termination", "max_run_result"
        ),
        total_latency=_require(payload, "total_latency", "max_run_result"),
        total_questions=_require(payload, "total_questions", "max_run_result"),
        records=records,
        allocation=(
            allocation_from_dict(allocation_payload)
            if allocation_payload is not None
            else None
        ),
    )


# ----------------------------------------------------------------------
# MaxSession checkpoints
# ----------------------------------------------------------------------
def session_to_dict(
    session: MaxSession, allow_pending: bool = False
) -> Dict[str, Any]:
    """Checkpoint a :class:`MaxSession`.

    Captures everything a resumed session needs to finish with the same
    winner an uninterrupted run would declare: the allocation, selector
    name, accumulated evidence, round/question counters and the exact RNG
    state (so upcoming question selections replay bit-identically).

    With ``allow_pending`` a session that is awaiting answers can also be
    checkpointed: the handed-out questions are persisted verbatim (the
    service journal snapshots between scheduler ticks, which can land
    inside a round).  The saved RNG state is then the *post-selection*
    state, so the resumed session's next round selects identically.

    Raises:
        InvalidParameterError: while a round is pending and
            ``allow_pending`` is false — checkpoint after
            :meth:`~repro.engine.session.MaxSession.submit` instead.
    """
    if session.awaiting_answers and not allow_pending:
        raise InvalidParameterError(
            "cannot checkpoint a session that is awaiting answers; "
            "submit the pending round first"
        )
    pending = session.pending
    return {
        "version": _FORMAT_VERSION,
        "kind": "max_session",
        "allocation": allocation_to_dict(session.allocation),
        "selector": session.selector.name,
        "n_elements": len(session.evidence.elements),
        "round_index": session.round_index,
        "questions_posted": session.questions_posted,
        "rounds_executed": session.rounds_executed,
        "evidence": answer_graph_to_dict(session.evidence),
        "rng_state": session.rng.bit_generator.state,
        "pending": (
            [[int(a), int(b)] for a, b in pending]
            if pending is not None
            else None
        ),
    }


def session_from_dict(payload: Dict[str, Any]) -> MaxSession:
    """Resume a :class:`MaxSession` from a checkpoint payload."""
    rng_state = _require(payload, "rng_state", "max_session")
    if not isinstance(rng_state, dict) or "bit_generator" not in rng_state:
        raise InvalidParameterError(
            "malformed max_session payload: rng_state must be a "
            "bit-generator state dict"
        )
    bit_generator_cls = getattr(np.random, str(rng_state["bit_generator"]), None)
    if bit_generator_cls is None:
        raise InvalidParameterError(
            f"unknown bit generator {rng_state['bit_generator']!r} "
            f"in max_session payload"
        )
    bit_generator = bit_generator_cls()
    bit_generator.state = rng_state
    pending = payload.get("pending")
    return MaxSession.restore(
        allocation_from_dict(_require(payload, "allocation", "max_session")),
        selector_by_name(_require(payload, "selector", "max_session")),
        _require(payload, "n_elements", "max_session"),
        np.random.Generator(bit_generator),
        evidence=answer_graph_from_dict(
            _require(payload, "evidence", "max_session")
        ),
        round_index=_require(payload, "round_index", "max_session"),
        questions_posted=_require(payload, "questions_posted", "max_session"),
        rounds_executed=_require(payload, "rounds_executed", "max_session"),
        pending=(
            [(pair[0], pair[1]) for pair in pending]
            if pending is not None
            else None
        ),
    )


# ----------------------------------------------------------------------
# Latency functions
# ----------------------------------------------------------------------
def latency_to_dict(latency: LatencyFunction) -> Dict[str, Any]:
    """Serialize one of the built-in latency models.

    Raises:
        InvalidParameterError: for latency classes this module does not
            know how to rebuild (e.g. ad-hoc subclasses in tests).
    """
    if isinstance(latency, LinearLatency):
        return {
            "version": _FORMAT_VERSION,
            "kind": "latency",
            "model": "linear",
            "delta": latency.delta,
            "alpha": latency.alpha,
        }
    if isinstance(latency, PowerLawLatency):
        return {
            "version": _FORMAT_VERSION,
            "kind": "latency",
            "model": "power_law",
            "delta": latency.delta,
            "alpha": latency.alpha,
            "p": latency.p,
        }
    if isinstance(latency, TabulatedLatency):
        # Serialize the *cleaned* knots; the isotonic clean-up is
        # idempotent, so the round trip reproduces the same function
        # (and the same repr, which keys the service plan cache).
        inner = latency._inner
        return {
            "version": _FORMAT_VERSION,
            "kind": "latency",
            "model": "tabulated",
            "knots": [[q, t] for q, t in zip(inner._qs, inner._ts)],
        }
    if isinstance(latency, PiecewiseLinearLatency):
        return {
            "version": _FORMAT_VERSION,
            "kind": "latency",
            "model": "piecewise",
            "knots": [[q, t] for q, t in zip(latency._qs, latency._ts)],
        }
    raise InvalidParameterError(
        f"cannot serialize latency model {type(latency).__name__}; "
        f"supported: LinearLatency, PowerLawLatency, "
        f"PiecewiseLinearLatency, TabulatedLatency"
    )


def latency_from_dict(payload: Dict[str, Any]) -> LatencyFunction:
    """Rebuild a latency model serialized by :func:`latency_to_dict`."""
    model = _require(payload, "model", "latency")
    if model == "linear":
        return LinearLatency(
            delta=_require(payload, "delta", "latency"),
            alpha=_require(payload, "alpha", "latency"),
        )
    if model == "power_law":
        return PowerLawLatency(
            delta=_require(payload, "delta", "latency"),
            alpha=_require(payload, "alpha", "latency"),
            p=_require(payload, "p", "latency"),
        )
    if model == "tabulated":
        return TabulatedLatency(
            [(q, t) for q, t in _require(payload, "knots", "latency")]
        )
    if model == "piecewise":
        return PiecewiseLinearLatency(
            [(q, t) for q, t in _require(payload, "knots", "latency")]
        )
    raise InvalidParameterError(f"unknown latency model {model!r}")


# ----------------------------------------------------------------------
# Worker error models / worker pool configuration
# ----------------------------------------------------------------------
def error_model_to_dict(model: Optional[ErrorModel]) -> Optional[Dict[str, Any]]:
    """Serialize a worker error model (``None`` passes through)."""
    if model is None:
        return None
    if isinstance(model, PerfectWorkers):
        return {"kind": "error_model", "model": "perfect"}
    if isinstance(model, UniformError):
        return {"kind": "error_model", "model": "uniform", "rate": model.rate}
    if isinstance(model, DistanceSensitiveError):
        return {
            "kind": "error_model",
            "model": "distance",
            "base": model.base,
            "scale": model.scale,
        }
    raise InvalidParameterError(
        f"cannot serialize error model {type(model).__name__}"
    )


def error_model_from_dict(
    payload: Optional[Dict[str, Any]],
) -> Optional[ErrorModel]:
    """Rebuild the counterpart of :func:`error_model_to_dict`."""
    if payload is None:
        return None
    model = _require(payload, "model", "error_model")
    if model == "perfect":
        return PerfectWorkers()
    if model == "uniform":
        return UniformError(rate=_require(payload, "rate", "error_model"))
    if model == "distance":
        return DistanceSensitiveError(
            base=_require(payload, "base", "error_model"),
            scale=_require(payload, "scale", "error_model"),
        )
    raise InvalidParameterError(f"unknown error model {model!r}")


def worker_config_to_dict(
    config: Optional[WorkerPoolConfig],
) -> Optional[Dict[str, Any]]:
    """Serialize a worker pool configuration (``None`` passes through)."""
    if config is None:
        return None
    return dataclasses.asdict(config)


def worker_config_from_dict(
    payload: Optional[Dict[str, Any]],
) -> Optional[WorkerPoolConfig]:
    """Rebuild the counterpart of :func:`worker_config_to_dict`."""
    if payload is None:
        return None
    return WorkerPoolConfig(**payload)


# ----------------------------------------------------------------------
# File helpers
# ----------------------------------------------------------------------
def save_text(text: str, path: Union[str, Path]) -> None:
    """Atomically write *text* to *path*.

    Written to a temp file in the target directory, fsync'd and renamed
    into place — a crash mid-write can leave a stale file behind, never a
    torn one, and a concurrent reader sees either the old contents or the
    new.  The trace exporter and the OpenMetrics textfile writer both use
    this; the latter rewrites its file every scheduler tick, so rename
    atomicity is what keeps scrapes consistent.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise


def save_json(payload: Dict[str, Any], path: Union[str, Path]) -> None:
    """Atomically write a serialized payload to *path* as JSON.

    The payload is serialized first (so an unserializable payload leaves
    an existing file untouched), then handed to :func:`save_text`.
    """
    save_text(json.dumps(payload, indent=2), path)


def load_json(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a payload written by :func:`save_json`.

    Raises:
        InvalidParameterError: if the file is not valid JSON or does not
            look like a payload produced by this module.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise InvalidParameterError(f"no such checkpoint file: {path}") from None
    except json.JSONDecodeError as error:
        raise InvalidParameterError(f"invalid JSON in {path}: {error}") from None
    if not isinstance(payload, dict) or "kind" not in payload:
        raise InvalidParameterError(
            f"{path} does not contain a repro persistence payload"
        )
    return payload
