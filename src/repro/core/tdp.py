"""tDP: the optimal-latency budget allocator (Algorithm 1 of the paper).

The paper formulates *MinLatency* (Problem 1): pick a tournament-graph
sequence ``(c_0, c_1, ..., c_r = 1)`` minimizing ``sum_i L(Q(c_{i-1}, c_i))``
subject to ``sum_i Q(c_{i-1}, c_i) <= b``, and solves it with a top-down
dynamic program over states ``(remaining budget, remaining candidates)``.

This module solves the identical problem with an equivalent — but much
faster — dynamic program over *Pareto frontiers*.  For every candidate count
``c`` we compute the set of non-dominated ``(total questions, total
latency)`` pairs achievable by tournament sequences from ``c`` down to 1:

    P(1) = {(0, 0)}
    P(c) = pareto( { (Q(c, c') + cost, L(Q(c, c')) + lat)
                     : c' in [1, c),  (cost, lat) in P(c') } )

The optimal allocation for budget ``b`` is the frontier point of ``P(c_0)``
with the lowest latency among those with ``cost <= b`` — by construction the
last point of the (cost-ascending, latency-strictly-descending) frontier.
Points costing more than ``b`` are pruned during construction, which keeps
frontiers tiny; for a linear ``L`` the frontier of ``c`` has at most
``ceil(log2 c)`` points (one per useful round count).

The literal top-down memoization of Algorithm 1 is also available as
:class:`repro.core.tdp_memo.MemoizedTDPAllocator` and is used to
cross-validate this solver in the test suite.  Both are exact; this one
makes the large-``c_0`` experiments of Section 6 practical in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.allocation import Allocation, BudgetAllocator
from repro.core.latency import LatencyFunction
from repro.core.questions import tournament_questions
from repro.errors import InvalidParameterError
from repro.obs.events import DPTableBuilt
from repro.obs.metrics import get_registry
from repro.obs.profiling import PROFILER
from repro.obs.tracer import current_tracer, timed

_INITIAL_FRONTIER_WIDTH = 16


def _record_dp_build(
    solver: str, n_elements: int, budget: int, seconds: float, states: int
) -> None:
    """Feed metrics + the ambient tracer after a DP table build."""
    registry = get_registry()
    registry.counter("tdp.solver_calls").inc()
    registry.counter("tdp.frontier_points").inc(states)
    if PROFILER.enabled:
        PROFILER.add("frontier.solves")
    tracer = current_tracer()
    if tracer.enabled:
        tracer.emit(
            DPTableBuilt(
                solver=solver,
                n_elements=n_elements,
                budget=budget,
                seconds=seconds,
                states=states,
            )
        )


@dataclass(frozen=True)
class TDPPlan:
    """Full solver output: the optimal sequence plus diagnostics.

    Attributes:
        sequence: the optimal candidate-count sequence ``(c_0, ..., 1)``.
        total_latency: value of the MinLatency objective for the sequence.
        questions_used: questions the sequence actually spends; tDP may leave
            part of the budget unused when extra questions only add latency
            (the budget-limiting behaviour of Figures 13(b) and 14(b)).
        frontier_sizes: Pareto-frontier size per candidate count (diagnostic;
            index ``c`` holds ``|P(c)|``).
    """

    sequence: Tuple[int, ...]
    total_latency: float
    questions_used: int
    frontier_sizes: Tuple[int, ...]

    @property
    def rounds(self) -> int:
        return len(self.sequence) - 1

    def questions_for_first_round(self) -> int:
        """Question budget of the plan's first round (0 for a solved state).

        Used by the adaptive engine, which re-plans after every round and
        only ever executes a plan's first round.
        """
        if len(self.sequence) < 2:
            return 0
        return tournament_questions(self.sequence[0], self.sequence[1])


def _transition_questions(c: int) -> np.ndarray:
    """Vector of ``Q(c, c')`` for every ``c'`` in ``[1, c)``.

    Vectorized form of equation (2):  with ``k = c // c'`` and
    ``r = c mod c'``, ``Q = C(k+1, 2) * r + C(k, 2) * (c' - r)``.
    """
    targets = np.arange(1, c, dtype=np.int64)
    k = c // targets
    r = c - k * targets
    return (k + 1) * k // 2 * r + k * (k - 1) // 2 * (targets - r)


class _FrontierTable:
    """Padded 2D storage of the per-candidate-count Pareto frontiers."""

    def __init__(self, n_elements: int, width: int = _INITIAL_FRONTIER_WIDTH):
        self.width = width
        shape = (n_elements + 1, width)
        self.cost = np.full(shape, np.iinfo(np.int64).max, dtype=np.int64)
        self.lat = np.full(shape, np.inf, dtype=np.float64)
        self.parent_c = np.zeros(shape, dtype=np.int32)
        self.parent_i = np.zeros(shape, dtype=np.int32)
        self.size = np.zeros(n_elements + 1, dtype=np.int32)

    def grow(self, new_width: int) -> None:
        """Widen the padded arrays to hold larger frontiers."""
        extra = new_width - self.width
        if extra <= 0:
            return
        if PROFILER.enabled:
            PROFILER.add("frontier.grows")
            PROFILER.set_max("frontier.peak_width", new_width)
        n_rows = self.cost.shape[0]
        self.cost = np.hstack(
            [self.cost, np.full((n_rows, extra), np.iinfo(np.int64).max, np.int64)]
        )
        self.lat = np.hstack([self.lat, np.full((n_rows, extra), np.inf)])
        self.parent_c = np.hstack(
            [self.parent_c, np.zeros((n_rows, extra), np.int32)]
        )
        self.parent_i = np.hstack(
            [self.parent_i, np.zeros((n_rows, extra), np.int32)]
        )
        self.width = new_width

    def set_row(
        self,
        c: int,
        cost: np.ndarray,
        lat: np.ndarray,
        parent_c: np.ndarray,
        parent_i: np.ndarray,
    ) -> None:
        count = len(cost)
        if count > self.width:
            self.grow(max(count, self.width * 2))
        self.size[c] = count
        self.cost[c, :count] = cost
        self.lat[c, :count] = lat
        self.parent_c[c, :count] = parent_c
        self.parent_i[c, :count] = parent_i
        self.cost[c, count:] = np.iinfo(np.int64).max
        self.lat[c, count:] = np.inf


def _build_frontiers(
    n_elements: int, budget: int, latency: LatencyFunction
) -> _FrontierTable:
    """Compute P(c) for every candidate count up to ``n_elements``."""
    table = _FrontierTable(n_elements)
    # P(1): the MAX is already identified; zero further cost and latency.
    table.set_row(
        1,
        cost=np.zeros(1, np.int64),
        lat=np.zeros(1),
        parent_c=np.zeros(1, np.int32),
        parent_i=np.zeros(1, np.int32),
    )
    for c in range(2, n_elements + 1):
        _build_frontier(table, c, budget, latency)
    return table


def solve_min_latency(
    n_elements: int, budget: int, latency: LatencyFunction
) -> TDPPlan:
    """Solve MinLatency (Problem 1) exactly.

    Args:
        n_elements: ``c_0``, the size of the input collection (>= 1).
        budget: ``b``, the maximum total number of questions (>= c_0 - 1).
        latency: the platform latency function ``L(q)``.

    Returns:
        The optimal :class:`TDPPlan`.

    Raises:
        InvalidParameterError: when the budget is below ``c_0 - 1``
            (Theorem 1: the problem has no solution).
    """
    if n_elements < 1:
        raise InvalidParameterError(f"n_elements must be >= 1, got {n_elements}")
    if budget < n_elements - 1:
        raise InvalidParameterError(
            f"budget {budget} < c0 - 1 = {n_elements - 1}: MinLatency is "
            f"infeasible (Theorem 1)"
        )
    with timed("tdp.solve") as span:
        table = _build_frontiers(n_elements, budget, latency)
    _record_dp_build(
        "frontier", n_elements, budget, span.seconds, int(table.size.sum())
    )
    return _extract_plan(table, n_elements)


def solve_min_cost(
    n_elements: int,
    deadline: float,
    latency: LatencyFunction,
    budget: Optional[int] = None,
) -> TDPPlan:
    """The dual of MinLatency: spend the fewest questions within a deadline.

    The paper frames the cost-latency tradeoff both ways (Section 1); with
    the Pareto frontiers already in hand, "minimize total questions subject
    to total latency <= deadline" is a single frontier query: the frontier
    of ``c_0`` is cost-ascending with strictly descending latency, so the
    *first* point meeting the deadline is the cheapest one.

    Args:
        n_elements: ``c_0``, the size of the input collection (>= 1).
        deadline: maximum acceptable total latency, in seconds.
        latency: the platform latency function ``L(q)``.
        budget: optional question cap; defaults to the complete-tournament
            maximum ``C(c_0, 2)`` (no tournament sequence can need more).

    Returns:
        The cheapest :class:`TDPPlan` whose latency fits the deadline.

    Raises:
        InvalidParameterError: when even the latency-optimal plan misses
            the deadline (the message reports the fastest achievable
            latency), or on out-of-domain arguments.
    """
    if n_elements < 1:
        raise InvalidParameterError(f"n_elements must be >= 1, got {n_elements}")
    if deadline < 0:
        raise InvalidParameterError(f"deadline must be >= 0, got {deadline}")
    if budget is None:
        budget = max(n_elements - 1, n_elements * (n_elements - 1) // 2)
    if budget < n_elements - 1:
        raise InvalidParameterError(
            f"budget {budget} < c0 - 1 = {n_elements - 1} (Theorem 1)"
        )
    with timed("tdp.solve") as span:
        table = _build_frontiers(n_elements, budget, latency)
    _record_dp_build(
        "frontier", n_elements, budget, span.seconds, int(table.size.sum())
    )
    count = int(table.size[n_elements])
    latencies = table.lat[n_elements, :count]
    meeting = np.flatnonzero(latencies <= deadline)
    if meeting.size == 0:
        fastest = float(latencies[count - 1]) if count else float("inf")
        raise InvalidParameterError(
            f"no tournament sequence finishes within {deadline:g} s; the "
            f"fastest achievable latency is {fastest:g} s"
        )
    return _plan_from_point(table, n_elements, int(meeting[0]))


def _build_frontier(
    table: _FrontierTable,
    c: int,
    budget: int,
    latency: LatencyFunction,
    source: Optional[_FrontierTable] = None,
) -> bool:
    """Compute P(c) from the frontiers of all smaller candidate counts.

    *source* is the table transitions read continuation frontiers from; by
    default the same table (the unbounded recursion).  The bounded-rounds
    solver passes the previous round-count's table instead.

    Returns ``True`` when at least one feasible point was found; ``False``
    leaves the row empty (possible only in the bounded-rounds DP).
    """
    if source is None:
        source = table
    step_cost = _transition_questions(c)  # Q(c, c') for c' = 1..c-1
    step_lat = latency.batch(step_cost)  # L(Q(c, c'))
    width = source.width
    # Candidate points: every frontier point of every reachable c', extended
    # by one round c -> c'.  Shapes are (c-1, width); row j is c' = j + 1.
    cand_cost = step_cost[:, None] + source.cost[1:c, :]
    cand_lat = step_lat[:, None] + source.lat[1:c, :]
    flat_cost = cand_cost.ravel()
    flat_lat = cand_lat.ravel()
    valid = np.flatnonzero(
        (flat_lat != np.inf) & (flat_cost >= 0) & (flat_cost <= budget)
    )
    # flat_cost >= 0 guards against int64 overflow of the +inf cost padding;
    # padded entries also carry lat == inf, so both filters agree.
    if valid.size == 0:
        if source is table:  # pragma: no cover - needs budget >= c - 1
            raise InvalidParameterError(
                f"no feasible transition from {c} candidates within "
                f"budget {budget}"
            )
        return False
    order = valid[np.lexsort((flat_lat[valid], flat_cost[valid]))]
    lat_sorted = flat_lat[order]
    # Strict Pareto sweep: keep a point only when it improves the best
    # latency seen at any lower-or-equal cost.
    running_best = np.minimum.accumulate(lat_sorted)
    keep = np.empty(len(order), dtype=bool)
    keep[0] = True
    keep[1:] = lat_sorted[1:] < running_best[:-1]
    chosen = order[keep]
    if PROFILER.enabled:
        # One batched tally per frontier row, never per cell: the counters
        # are exact work counts (pure functions of the instance), while
        # the disabled path above costs a single attribute load.
        PROFILER.add("frontier.rows")
        PROFILER.add("frontier.candidates", int(flat_cost.size))
        PROFILER.add("frontier.cells", int(valid.size))
        PROFILER.add("frontier.points", int(chosen.size))
    table.set_row(
        c,
        cost=flat_cost[chosen],
        lat=flat_lat[chosen],
        parent_c=(chosen // width + 1).astype(np.int32),
        parent_i=(chosen % width).astype(np.int32),
    )
    return True


def solve_min_latency_bounded_rounds(
    n_elements: int,
    budget: int,
    latency: LatencyFunction,
    max_rounds: int,
) -> TDPPlan:
    """MinLatency with an additional cap on the number of rounds.

    Problem 1 leaves the round count unconstrained; deployments sometimes
    cannot (e.g. an operator polling the platform on a fixed cadence, or
    the rounds-as-latency model of Venetis et al. [23]).  This solver adds
    the constraint ``r <= max_rounds`` by indexing the Pareto frontiers by
    round count: ``P_r(c)`` holds the non-dominated (cost, latency) pairs
    of sequences from ``c`` to 1 using at most ``r`` rounds, built from
    ``P_{r-1}``.

    Args:
        n_elements: ``c_0`` (>= 1).
        budget: ``b`` (>= c_0 - 1).
        latency: the platform latency function.
        max_rounds: maximum rounds allowed (>= 1).

    Returns:
        The optimal :class:`TDPPlan` among plans with at most *max_rounds*
        rounds.

    Raises:
        InvalidParameterError: when no plan satisfies both the budget and
            the round cap (e.g. ``max_rounds = 1`` with a budget below the
            complete tournament ``C(c_0, 2)``).
    """
    if n_elements < 1:
        raise InvalidParameterError(f"n_elements must be >= 1, got {n_elements}")
    if budget < n_elements - 1:
        raise InvalidParameterError(
            f"budget {budget} < c0 - 1 = {n_elements - 1} (Theorem 1)"
        )
    if max_rounds < 1:
        raise InvalidParameterError(f"max_rounds must be >= 1, got {max_rounds}")
    if n_elements == 1:
        return TDPPlan((1,), 0.0, 0, frontier_sizes=(1,))

    def base_table() -> _FrontierTable:
        table = _FrontierTable(n_elements)
        table.set_row(
            1,
            cost=np.zeros(1, np.int64),
            lat=np.zeros(1),
            parent_c=np.zeros(1, np.int32),
            parent_i=np.zeros(1, np.int32),
        )
        return table

    with timed("tdp.solve") as span:
        tables = [base_table()]  # P_0: only the solved state exists
        for _ in range(max_rounds):
            current = base_table()
            for c in range(2, n_elements + 1):
                _build_frontier(current, c, budget, latency, source=tables[-1])
            tables.append(current)
    _record_dp_build(
        "frontier-bounded",
        n_elements,
        budget,
        span.seconds,
        int(sum(int(t.size.sum()) for t in tables[1:])),
    )
    final = tables[max_rounds]
    count = int(final.size[n_elements])
    if count == 0:
        raise InvalidParameterError(
            f"no tournament sequence reaches the MAX of {n_elements} "
            f"elements within {max_rounds} round(s) and {budget} questions"
        )
    index = count - 1  # min latency: last point of the frontier
    sequence: List[int] = [n_elements]
    c, i, r = n_elements, index, max_rounds
    while c != 1:
        parent_c = int(tables[r].parent_c[c, i])
        parent_i = int(tables[r].parent_i[c, i])
        c, i, r = parent_c, parent_i, r - 1
        sequence.append(c)
    return TDPPlan(
        sequence=tuple(sequence),
        total_latency=float(final.lat[n_elements, index]),
        questions_used=int(final.cost[n_elements, index]),
        frontier_sizes=tuple(int(s) for s in final.size[1:]),
    )


def _extract_plan(table: _FrontierTable, n_elements: int) -> TDPPlan:
    """Pick the min-latency frontier point of P(c_0) and walk the parents."""
    count = int(table.size[n_elements])
    # The frontier is cost-ascending with strictly descending latency, so the
    # last point is the optimum; every stored point already fits the budget.
    return _plan_from_point(table, n_elements, count - 1)


def _plan_from_point(
    table: _FrontierTable, n_elements: int, index: int
) -> TDPPlan:
    """Reconstruct the plan behind one frontier point of P(c_0)."""
    total_latency = float(table.lat[n_elements, index])
    questions_used = int(table.cost[n_elements, index])
    sequence: List[int] = [n_elements]
    c, i = n_elements, index
    while c != 1:
        c, i = int(table.parent_c[c, i]), int(table.parent_i[c, i])
        sequence.append(c)
    return TDPPlan(
        sequence=tuple(sequence),
        total_latency=total_latency,
        questions_used=questions_used,
        frontier_sizes=tuple(int(s) for s in table.size[1:]),
    )


class TDPAllocator(BudgetAllocator):
    """The paper's tDP budget-allocation algorithm (optimal for Problem 1).

    Combined with the Tournament-formation question selector this is also
    optimal for the Generalized Worst MinLatency problem (Theorem 4).

    Example:
        >>> from repro.core.latency import LinearLatency
        >>> tdp = TDPAllocator()
        >>> allocation = tdp.allocate(40, 108, LinearLatency(100, 1))
        >>> allocation.element_sequence
        (40, 8, 1)
        >>> allocation.round_budgets
        (80, 28)
    """

    name = "tDP"

    def _allocate(
        self, n_elements: int, budget: int, latency: LatencyFunction
    ) -> Allocation:
        plan = solve_min_latency(n_elements, budget, latency)
        return Allocation.from_element_sequence(plan.sequence, self.name)

    def plan(
        self, n_elements: int, budget: int, latency: LatencyFunction
    ) -> TDPPlan:
        """Expose the full solver output (diagnostics included)."""
        return solve_min_latency(n_elements, budget, latency)
