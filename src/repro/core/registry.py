"""Name-based registry of budget allocators, used by the CLI and experiments."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.allocation import BudgetAllocator
from repro.core.expected import ExpectedCaseAllocator
from repro.core.heuristics import (
    HeavyEnd,
    HeavyFront,
    UniformHeavyEnd,
    UniformHeavyFront,
)
from repro.core.tdp import TDPAllocator
from repro.core.tdp_memo import MemoizedTDPAllocator
from repro.errors import InvalidParameterError

_FACTORIES: Dict[str, Callable[[], BudgetAllocator]] = {
    "tDP": TDPAllocator,
    "tDP-memo": MemoizedTDPAllocator,
    "eDP": ExpectedCaseAllocator,
    "HE": HeavyEnd,
    "HF": HeavyFront,
    "uHE": UniformHeavyEnd,
    "uHF": UniformHeavyFront,
}


def available_allocators() -> List[str]:
    """Names of all registered budget-allocation algorithms."""
    return sorted(_FACTORIES)


def allocator_by_name(name: str) -> BudgetAllocator:
    """Instantiate the allocator registered under *name* (case-insensitive).

    Raises:
        InvalidParameterError: for unknown names, listing the valid ones.
    """
    lowered = {key.lower(): factory for key, factory in _FACTORIES.items()}
    factory = lowered.get(name.lower())
    if factory is None:
        raise InvalidParameterError(
            f"unknown allocator {name!r}; available: {available_allocators()}"
        )
    return factory()
