"""Core algorithms of the paper: the Q function, latency models, the tDP
dynamic-programming budget allocator, and the heuristic baselines."""

from repro.core.allocation import Allocation
from repro.core.expected import ExpectedCaseAllocator
from repro.core.heuristics import (
    HeavyEnd,
    HeavyFront,
    UniformHeavyEnd,
    UniformHeavyFront,
)
from repro.core.latency import (
    LatencyFunction,
    LinearLatency,
    PiecewiseLinearLatency,
    PowerLawLatency,
    TabulatedLatency,
    fit_linear_latency,
)
from repro.core.questions import (
    min_feasible_budget,
    tournament_questions,
    tournament_sizes,
)
from repro.core.registry import allocator_by_name, available_allocators
from repro.core.rwl_aware import RepetitionAwareAllocator
from repro.core.tdp import TDPAllocator
from repro.core.tdp_memo import MemoizedTDPAllocator

__all__ = [
    "Allocation",
    "ExpectedCaseAllocator",
    "HeavyEnd",
    "HeavyFront",
    "UniformHeavyEnd",
    "UniformHeavyFront",
    "LatencyFunction",
    "LinearLatency",
    "PowerLawLatency",
    "PiecewiseLinearLatency",
    "TabulatedLatency",
    "fit_linear_latency",
    "tournament_questions",
    "tournament_sizes",
    "min_feasible_budget",
    "TDPAllocator",
    "MemoizedTDPAllocator",
    "RepetitionAwareAllocator",
    "allocator_by_name",
    "available_allocators",
]
