"""The four heuristic budget-allocation baselines of Section 5.1.

* **Heavy End (HE)** — spend conservatively (one question per element, which
  halves the candidates) until the remaining budget suffices to finish in a
  single round; that last round receives *all* of the remaining budget.
* **Heavy Front (HF)** — the mirror image: assume halving rounds at the end,
  and as soon as the remaining budget covers a direct jump from the initial
  count to the current count, make that jump the (heavy) first round.
* **uniform Heavy End (uHE)** / **uniform Heavy Front (uHF)** — run HE / HF
  only to obtain a round count ``r``, then split the budget uniformly into
  ``r`` rounds.  These are the paper's adaptations of the multiprocessor MAX
  algorithm of Valiant [21] to a budget-constrained setting.

None of the heuristics consults the latency function — that is precisely the
weakness the paper's experiments expose (Figures 13(b) and 14).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.allocation import Allocation, BudgetAllocator
from repro.core.latency import LatencyFunction
from repro.core.questions import (
    halving_questions,
    halving_survivors,
    tournament_questions,
)


def _uniform_split(budget: int, rounds: int) -> Tuple[int, ...]:
    """Split *budget* into *rounds* near-equal parts, remainder to the front.

    Matches the paper's examples: 51 into 3 -> (17, 17, 17); 51 into 4 ->
    (13, 13, 13, 12).
    """
    base, remainder = divmod(budget, rounds)
    return tuple(base + 1 if i < remainder else base for i in range(rounds))


def _halving_budgets(c: int) -> List[int]:
    """Per-round budgets of pure conservative halving from ``c`` down to 1."""
    budgets = []
    while c > 1:
        budgets.append(halving_questions(c))
        c = halving_survivors(c)
    return budgets


class HeavyEnd(BudgetAllocator):
    """HE: conservative halving rounds, then one heavy final round.

    Example (paper, Figure 10(a)): 24 elements, budget 51 -> (12, 6, 33).
    """

    name = "HE"

    def _allocate(
        self, n_elements: int, budget: int, latency: LatencyFunction
    ) -> Allocation:
        budgets: List[int] = []
        candidates = n_elements
        remaining = budget
        while tournament_questions(candidates, 1) > remaining:
            step = halving_questions(candidates)
            budgets.append(step)
            remaining -= step
            candidates = halving_survivors(candidates)
        budgets.append(remaining)  # the heavy end: all leftover budget
        return Allocation(round_budgets=tuple(budgets), allocator_name=self.name)


class HeavyFront(BudgetAllocator):
    """HF: one heavy first round, then conservative halving rounds.

    Walking backwards from the last round through candidate counts 2, 4, 8,
    ..., HF stops at the first count ``m`` whose halving tail (cost ``m - 1``)
    leaves enough budget for the direct jump ``G_T(c_0, m)``; the first round
    then receives *all* of that leftover.

    Example (paper, Figure 10(b)): 24 elements, budget 51 -> (44, 4, 2, 1).

    When no jump is affordable (budget close to ``c_0 - 1``), HF degenerates
    to pure halving with any leftover added to the first round.
    """

    name = "HF"

    def _allocate(
        self, n_elements: int, budget: int, latency: LatencyFunction
    ) -> Allocation:
        tail_entry = 2
        while tail_entry < n_elements:
            tail_cost = tail_entry - 1
            jump_cost = tournament_questions(n_elements, tail_entry)
            if jump_cost <= budget - tail_cost:
                budgets = [budget - tail_cost] + _halving_budgets(tail_entry)
                return Allocation(
                    round_budgets=tuple(budgets), allocator_name=self.name
                )
            tail_entry *= 2
        # No affordable jump: fall back to halving all the way, with the
        # leftover (if any) spent in the first round per the heavy-front
        # philosophy.
        budgets = _halving_budgets(n_elements)
        budgets[0] += budget - sum(budgets)
        return Allocation(round_budgets=tuple(budgets), allocator_name=self.name)


class UniformHeavyEnd(BudgetAllocator):
    """uHE: budget split uniformly over the round count chosen by HE.

    Example (paper): 24 elements, budget 51 -> HE uses 3 rounds ->
    (17, 17, 17).
    """

    name = "uHE"

    def __init__(self) -> None:
        self._inner = HeavyEnd()

    def _allocate(
        self, n_elements: int, budget: int, latency: LatencyFunction
    ) -> Allocation:
        rounds = self._inner.allocate(n_elements, budget, latency).rounds
        return Allocation(
            round_budgets=_uniform_split(budget, rounds),
            allocator_name=self.name,
        )


class UniformHeavyFront(BudgetAllocator):
    """uHF: budget split uniformly over the round count chosen by HF.

    Example (paper): 24 elements, budget 51 -> HF uses 4 rounds ->
    (13, 13, 13, 12).
    """

    name = "uHF"

    def __init__(self) -> None:
        self._inner = HeavyFront()

    def _allocate(
        self, n_elements: int, budget: int, latency: LatencyFunction
    ) -> Allocation:
        rounds = self._inner.allocate(n_elements, budget, latency).rounds
        return Allocation(
            round_budgets=_uniform_split(budget, rounds),
            allocator_name=self.name,
        )
