"""Literal Algorithm 1 of the paper: top-down memoized dynamic programming.

This is the paper's own formulation of tDP: a recursion ``OL(q, c)`` over
states (remaining questions, remaining candidates), equations (6) and (7),
memoized so each state is evaluated once.  The time complexity is
``O(c_0^2 * b)`` in the worst case, but — exactly as the paper observes in
Section 6.7 — the top-down order only touches *reachable* states, so the
running time grows very slowly with the budget ``b``.

The production solver (:mod:`repro.core.tdp`) is an equivalent Pareto-
frontier reformulation that is much faster for large inputs; this module
exists (a) as a faithful reference of the published pseudo-code, (b) to
cross-validate the production solver in tests, and (c) for the DP-variant
ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.allocation import Allocation, BudgetAllocator
from repro.core.latency import LatencyFunction
from repro.core.questions import tournament_questions
from repro.errors import InvalidParameterError, ReproError
from repro.obs.events import DPTableBuilt
from repro.obs.metrics import get_registry
from repro.obs.profiling import PROFILER
from repro.obs.tracer import current_tracer, timed


class StateLimitExceededError(ReproError):
    """The memoized DP touched more states than the caller allowed."""


@dataclass(frozen=True)
class MemoizedPlan:
    """Solver output of the literal Algorithm 1.

    Attributes:
        sequence: the optimal candidate-count sequence ``(c_0, ..., 1)``.
        total_latency: value of the MinLatency objective.
        questions_used: total questions the sequence spends.
        states_visited: memoized states evaluated — the quantity whose slow
            growth in ``b`` explains the flat curves of Figure 15.
    """

    sequence: Tuple[int, ...]
    total_latency: float
    questions_used: int
    states_visited: int


def solve_min_latency_memo(
    n_elements: int,
    budget: int,
    latency: LatencyFunction,
    max_states: Optional[int] = None,
) -> MemoizedPlan:
    """Solve MinLatency with the paper's top-down memoized recursion.

    Args:
        n_elements: ``c_0`` (>= 1).
        budget: ``b`` (>= c_0 - 1).
        latency: the platform latency function.
        max_states: optional safety cap on memoized states; exceeded caps
            raise :class:`StateLimitExceededError` instead of thrashing.

    Returns:
        The optimal :class:`MemoizedPlan` (same objective value as
        :func:`repro.core.tdp.solve_min_latency`).
    """
    if n_elements < 1:
        raise InvalidParameterError(f"n_elements must be >= 1, got {n_elements}")
    if budget < n_elements - 1:
        raise InvalidParameterError(
            f"budget {budget} < c0 - 1 = {n_elements - 1}: MinLatency is "
            f"infeasible (Theorem 1)"
        )
    if n_elements == 1:
        return MemoizedPlan((1,), 0.0, 0, states_visited=1)

    # memo[(q, c)] = (optimal latency from this state, best next c).
    memo: Dict[Tuple[int, int], Tuple[float, int]] = {}
    # Per-c cache of (Q(c, c'), L(Q(c, c'))) for c' = 1..c-1; the same row is
    # reused by every state that shares the candidate count c.
    transitions: Dict[int, List[Tuple[int, int, float]]] = {}

    def transition_row(c: int) -> List[Tuple[int, int, float]]:
        row = transitions.get(c)
        if row is None:
            row = []
            for c_next in range(1, c):
                step_q = tournament_questions(c, c_next)
                row.append((c_next, step_q, latency(step_q)))
            transitions[c] = row
        return row

    # Iterative depth-first evaluation (the recursion can be ~c_0 deep per
    # branch, and CPython's recursion limit is unkind to c_0 = 2000).
    # Memo hits/misses are tallied in locals (one registry update per solve
    # keeps the DP loop free of locking overhead).
    memo_hits = 0
    memo_misses = 0
    stack: List[Tuple[int, int]] = [(budget, n_elements)]
    with timed("tdp_memo.solve") as span:
        while stack:
            q, c = stack[-1]
            if (q, c) in memo:
                memo_hits += 1
                stack.pop()
                continue
            if c == 1:
                memo[(q, c)] = (0.0, 1)  # Equation (7): OL(q, 1) = 0.
                memo_misses += 1
                stack.pop()
                continue
            best_latency = float("inf")
            best_next = 0
            missing: List[Tuple[int, int]] = []
            for c_next, step_q, step_lat in transition_row(c):
                remaining = q - step_q
                if remaining < c_next - 1:
                    continue  # Theorem 1: child state would be infeasible.
                child = memo.get((remaining, c_next))
                if child is None:
                    missing.append((remaining, c_next))
                else:
                    memo_hits += 1
                    total = step_lat + child[0]
                    if total < best_latency:
                        best_latency = total
                        best_next = c_next
            if missing:
                memo_misses += len(missing)
                stack.extend(missing)
                continue
            memo[(q, c)] = (best_latency, best_next)
            stack.pop()
            if max_states is not None and len(memo) > max_states:
                raise StateLimitExceededError(
                    f"memoized DP exceeded {max_states} states "
                    f"(c0={n_elements}, b={budget})"
                )

    registry = get_registry()
    registry.counter("tdp_memo.solver_calls").inc()
    registry.counter("tdp_memo.states_visited").inc(len(memo))
    registry.counter("tdp_memo.memo_hits").inc(memo_hits)
    registry.counter("tdp_memo.memo_misses").inc(memo_misses)
    if PROFILER.enabled:
        # Same local-tally discipline as the registry above: the DP loop
        # itself never touches the profiler.
        PROFILER.add("memo.solves")
        PROFILER.add("memo.states", len(memo))
        PROFILER.add("memo.hits", memo_hits)
        PROFILER.add("memo.misses", memo_misses)
        PROFILER.add("memo.transition_rows", len(transitions))
    tracer = current_tracer()
    if tracer.enabled:
        tracer.emit(
            DPTableBuilt(
                solver="memo",
                n_elements=n_elements,
                budget=budget,
                seconds=span.seconds,
                states=len(memo),
            )
        )
    total_latency = memo[(budget, n_elements)][0]
    sequence = [n_elements]
    q, c = budget, n_elements
    while c != 1:
        c_next = memo[(q, c)][1]
        q -= tournament_questions(c, c_next)
        c = c_next
        sequence.append(c)
    return MemoizedPlan(
        sequence=tuple(sequence),
        total_latency=total_latency,
        questions_used=budget - q,
        states_visited=len(memo),
    )


class MemoizedTDPAllocator(BudgetAllocator):
    """Budget allocator backed by the literal Algorithm 1 recursion."""

    name = "tDP-memo"

    def __init__(self, max_states: Optional[int] = None) -> None:
        self.max_states = max_states

    def _allocate(
        self, n_elements: int, budget: int, latency: LatencyFunction
    ) -> Allocation:
        plan = solve_min_latency_memo(
            n_elements, budget, latency, max_states=self.max_states
        )
        return Allocation.from_element_sequence(plan.sequence, self.name)
