"""The tournament question-count function Q and tournament partitioning.

This module implements Definitions 1 and 2 of the paper.  A *tournament
graph* ``G_T(c_prev, c_next)`` partitions ``c_prev`` elements into ``c_next``
cliques ("tournaments") of near-equal size; every pair inside a clique is
asked, and exactly one element per clique (the one that wins all of its
comparisons) advances to the next round.

``Q(c_prev, c_next)`` is the number of edges (questions) of that graph,
equation (2) of the paper:

    Q = C(ceil(c_prev / c_next), 2) * (c_prev mod c_next)
      + C(floor(c_prev / c_next), 2) * (c_next - c_prev mod c_next)
"""

from __future__ import annotations

from typing import List

from repro.errors import InvalidParameterError


def _pairs(n: int) -> int:
    """Number of unordered pairs among *n* items, i.e. ``C(n, 2)``."""
    return n * (n - 1) // 2


def _validate_transition(c_prev: int, c_next: int) -> None:
    if c_prev < 1:
        raise InvalidParameterError(f"c_prev must be >= 1, got {c_prev}")
    if not 1 <= c_next <= c_prev:
        raise InvalidParameterError(
            f"c_next must be in [1, c_prev={c_prev}], got {c_next}"
        )


def tournament_sizes(c_prev: int, c_next: int) -> List[int]:
    """Sizes of the ``c_next`` tournaments that ``c_prev`` elements form.

    ``c_prev mod c_next`` tournaments hold ``ceil(c_prev / c_next)`` elements
    and the remaining tournaments hold ``floor(c_prev / c_next)`` elements,
    as in Figure 3 of the paper.  Larger tournaments come first.

    Example:
        >>> tournament_sizes(24, 5)
        [5, 5, 5, 5, 4]
    """
    _validate_transition(c_prev, c_next)
    small, extra = divmod(c_prev, c_next)
    return [small + 1] * extra + [small] * (c_next - extra)


def tournament_questions(c_prev: int, c_next: int) -> int:
    """The function ``Q(c_prev, c_next)``: edges of ``G_T(c_prev, c_next)``.

    This is the number of pairwise questions needed to reduce ``c_prev``
    candidates to ``c_next`` candidates in one tournament round (equation (2)
    of the paper).

    Example:
        >>> tournament_questions(20, 5)
        30
        >>> tournament_questions(24, 5)
        46
    """
    _validate_transition(c_prev, c_next)
    small, extra = divmod(c_prev, c_next)
    return _pairs(small + 1) * extra + _pairs(small) * (c_next - extra)


def min_feasible_budget(n_elements: int) -> int:
    """The smallest budget that can identify the MAX of ``n_elements``.

    By Theorem 1 this is ``n_elements - 1``: every non-MAX element must lose
    at least one comparison.
    """
    if n_elements < 1:
        raise InvalidParameterError(f"n_elements must be >= 1, got {n_elements}")
    return n_elements - 1


def max_useful_budget(n_elements: int) -> int:
    """Budget of a single complete tournament over all elements, ``C(n, 2)``.

    No allocation ever needs more distinct questions than this.
    """
    if n_elements < 1:
        raise InvalidParameterError(f"n_elements must be >= 1, got {n_elements}")
    return _pairs(n_elements)


def fewest_tournaments_within(c_prev: int, budget: int) -> int:
    """Smallest ``c_next`` with ``Q(c_prev, c_next) <= budget``.

    This is the core step of the Tournament-formation question-selection
    algorithm (Section 5.2): form as few tournaments as the round budget
    allows, because fewer tournaments eliminate more candidates.

    Raises:
        InfeasibleBudgetError-like :class:`InvalidParameterError` if even
        ``c_next = c_prev`` (zero questions) would not fit, which can only
        happen for a negative budget.
    """
    if c_prev < 1:
        raise InvalidParameterError(f"c_prev must be >= 1, got {c_prev}")
    if budget < 0:
        raise InvalidParameterError(f"budget must be >= 0, got {budget}")
    if c_prev == 1:
        return 1
    # Q(c_prev, c_next) is non-increasing in c_next, so binary search works.
    lo, hi = 1, c_prev  # Q(c_prev, c_prev) == 0 <= budget always holds.
    while lo < hi:
        mid = (lo + hi) // 2
        if tournament_questions(c_prev, mid) <= budget:
            hi = mid
        else:
            lo = mid + 1
    return lo


def halving_questions(c_prev: int) -> int:
    """Questions of the maximally conservative round: one per element pair.

    Pairing all elements (``G_T(c, ceil(c / 2))``) spends ``floor(c / 2)``
    questions and advances ``ceil(c / 2)`` candidates; with an odd count one
    element gets a bye.  This is the "one question per element" round used by
    the Heavy End / Heavy Front heuristics (Section 5.1).
    """
    if c_prev < 1:
        raise InvalidParameterError(f"c_prev must be >= 1, got {c_prev}")
    return c_prev // 2


def halving_survivors(c_prev: int) -> int:
    """Candidates that remain after a conservative pairing round."""
    if c_prev < 1:
        raise InvalidParameterError(f"c_prev must be >= 1, got {c_prev}")
    return (c_prev + 1) // 2
