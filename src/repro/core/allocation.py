"""The :class:`Allocation` value type and the allocator interface.

A *budget allocation* is the vector of per-round question budgets that the
MAX operator receives as input (Section 1 of the paper).  Allocations that
come from tournament-based algorithms (such as tDP) additionally know the
planned candidate-count sequence ``(c_0, c_1, ..., 1)``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.latency import LatencyFunction
from repro.core.questions import min_feasible_budget, tournament_questions
from repro.errors import InfeasibleBudgetError, InvalidParameterError


@dataclass(frozen=True)
class Allocation:
    """A budget split into rounds.

    Attributes:
        round_budgets: questions allocated to each round, in round order.
        element_sequence: planned candidate counts ``(c_0, ..., c_r = 1)``
            when the allocation was derived from a tournament-graph sequence
            (e.g. by tDP); ``None`` for purely question-count heuristics.
        allocator_name: name of the algorithm that produced the allocation.
    """

    round_budgets: Tuple[int, ...]
    element_sequence: Optional[Tuple[int, ...]] = None
    allocator_name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if any(budget < 0 for budget in self.round_budgets):
            raise InvalidParameterError(
                f"round budgets must be >= 0, got {self.round_budgets}"
            )
        sequence = self.element_sequence
        if sequence is not None:
            if len(sequence) != len(self.round_budgets) + 1:
                raise InvalidParameterError(
                    "element_sequence must have one more entry than round_budgets"
                )
            if sequence[-1] != 1:
                raise InvalidParameterError(
                    f"element_sequence must end at 1, got {sequence[-1]}"
                )
            for c_prev, c_next in zip(sequence, sequence[1:]):
                if not 1 <= c_next < c_prev:
                    raise InvalidParameterError(
                        f"element_sequence must be strictly decreasing to 1, "
                        f"got {sequence}"
                    )

    @classmethod
    def from_element_sequence(
        cls, sequence: Tuple[int, ...], allocator_name: str = ""
    ) -> "Allocation":
        """Build an allocation from a candidate-count sequence.

        Round ``i`` gets exactly the ``Q(c_{i-1}, c_i)`` questions the
        tournament graph ``G_T(c_{i-1}, c_i)`` needs.
        """
        budgets = tuple(
            tournament_questions(c_prev, c_next)
            for c_prev, c_next in zip(sequence, sequence[1:])
        )
        return cls(
            round_budgets=budgets,
            element_sequence=tuple(sequence),
            allocator_name=allocator_name,
        )

    @property
    def rounds(self) -> int:
        """Number of rounds the allocation spans."""
        return len(self.round_budgets)

    @property
    def total_questions(self) -> int:
        """Total questions across all rounds."""
        return sum(self.round_budgets)

    def predicted_latency(self, latency: LatencyFunction) -> float:
        """Total latency under *latency* if every round runs as planned.

        This is the objective of equation (3): ``sum_i L(q_i)``.  The actual
        latency of a run can be lower when the MAX is identified before the
        final round (early singleton termination).
        """
        return sum(latency(budget) for budget in self.round_budgets)

    def check_within_budget(self, budget: int) -> None:
        """Raise if the allocation spends more than *budget* questions."""
        if self.total_questions > budget:
            raise InvalidParameterError(
                f"allocation spends {self.total_questions} questions, "
                f"exceeding the budget of {budget}"
            )


class BudgetAllocator(ABC):
    """Interface of budget-allocation algorithms (Sections 3 and 5.1).

    An allocator turns ``(n_elements, budget, latency)`` into an
    :class:`Allocation`.  The heuristic baselines ignore the latency
    function; tDP uses it to trade parallelism against redundancy.
    """

    #: Short name used in registries, experiment tables and plots.
    name: str = "allocator"

    def allocate(
        self, n_elements: int, budget: int, latency: LatencyFunction
    ) -> Allocation:
        """Compute the per-round budget split.

        Raises:
            InfeasibleBudgetError: when ``budget < n_elements - 1``
                (Theorem 1: no allocation can identify the MAX).
            InvalidParameterError: on out-of-domain arguments.
        """
        if n_elements < 1:
            raise InvalidParameterError(
                f"n_elements must be >= 1, got {n_elements}"
            )
        if budget < min_feasible_budget(n_elements):
            raise InfeasibleBudgetError(n_elements, budget)
        if n_elements == 1:
            # The MAX of a singleton collection is known without questions.
            return Allocation(
                round_budgets=(),
                element_sequence=(1,),
                allocator_name=self.name,
            )
        return self._allocate(n_elements, budget, latency)

    @abstractmethod
    def _allocate(
        self, n_elements: int, budget: int, latency: LatencyFunction
    ) -> Allocation:
        """Algorithm-specific allocation; preconditions already validated."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
