"""Allocation that accounts for Reliable-Worker-Layer question repetition.

The paper's architecture places an RWL between the algorithms and the
platform (Section 2.1) and notes that the latency function "models the
delays of the RWL".  When the RWL posts every question ``r`` times for
majority voting, two things change from the allocator's point of view:

* a round that plans ``q`` *distinct* questions actually posts ``r * q``
  platform questions, so its latency is ``L(r * q)``;
* the overall budget of platform questions buys only ``b // r`` distinct
  comparisons.

:class:`RepetitionAwareAllocator` folds both effects into any inner
allocator by rescaling the latency function and the budget, so the inner
algorithm (typically tDP) optimizes the *true* end-to-end latency.
"""

from __future__ import annotations

from repro.core.allocation import Allocation, BudgetAllocator
from repro.core.latency import LatencyFunction
from repro.errors import InvalidParameterError

import numpy as np


class _RepeatedLatency(LatencyFunction):
    """``L'(q) = L(repetition * q)``: the latency of a repeated batch."""

    def __init__(self, inner: LatencyFunction, repetition: int) -> None:
        self.inner = inner
        self.repetition = repetition

    def __call__(self, q: int) -> float:
        self._check_batch(q)
        return self.inner(self.repetition * q)

    def batch(self, qs: np.ndarray) -> np.ndarray:
        return self.inner.batch(np.asarray(qs) * self.repetition)

    def __repr__(self) -> str:
        return f"_RepeatedLatency({self.inner!r}, repetition={self.repetition})"


class RepetitionAwareAllocator(BudgetAllocator):
    """Wrap an allocator so it plans in distinct questions under an RWL.

    Args:
        inner: the allocator doing the actual optimization (e.g. tDP).
        repetition: the RWL's per-question repetition factor.

    The produced allocation's ``round_budgets`` are *distinct* question
    counts — exactly what the engine and the RWL consume (the RWL
    multiplies by ``repetition`` internally when posting).

    Example: with ``repetition = 5`` and a platform budget of 4000, the
    wrapped tDP plans 800 distinct questions whose per-round batches are
    priced at ``L(5 * q)``.
    """

    def __init__(self, inner: BudgetAllocator, repetition: int) -> None:
        if repetition < 1:
            raise InvalidParameterError(
                f"repetition must be >= 1, got {repetition}"
            )
        self.inner = inner
        self.repetition = repetition
        self.name = f"{inner.name}@x{repetition}"

    def allocate(
        self, n_elements: int, budget: int, latency: LatencyFunction
    ) -> Allocation:
        distinct_budget = budget // self.repetition
        if n_elements >= 1 and distinct_budget < n_elements - 1:
            raise InvalidParameterError(
                f"platform budget {budget} buys only {distinct_budget} "
                f"distinct questions under {self.repetition}x repetition; "
                f"{n_elements} elements need at least {n_elements - 1} "
                f"(Theorem 1)"
            )
        inner_allocation = self.inner.allocate(
            n_elements,
            distinct_budget,
            _RepeatedLatency(latency, self.repetition),
        )
        return Allocation(
            round_budgets=inner_allocation.round_budgets,
            element_sequence=inner_allocation.element_sequence,
            allocator_name=self.name,
        )

    def _allocate(
        self, n_elements: int, budget: int, latency: LatencyFunction
    ) -> Allocation:  # pragma: no cover - allocate() is fully overridden
        raise NotImplementedError
