"""eDP: an average-case variant of tDP (an extension of the paper).

tDP plans against the *worst case*: a tournament round with budget
``Q(c, c')`` is guaranteed to leave exactly ``c'`` candidates.  The closing
discussion of Appendix A observes that under a uniform history a round that
asks a near-regular graph of ``q`` questions over ``c`` candidates leaves

    E[R] = r / (lo + 2) + (c - r) / (lo + 1),
    lo = floor(2q / c),  r = 2q mod c

candidates *in expectation* (Lemmas 4-5) — usually far fewer than the
worst case.  eDP runs the same Pareto-frontier dynamic program as tDP but
prices each transition ``c -> c'`` at the *smallest* ``q`` whose expected
survivor count rounds down to ``c'``, instead of the worst-case ``Q(c, c')``.

The result is a cheaper, faster plan that is **not** guaranteed to
singleton-terminate: when a round eliminates fewer candidates than
expected, the remaining budget may run out with several candidates left.
The ``bench_ablation_edp`` benchmark quantifies exactly this latency vs
termination trade-off against tDP, reproducing in spirit the
exploration-exploitation comparison the paper's appendix sketches.
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation import Allocation, BudgetAllocator
from repro.core.latency import LatencyFunction
from repro.core.questions import max_useful_budget
from repro.core.tdp import TDPPlan, _FrontierTable
from repro.errors import InvalidParameterError


def expected_survivors(n_candidates: int, questions: int) -> float:
    """``E[R]`` for a near-regular graph of *questions* over *n_candidates*.

    Uses the Lemma 5 optimal degree profile: ``2 * questions mod n`` nodes
    of degree ``floor(2q / n) + 1`` and the rest of degree ``floor(2q/n)``.
    """
    if n_candidates < 1:
        raise InvalidParameterError("n_candidates must be >= 1")
    if questions < 0:
        raise InvalidParameterError("questions must be >= 0")
    if questions > max_useful_budget(n_candidates):
        raise InvalidParameterError(
            f"{questions} questions exceed the pair space of "
            f"{n_candidates} candidates"
        )
    low, remainder = divmod(2 * questions, n_candidates)
    return remainder / (low + 2) + (n_candidates - remainder) / (low + 1)


def expected_transition_cost(n_candidates: int, target: int) -> int:
    """Smallest ``q`` whose expected survivor count rounds to <= *target*.

    Monotone binary search over ``q``; always at most the worst-case
    ``Q(n_candidates, target)`` (a tournament graph is near-regular, and
    its expected survivors are below its guaranteed survivors).
    """
    if not 1 <= target < n_candidates:
        raise InvalidParameterError(
            f"target must be in [1, {n_candidates}), got {target}"
        )
    lo, hi = 1, max_useful_budget(n_candidates)
    while lo < hi:
        mid = (lo + hi) // 2
        if int(expected_survivors(n_candidates, mid) + 0.5) <= target:
            hi = mid
        else:
            lo = mid + 1
    return lo


def _expected_costs(n_candidates: int) -> np.ndarray:
    """Vector of expected transition costs to every target in [1, c).

    A vectorized binary search over ``q`` for every target at once; agrees
    with :func:`expected_transition_cost` element-wise (tested) but keeps
    the solver fast for large collections.
    """
    c = n_candidates
    targets = np.arange(1, c, dtype=np.int64)
    lo = np.ones(c - 1, dtype=np.int64)
    hi = np.full(c - 1, c * (c - 1) // 2, dtype=np.int64)
    while np.any(lo < hi):
        mid = (lo + hi) // 2
        degree, remainder = np.divmod(2 * mid, c)
        expected = remainder / (degree + 2) + (c - remainder) / (degree + 1)
        reaches = np.floor(expected + 0.5).astype(np.int64) <= targets
        hi = np.where(reaches, mid, hi)
        lo = np.where(reaches, lo, mid + 1)
    return lo


def solve_expected_min_latency(
    n_elements: int, budget: int, latency: LatencyFunction
) -> TDPPlan:
    """The eDP plan: minimal latency under expected-case transitions."""
    if n_elements < 1:
        raise InvalidParameterError(f"n_elements must be >= 1, got {n_elements}")
    if budget < n_elements - 1:
        raise InvalidParameterError(
            f"budget {budget} < c0 - 1 = {n_elements - 1}: infeasible"
        )
    table = _FrontierTable(n_elements)
    table.set_row(
        1,
        cost=np.zeros(1, np.int64),
        lat=np.zeros(1),
        parent_c=np.zeros(1, np.int32),
        parent_i=np.zeros(1, np.int32),
    )
    for c in range(2, n_elements + 1):
        _build_expected_frontier(table, c, budget, latency)
    return _extract(table, n_elements)


def _build_expected_frontier(
    table: _FrontierTable, c: int, budget: int, latency: LatencyFunction
) -> None:
    step_cost = _expected_costs(c)
    step_lat = latency.batch(step_cost)
    width = table.width
    cand_cost = step_cost[:, None] + table.cost[1:c, :]
    cand_lat = step_lat[:, None] + table.lat[1:c, :]
    flat_cost = cand_cost.ravel()
    flat_lat = cand_lat.ravel()
    valid = np.flatnonzero(
        (flat_lat != np.inf) & (flat_cost >= 0) & (flat_cost <= budget)
    )
    if valid.size == 0:
        raise InvalidParameterError(
            f"no feasible expected-case transition from {c} candidates "
            f"within budget {budget}"
        )
    order = valid[np.lexsort((flat_lat[valid], flat_cost[valid]))]
    lat_sorted = flat_lat[order]
    running_best = np.minimum.accumulate(lat_sorted)
    keep = np.empty(len(order), dtype=bool)
    keep[0] = True
    keep[1:] = lat_sorted[1:] < running_best[:-1]
    chosen = order[keep]
    table.set_row(
        c,
        cost=flat_cost[chosen],
        lat=flat_lat[chosen],
        parent_c=(chosen // width + 1).astype(np.int32),
        parent_i=(chosen % width).astype(np.int32),
    )


def _extract(table: _FrontierTable, n_elements: int) -> TDPPlan:
    count = int(table.size[n_elements])
    index = count - 1
    sequence = [n_elements]
    c, i = n_elements, index
    while c != 1:
        c, i = int(table.parent_c[c, i]), int(table.parent_i[c, i])
        sequence.append(c)
    return TDPPlan(
        sequence=tuple(sequence),
        total_latency=float(table.lat[n_elements, index]),
        questions_used=int(table.cost[n_elements, index]),
        frontier_sizes=tuple(int(s) for s in table.size[1:]),
    )


class ExpectedCaseAllocator(BudgetAllocator):
    """eDP: budget allocation optimized for the *expected* survivor counts.

    The returned allocation carries per-round budgets (the expected-case
    transition costs); unlike tDP there is no guarantee the plan reaches a
    single candidate — the trade-off the appendix of the paper gestures at.
    """

    name = "eDP"

    def _allocate(
        self, n_elements: int, budget: int, latency: LatencyFunction
    ) -> Allocation:
        plan = solve_expected_min_latency(n_elements, budget, latency)
        budgets = tuple(
            expected_transition_cost(c_prev, c_next)
            for c_prev, c_next in zip(plan.sequence, plan.sequence[1:])
        )
        return Allocation(round_budgets=budgets, allocator_name=self.name)

    def plan(
        self, n_elements: int, budget: int, latency: LatencyFunction
    ) -> TDPPlan:
        """Expose the full solver output (diagnostics included)."""
        return solve_expected_min_latency(n_elements, budget, latency)
