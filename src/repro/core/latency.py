"""Latency-function models (Definition 3 of the paper).

A latency function ``L(q)`` estimates how long a crowdsourcing platform takes
to return all answers when ``q`` pairwise questions are posted in a single
round.  The paper assumes ``L`` is increasing in ``q``; every model here
validates that property.

The paper's MTurk measurements (Section 6.1) fit a linear model
``L(q) = 239 + 0.06 * q`` seconds; :func:`mturk_car_latency` returns exactly
that function.  Section 6.6 generalizes to ``L(q) = delta + alpha * q**p``.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError

#: Constants fitted on MTurk in Section 6.1 of the paper.
MTURK_DELTA = 239.0
MTURK_ALPHA = 0.06


class LatencyFunction(ABC):
    """Time (seconds) to receive all answers for a one-round batch of size q.

    Subclasses implement :meth:`__call__`; the base class provides domain
    validation and a few conveniences shared by all models.
    """

    @abstractmethod
    def __call__(self, q: int) -> float:
        """Latency in seconds for a batch of ``q`` questions (``q >= 0``)."""

    def _check_batch(self, q: int) -> None:
        if q < 0:
            raise InvalidParameterError(f"batch size must be >= 0, got {q}")

    def batch(self, qs: np.ndarray) -> np.ndarray:
        """Vectorized evaluation over an array of batch sizes.

        The default implementation loops; models with a closed form override
        this because the tDP solver evaluates the latency of every possible
        round transition and profits from vectorization.
        """
        return np.array([self(int(q)) for q in np.asarray(qs).ravel()], dtype=float)

    def describe(self) -> str:
        """Short human-readable description used in experiment reports."""
        return repr(self)


class LinearLatency(LatencyFunction):
    """``L(q) = delta + alpha * q`` — the paper's fitted MTurk model.

    ``delta`` is the fixed overhead of initiating a round (worker discovery,
    page ranking, etc.); ``alpha`` is the marginal seconds per question.
    """

    def __init__(self, delta: float, alpha: float) -> None:
        if delta < 0:
            raise InvalidParameterError(f"delta must be >= 0, got {delta}")
        if alpha < 0:
            raise InvalidParameterError(f"alpha must be >= 0, got {alpha}")
        self.delta = float(delta)
        self.alpha = float(alpha)

    def __call__(self, q: int) -> float:
        self._check_batch(q)
        return self.delta + self.alpha * q

    def batch(self, qs: np.ndarray) -> np.ndarray:
        qs = np.asarray(qs, dtype=float)
        if np.any(qs < 0):
            raise InvalidParameterError("batch sizes must be >= 0")
        return self.delta + self.alpha * qs

    def __repr__(self) -> str:
        return f"LinearLatency(delta={self.delta:g}, alpha={self.alpha:g})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LinearLatency)
            and self.delta == other.delta
            and self.alpha == other.alpha
        )

    def __hash__(self) -> int:
        return hash(("LinearLatency", self.delta, self.alpha))


class PowerLawLatency(LatencyFunction):
    """``L(q) = delta + alpha * q ** p`` — the Section 6.6 generalization.

    ``p > 1`` models platforms where large batches outgrow the interested
    worker pool (super-linear slowdown); ``p < 1`` models platforms where
    bigger batches attract disproportionately many workers.
    """

    def __init__(self, delta: float, alpha: float, p: float) -> None:
        if delta < 0:
            raise InvalidParameterError(f"delta must be >= 0, got {delta}")
        if alpha < 0:
            raise InvalidParameterError(f"alpha must be >= 0, got {alpha}")
        if p <= 0:
            raise InvalidParameterError(f"exponent p must be > 0, got {p}")
        self.delta = float(delta)
        self.alpha = float(alpha)
        self.p = float(p)

    def __call__(self, q: int) -> float:
        self._check_batch(q)
        return self.delta + self.alpha * q**self.p

    def batch(self, qs: np.ndarray) -> np.ndarray:
        qs = np.asarray(qs, dtype=float)
        if np.any(qs < 0):
            raise InvalidParameterError("batch sizes must be >= 0")
        return self.delta + self.alpha * qs**self.p

    def __repr__(self) -> str:
        return (
            f"PowerLawLatency(delta={self.delta:g}, alpha={self.alpha:g}, "
            f"p={self.p:g})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PowerLawLatency)
            and self.delta == other.delta
            and self.alpha == other.alpha
            and self.p == other.p
        )

    def __hash__(self) -> int:
        return hash(("PowerLawLatency", self.delta, self.alpha, self.p))


class PiecewiseLinearLatency(LatencyFunction):
    """Piecewise-linear interpolation through given (batch size, seconds) knots.

    Useful for modelling the saturation shape of Figure 11(a): flat for small
    batches, then a steep ramp once the batch outgrows the worker pool.
    Extrapolates with the slope of the last segment.
    """

    def __init__(self, knots: Sequence[Tuple[int, float]]) -> None:
        points = sorted((int(q), float(t)) for q, t in knots)
        if len(points) < 2:
            raise InvalidParameterError("need at least two knots")
        qs = [q for q, _ in points]
        if len(set(qs)) != len(qs):
            raise InvalidParameterError("knot batch sizes must be distinct")
        ts = [t for _, t in points]
        if any(t2 < t1 for t1, t2 in zip(ts, ts[1:])):
            raise InvalidParameterError(
                "latency must be non-decreasing in batch size"
            )
        if any(t < 0 for t in ts):
            raise InvalidParameterError("latency values must be >= 0")
        self._qs: List[int] = qs
        self._ts: List[float] = ts

    def __call__(self, q: int) -> float:
        self._check_batch(q)
        qs, ts = self._qs, self._ts
        if q <= qs[0]:
            return ts[0]
        index = bisect.bisect_right(qs, q)
        if index >= len(qs):  # extrapolate with the last segment's slope
            index = len(qs) - 1
        q0, q1 = qs[index - 1], qs[index]
        t0, t1 = ts[index - 1], ts[index]
        slope = (t1 - t0) / (q1 - q0)
        return t0 + slope * (q - q0)

    def __repr__(self) -> str:
        return f"PiecewiseLinearLatency({list(zip(self._qs, self._ts))!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PiecewiseLinearLatency)
            and self._qs == other._qs
            and self._ts == other._ts
        )

    def __hash__(self) -> int:
        return hash(
            ("PiecewiseLinearLatency", tuple(self._qs), tuple(self._ts))
        )


class TabulatedLatency(LatencyFunction):
    """Latency interpolated from measured ``(batch size, seconds)`` samples.

    Unlike :class:`PiecewiseLinearLatency` the samples need not be monotone
    (real measurements are noisy); the table applies an isotonic clean-up
    (running maximum) so that the resulting function is non-decreasing, as
    the paper's theory requires.
    """

    def __init__(self, samples: Iterable[Tuple[int, float]]) -> None:
        points = sorted((int(q), float(t)) for q, t in samples)
        if len(points) < 2:
            raise InvalidParameterError("need at least two samples")
        cleaned: List[Tuple[int, float]] = []
        running = 0.0
        for q, t in points:
            running = max(running, t)
            if cleaned and cleaned[-1][0] == q:
                cleaned[-1] = (q, running)
            else:
                cleaned.append((q, running))
        self._inner = PiecewiseLinearLatency(cleaned)

    def __call__(self, q: int) -> float:
        return self._inner(q)

    def __repr__(self) -> str:
        return f"TabulatedLatency({list(zip(self._inner._qs, self._inner._ts))!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TabulatedLatency)
            and self._inner == other._inner
        )

    def __hash__(self) -> int:
        return hash(("TabulatedLatency", hash(self._inner)))


def fit_linear_latency(samples: Sequence[Tuple[int, float]]) -> LinearLatency:
    """Least-squares fit of ``L(q) = delta + alpha * q`` to measurements.

    This is the estimation procedure of Section 6.1: the paper stresses that
    a *rough* linear estimate is enough for tDP to allocate well.  Negative
    fitted coefficients are clamped to zero (a latency model must be
    non-negative and non-decreasing).

    Args:
        samples: pairs of (batch size, measured seconds until last answer).

    Returns:
        The fitted :class:`LinearLatency`.
    """
    if len(samples) < 2:
        raise InvalidParameterError("need at least two samples to fit a line")
    n = float(len(samples))
    sum_q = sum(float(q) for q, _ in samples)
    sum_t = sum(t for _, t in samples)
    sum_qq = sum(float(q) * float(q) for q, _ in samples)
    sum_qt = sum(float(q) * t for q, t in samples)
    denominator = n * sum_qq - sum_q * sum_q
    if denominator == 0:
        raise InvalidParameterError("all samples share one batch size; cannot fit")
    alpha = (n * sum_qt - sum_q * sum_t) / denominator
    delta = (sum_t - alpha * sum_q) / n
    return LinearLatency(delta=max(delta, 0.0), alpha=max(alpha, 0.0))


def mturk_car_latency() -> LinearLatency:
    """The latency function the paper fitted on MTurk: ``239 + 0.06 q`` s."""
    return LinearLatency(delta=MTURK_DELTA, alpha=MTURK_ALPHA)
