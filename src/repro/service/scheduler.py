"""The concurrent multi-query MAX scheduler.

The paper optimizes latency for *one* MAX query; a deployment runs many at
once against the same crowd, where one query's batch sizes change every
other query's latency.  :class:`MaxScheduler` is that missing layer: it
admits :class:`~repro.service.query.QuerySpec` s (admission control with
shed/defer overload behaviour), plans each one with tDP through a shared
:class:`~repro.service.plan_cache.PlanCache`, drives one
:class:`~repro.engine.session.MaxSession` per query, and each *tick*
coalesces the pending rounds of all runnable queries — in the order a
:class:`~repro.service.policies.BatchingPolicy` dictates, under a shared
in-flight question cap — into one shared platform round posted through the
Reliable Worker Layer.

Concurrent queries coexist on one platform by element-space slicing: query
``i``'s local elements ``0 .. n_i - 1`` map onto a disjoint range of the
platform's global ground truth, so a single shared batch can carry
questions from many queries and the answers route back unambiguously.

Everything is deterministic given the seed: the ground truth, worker pool,
fault stream, RWL tie-breaks and per-query selector randomness all derive
from independent seeded streams, and every iteration order in the
scheduler is total.  Two runs of the same workload under the same seed are
bit-identical — including under a fault profile.
"""

from __future__ import annotations

import dataclasses
import logging
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core.allocation import Allocation
from repro.core.latency import LatencyFunction
from repro.core.registry import allocator_by_name
from repro.crowd.breaker import (
    CircuitBreaker,
    CircuitBreakerConfig,
    RoundDecision,
)
from repro.crowd.error_models import ErrorModel
from repro.crowd.faults import FaultProfile, FaultyPlatform, RetryPolicy
from repro.crowd.ground_truth import GroundTruth
from repro.crowd.multibackend import (
    ROUTING_POLICIES,
    BackendSpec,
    CapacityAwareRouter,
    HedgeConfig,
    build_backends,
)
from repro.crowd.platform import Platform, SimulatedPlatform
from repro.crowd.rwl import ReliableWorkerLayer
from repro.crowd.workers import WorkerPoolConfig
from repro.engine.session import MaxSession, SessionStateError
from repro.errors import InvalidParameterError, PlatformOutageError
from repro.graphs.answer_graph import AnswerGraph
from repro.obs.attribution import component_metric, summarize_attribution
from repro.obs.events import (
    AlertFired,
    AlertResolved,
    BrownoutStateChanged,
    DeadlineExceeded,
    QueryAdmitted,
    QueryCompleted,
    QueryScheduled,
    QueryShed,
)
from repro.obs.flight import FlightRecorder, write_bundle
from repro.obs.metrics import get_registry, labeled_name
from repro.obs.slo import AlertTransition, SLOConfig, SLOEngine
from repro.obs.spans import close_span, emit_span, open_span, span_scope
from repro.obs.tracer import Tracer, current_tracer
from repro.selection.registry import selector_by_name
from repro.selection.scoring import score_candidates
from repro.service.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
)
from repro.service.deadline import (
    DEADLINE_DEGRADED,
    DEADLINE_EXCEEDED,
    DEADLINE_MET,
    DEADLINE_SHED,
    BrownoutConfig,
    BrownoutController,
    LatencyBudget,
    queue_wait_p95,
)
from repro.service.plan_cache import PlanCache, PlanKey
from repro.service.policies import policy_by_name
from repro.service.query import QueryResult, QuerySpec, QueryState
from repro.service.report import ServiceReport
from repro.service.telemetry import TICK_HISTORY_LIMIT, TickSample
from repro.types import Answer, Element, Question, normalize_question

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the multi-query scheduler.

    Attributes:
        policy: batching-policy name (``fair``/``fifo``/``priority``).
        allocator: budget-allocator name used for planning (default tDP).
        selector: question-selector name each session runs with.
        repetition: RWL per-question repetition factor for posting.
        max_inflight_questions: cap on distinct questions per shared round
            (backpressure: whole per-query rounds that do not fit wait).
        max_active_queries: concurrent running sessions (admission bound).
        max_queue_depth: admitted-but-waiting queries (admission bound).
        overload_policy: ``"shed"`` or ``"defer"`` on a full queue.
        plan_cache_capacity: LRU entries of the shared tDP plan cache.
        max_round_attempts: shared rounds a query's single allocation
            round may span (fault re-posts) before the query degrades.
        routing: routing-policy name used when the scheduler is given a
            multi-backend fleet (``latency``/``least-loaded``/
            ``weighted-price``); ignored without ``backends``.
        default_deadline: enforced end-to-end latency budget (seconds)
            applied to every query whose spec carries no ``deadline`` of
            its own; ``None`` disables deadline enforcement for such
            queries.
        hedge: enable hedged posting on the router (requires
            ``backends``); see
            :class:`~repro.crowd.multibackend.HedgeConfig`.
        brownout: enable the overload brownout controller; see
            :class:`~repro.service.deadline.BrownoutConfig`.
        slo: arm the SLO engine and flight recorder; see
            :class:`~repro.obs.slo.SLOConfig`.  ``None`` (the default)
            keeps the scheduler bit-identical to the SLO-less one.
    """

    policy: str = "fair"
    allocator: str = "tDP"
    selector: str = "Tournament"
    repetition: int = 1
    max_inflight_questions: int = 2000
    max_active_queries: int = 16
    max_queue_depth: int = 64
    overload_policy: str = "defer"
    plan_cache_capacity: int = 128
    max_round_attempts: int = 8
    routing: str = "latency"
    default_deadline: Optional[float] = None
    hedge: Optional[HedgeConfig] = None
    brownout: Optional[BrownoutConfig] = None
    slo: Optional[SLOConfig] = None

    def __post_init__(self) -> None:
        if self.routing not in ROUTING_POLICIES:
            raise InvalidParameterError(
                f"unknown routing policy {self.routing!r}; available: "
                f"{', '.join(ROUTING_POLICIES)}"
            )
        if self.default_deadline is not None and not self.default_deadline > 0:
            raise InvalidParameterError(
                f"default_deadline must be > 0 seconds, "
                f"got {self.default_deadline}"
            )
        if self.repetition < 1:
            raise InvalidParameterError(
                f"repetition must be >= 1, got {self.repetition}"
            )
        if self.max_inflight_questions < 1:
            raise InvalidParameterError(
                f"max_inflight_questions must be >= 1, got "
                f"{self.max_inflight_questions}"
            )
        if self.max_round_attempts < 1:
            raise InvalidParameterError(
                f"max_round_attempts must be >= 1, got {self.max_round_attempts}"
            )
        # Delegate the admission bounds to AdmissionConfig's validation.
        self.admission_config()

    def admission_config(self) -> AdmissionConfig:
        """The admission-control slice of this configuration."""
        return AdmissionConfig(
            max_active_queries=self.max_active_queries,
            max_queue_depth=self.max_queue_depth,
            overload_policy=self.overload_policy,
        )


@dataclass
class ActiveQuery:
    """Scheduler-internal state of one admitted query."""

    spec: QuerySpec
    seq: int  # admission order, the universal deterministic tie-break
    offset: int  # global element ID of the query's local element 0
    session: MaxSession
    plan_cache_hit: bool
    state: QueryState = QueryState.QUEUED
    admitted_time: float = 0.0
    first_scheduled_time: Optional[float] = None
    #: Global-ID questions of the current allocation round still unanswered.
    outstanding: Dict[Question, Question] = field(default_factory=dict)
    #: Local answers collected for the current round, keyed by local question.
    collected: Dict[Question, Answer] = field(default_factory=dict)
    times_scheduled: int = 0
    round_attempts: int = 0
    questions_posted: int = 0
    #: Absolute sim time the query's latency budget expires (None = none).
    deadline_at: Optional[float] = None

    def to_global(self, question: Question) -> Question:
        a, b = question
        return (a + self.offset, b + self.offset)

    def to_local_answer(self, answer: Answer) -> Answer:
        return Answer(
            winner=answer.winner - self.offset, loser=answer.loser - self.offset
        )


class MaxScheduler:
    """Run a workload of MAX queries on one shared simulated crowd.

    Args:
        specs: the workload; arrival times need not be sorted.
        latency: the latency model used for *planning* (tDP input); the
            executed latency is whatever the shared platform measures.
        seed: master seed all randomness derives from.
        config: scheduler tunables (see :class:`ServiceConfig`).
        fault_profile: optional fault injection on the shared platform.
        retry_policy: optional RWL re-post policy for unanswered questions.
        error_model: optional worker error model for the shared platform.
        worker_config: optional worker-pool dynamics.
        plan_cache: share a cache across schedulers; a fresh one is
            created from ``config.plan_cache_capacity`` when omitted.
        breaker_config: enable the platform circuit breaker — rounds are
            deferred while the circuit is open instead of burning retry
            attempts against a platform in a sustained outage.
        journal: a :class:`~repro.service.journal.SchedulerJournal` to
            write-ahead-log every state change into (crash recovery via
            :func:`~repro.service.journal.recover_scheduler`).
        backends: a federated fleet of
            :class:`~repro.crowd.multibackend.BackendSpec` s; each shared
            round is then split across the fleet by a
            :class:`~repro.crowd.multibackend.CapacityAwareRouter` under
            ``config.routing``.  Mutually exclusive with
            ``fault_profile``/``breaker_config`` (those become
            per-backend fields of the specs); ``retry_policy``,
            ``error_model`` and ``worker_config`` stay fleet-shared.  A
            single-spec fleet is bit-identical to no fleet at all.
    """

    def __init__(
        self,
        specs: Sequence[QuerySpec],
        latency: LatencyFunction,
        seed: int,
        config: Optional[ServiceConfig] = None,
        *,
        fault_profile: Optional[FaultProfile] = None,
        retry_policy: Optional[RetryPolicy] = None,
        error_model: Optional[ErrorModel] = None,
        worker_config: Optional[WorkerPoolConfig] = None,
        plan_cache: Optional[PlanCache] = None,
        breaker_config: Optional[CircuitBreakerConfig] = None,
        journal: Optional[Any] = None,
        backends: Optional[Sequence[BackendSpec]] = None,
    ) -> None:
        if not specs:
            raise InvalidParameterError("the workload must contain >= 1 query")
        ids = [spec.query_id for spec in specs]
        if len(set(ids)) != len(ids):
            raise InvalidParameterError(
                "query_ids must be unique within a workload"
            )
        self.config = config if config is not None else ServiceConfig()
        self.latency = latency
        self.seed = seed
        # Kept verbatim for the journal header, so a recovered scheduler
        # can be constructed with the exact same arguments.
        self._specs: List[QuerySpec] = list(specs)
        self._fault_profile = fault_profile
        self._retry_policy = retry_policy
        self._error_model = error_model
        self._worker_config = worker_config
        self._breaker_config = breaker_config
        self._backend_specs: Optional[List[BackendSpec]] = (
            list(backends) if backends is not None else None
        )
        if self._backend_specs is not None:
            if fault_profile is not None:
                raise InvalidParameterError(
                    "fault_profile and backends are mutually exclusive; "
                    "attach per-backend fault profiles to the BackendSpecs"
                )
            if breaker_config is not None:
                raise InvalidParameterError(
                    "breaker_config and backends are mutually exclusive; "
                    "attach per-backend breakers to the BackendSpecs"
                )
        elif self.config.hedge is not None:
            raise InvalidParameterError(
                "hedged posting requires a multi-backend fleet; "
                "pass backends= alongside config.hedge"
            )
        self.plan_cache = (
            plan_cache
            if plan_cache is not None
            else PlanCache(self.config.plan_cache_capacity)
        )
        self._policy = policy_by_name(self.config.policy)
        self._allocator = allocator_by_name(self.config.allocator)
        self._admission = AdmissionController(self.config.admission_config())
        # Arrival order (query_id as tie-break) is the admission offer order.
        self._backlog: List[QuerySpec] = sorted(
            specs, key=lambda s: (s.arrival_time, s.query_id)
        )
        # Element-space slicing: each query gets a disjoint global range,
        # assigned in arrival order so offsets are workload-deterministic.
        self._offsets: Dict[int, int] = {}
        total = 0
        for spec in self._backlog:
            self._offsets[spec.query_id] = total
            total += spec.n_elements
        self._total_elements = total
        # Independent seeded streams: truth, platform, RWL, faults, selectors.
        self.truth = GroundTruth.random(total, np.random.default_rng((seed, 0)))
        self.platform: Optional[Platform] = None
        self.breaker: Optional[CircuitBreaker] = None
        self._rwl: Optional[ReliableWorkerLayer] = None
        self._router: Optional[CapacityAwareRouter] = None
        if self._backend_specs is not None:
            fleet = build_backends(
                self._backend_specs,
                self.truth,
                seed,
                repetition=self.config.repetition,
                retry_policy=retry_policy,
                error_model=error_model,
                worker_config=worker_config,
            )
            self._router = CapacityAwareRouter(
                fleet, self.config.routing, hedge=self.config.hedge
            )
        else:
            platform: Platform = SimulatedPlatform(
                self.truth,
                np.random.default_rng((seed, 1)),
                error_model=error_model,
                config=worker_config,
            )
            if fault_profile is not None:
                platform = FaultyPlatform(
                    platform, fault_profile, np.random.default_rng((seed, 3))
                )
            self.platform = platform
            self.breaker = (
                CircuitBreaker(breaker_config)
                if breaker_config is not None
                else None
            )
            self._rwl = ReliableWorkerLayer(
                platform,
                np.random.default_rng((seed, 2)),
                repetition=self.config.repetition,
                retry_policy=retry_policy,
                breaker=self.breaker,
            )
        self._brownout: Optional[BrownoutController] = (
            BrownoutController(self.config.brownout)
            if self.config.brownout is not None
            else None
        )
        # SLO engine + flight recorder: both exist only when armed, so
        # the disabled tick loop is bit-identical to the SLO-less one.
        self._slo: Optional[SLOEngine] = (
            SLOEngine(self.config.slo)
            if self.config.slo is not None
            else None
        )
        self._flight: Optional[FlightRecorder] = (
            FlightRecorder(self.config.slo.ring)
            if self.config.slo is not None
            else None
        )
        # Burn-rate gauges, resolved lazily on the first armed tick.
        self._slo_gauges: Optional[List[Tuple[str, Any]]] = None
        # Deadline bookkeeping only runs when some query can carry one —
        # with no deadlines anywhere the tick loop is bit-identical to
        # the deadline-free scheduler.
        self._deadline_enabled = self.config.default_deadline is not None or any(
            spec.deadline is not None for spec in specs
        )
        self._active: List[ActiveQuery] = []
        self._waiting: List[ActiveQuery] = []
        self._results: List[QueryResult] = []
        self._next_seq = 0
        self._now = 0.0
        self._ticks = 0
        self._shared_rounds = 0
        self._questions_posted = 0
        #: Per-tick telemetry ring (newest last); the dashboard's feed.
        self.tick_history: Deque[TickSample] = deque(maxlen=TICK_HISTORY_LIMIT)
        self._last_round_latency = 0.0
        self._last_round_questions = 0
        #: Per-query attribution chunks ``(component, start, end)`` in
        #: absolute simulated seconds; populated only while a tracer is
        #: enabled (with tracing off the report stays bit-identical to
        #: the un-instrumented scheduler).
        self._attribution: Dict[int, List[Tuple[str, float, float]]] = {}
        self._journal: Optional[Any] = None
        if journal is not None:
            self.attach_journal(journal)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def ticks(self) -> int:
        """Scheduler ticks executed so far (shared rounds + deferrals)."""
        return self._ticks

    @property
    def now(self) -> float:
        """The simulated clock, in seconds."""
        return self._now

    @property
    def drained(self) -> bool:
        """True once every query has left the scheduler."""
        return not (self._backlog or self._active or self._waiting)

    @property
    def journal(self) -> Optional[Any]:
        """The attached write-ahead journal, if any."""
        return self._journal

    @property
    def router(self) -> Optional[CapacityAwareRouter]:
        """The multi-backend router, if a fleet was configured."""
        return self._router

    @property
    def brownout(self) -> Optional[BrownoutController]:
        """The overload brownout controller, if one was configured."""
        return self._brownout

    @property
    def slo(self) -> Optional[SLOEngine]:
        """The SLO engine, if one was armed."""
        return self._slo

    @property
    def flight(self) -> Optional[FlightRecorder]:
        """The incident flight recorder, if the SLO layer was armed."""
        return self._flight

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def attach_journal(self, journal: Any) -> None:
        """Attach a write-ahead journal.

        A fresh journal writes its header and an initial snapshot; a
        journal resumed from disk (recovery) continues appending.
        """
        self._journal = journal
        journal.begin(self)

    def run(
        self, on_tick: Optional[Callable[[TickSample], None]] = None
    ) -> ServiceReport:
        """Drain the workload and return the :class:`ServiceReport`.

        Args:
            on_tick: called with the newest :class:`TickSample` after
                every tick (not after pure idle clock jumps) — the live
                dashboard's hook.
        """
        seen_ticks = 0
        while self.step():
            if on_tick is not None and self._ticks != seen_ticks:
                seen_ticks = self._ticks
                on_tick(self.tick_history[-1])
        if self._journal is not None:
            self._journal.complete(self)
        return self._build_report()

    def step(self) -> bool:
        """Execute one scheduler iteration; ``False`` once drained.

        One step is either an idle clock jump to the next arrival, a
        breaker-deferred tick, or a real tick (one shared platform
        round).  The crash-injection harness drives this directly so
        kills land exactly on tick boundaries; :meth:`run` is just
        ``while self.step(): pass``.
        """
        if self.drained:
            return False
        if self._brownout is not None:
            self._update_brownout()
        self._admit_due()
        self._promote_waiting()
        if self._deadline_enabled:
            self._expire_deadlines()
        # Snapshot: _refresh_round and _apply_deadline both finalize (and
        # remove from _active) queries that are done or out of budget, and
        # removal mid-iteration would silently skip the next query.
        runnable = [
            q
            for q in list(self._active)
            if self._refresh_round(q)
            and (not self._deadline_enabled or self._apply_deadline(q))
        ]
        if not runnable:
            if self._backlog:
                # Idle: jump the clock to the next arrival.
                self._now = max(self._now, self._backlog[0].arrival_time)
                return True
            # Deadline degradation can empty the active set while queries
            # still wait for a slot; keep stepping so they promote.
            return bool(self._waiting)
        probe_only = False
        if self.breaker is not None:
            decision = self.breaker.before_round(self._now)
            if decision is RoundDecision.DEFER:
                self._defer_round(runnable)
                self._ticks += 1
                self._sample_tick(deferred=True)
                if self._journal is not None:
                    self._journal.maybe_snapshot(self)
                return True
            probe_only = decision is RoundDecision.PROBE
        elif self._router is not None:
            admission = self._router.before_round(self._now)
            if admission.defer:
                # Every backend's circuit is open: nothing to fail over
                # to, so the whole round defers to the earliest cooldown.
                self._defer_round(runnable, target=admission.resume_at)
                self._ticks += 1
                self._sample_tick(deferred=True)
                if self._journal is not None:
                    self._journal.maybe_snapshot(self)
                return True
            probe_only = admission.probe
        self._run_tick(runnable, probe_only=probe_only)
        self._ticks += 1
        self._sample_tick(deferred=False)
        if self._journal is not None:
            self._journal.maybe_snapshot(self)
        return True

    def _defer_round(
        self, runnable: List[ActiveQuery], target: Optional[float] = None
    ) -> None:
        """Skip the shared round while the circuit is open."""
        if target is None:
            target = self.breaker.defer_target(self._now)
        get_registry().counter("circuit.deferred_rounds").inc()
        self._journal_record(
            "deferred", tick=self._ticks, now=self._now, resume_at=target
        )
        logger.info(
            "circuit open: deferring shared round from t=%.1f to t=%.1f",
            self._now,
            target,
        )
        before = self._now
        self._now = max(self._now, target)
        tracer = current_tracer()
        if tracer.enabled:
            for query in runnable:
                if query.first_scheduled_time is not None:
                    self._add_chunk(tracer, query, "defer", before, self._now)

    def _journal_record(self, record_type: str, **payload: Any) -> None:
        if self._journal is not None:
            self._journal.record(record_type, payload)

    # ------------------------------------------------------------------
    # Causal spans + latency attribution (active only while tracing)
    # ------------------------------------------------------------------
    def _add_chunk(
        self,
        tracer: Tracer,
        query: ActiveQuery,
        component: str,
        start: float,
        end: float,
    ) -> None:
        """Attribute ``[start, end]`` of *query*'s lifetime to *component*.

        The chunk doubles as a leaf span (its name is the component) so
        waterfalls are reconstructible from the trace alone.  Zero-length
        chunks are skipped — they contribute nothing and the tiling stays
        contiguous.  Span ids are structural (``q<id>/t<tick>`` — at most
        one chunk per query per tick, plus one ``q<id>/wait``), so a
        journal-recovered run re-emits identical ids.
        """
        if end <= start:
            return
        query_id = query.spec.query_id
        parent = (
            f"q{query_id}/r{query.session.round_index}"
            if query.outstanding
            else f"q{query_id}"
        )
        emit_span(
            tracer,
            f"q{query_id}/t{self._ticks}",
            component,
            start=start,
            end=end,
            parent_id=parent,
            query_id=query_id,
        )
        self._attribution.setdefault(query_id, []).append(
            (component, start, end)
        )

    def _emit_wait_chunk(
        self, tracer: Tracer, query: ActiveQuery, end: float
    ) -> None:
        """Attribute arrival-to-first-schedule (or to finalize, for
        queries that never reached the platform) as ``queue_wait``."""
        start = query.spec.arrival_time
        if end <= start:
            return
        query_id = query.spec.query_id
        emit_span(
            tracer,
            f"q{query_id}/wait",
            "queue_wait",
            start=start,
            end=end,
            parent_id=f"q{query_id}",
            query_id=query_id,
        )
        self._attribution.setdefault(query_id, []).append(
            ("queue_wait", start, end)
        )

    def _record_tick_chunks(
        self,
        tracer: Tracer,
        runnable: List[ActiveQuery],
        scheduled: List[ActiveQuery],
        start: float,
        end: float,
        outage: bool,
        hedged: FrozenSet[Question] = frozenset(),
    ) -> None:
        """Attribute one shared round's duration to every live query.

        Scheduled queries pay the round as ``round_post`` (first attempt),
        ``retry`` (re-posting lost questions), ``hedge`` (their chunk was
        mirrored to a hedge backend) or ``outage``; runnable queries left
        out by backpressure or a breaker probe pay it as ``stall``.
        Queries still waiting for their first schedule are covered by
        their ``queue_wait`` chunk instead.
        """
        scheduled_ids = {q.spec.query_id for q in scheduled}
        for query in runnable:
            if query.first_scheduled_time is None:
                continue
            if query.spec.query_id in scheduled_ids:
                if outage:
                    component = "outage"
                elif query.round_attempts > 0:
                    component = "retry"
                elif hedged and any(q in hedged for q in query.outstanding):
                    component = "hedge"
                else:
                    component = "round_post"
            else:
                component = "stall"
            self._add_chunk(tracer, query, component, start, end)

    def _sample_tick(self, deferred: bool) -> None:
        """Record this tick's :class:`TickSample` everywhere it goes.

        Outcome counters are recomputed from ``_results`` rather than
        kept incrementally so a recovered scheduler (whose results list
        is restored wholesale from a snapshot) samples correctly without
        any extra journaled state.
        """
        completed = degraded = shed = 0
        deadline_met = deadline_breached = 0
        wait_total = 0.0
        for result in self._results:
            if result.state is QueryState.COMPLETED:
                completed += 1
                wait_total += result.queue_wait
            elif result.state is QueryState.DEGRADED:
                degraded += 1
                wait_total += result.queue_wait
            elif result.state is QueryState.SHED:
                shed += 1
            if result.deadline_outcome == DEADLINE_MET:
                deadline_met += 1
            elif result.deadline_outcome is not None:
                deadline_breached += 1
        finished = completed + degraded
        sample = TickSample(
            tick=self._ticks,
            now=self._now,
            active=len(self._active),
            waiting=len(self._waiting),
            backlog=len(self._backlog),
            breaker=(
                self.breaker.state.value
                if self.breaker is not None
                else (
                    self._router.breaker_summary()
                    if self._router is not None
                    else "none"
                )
            ),
            cache_hit_rate=self.plan_cache.stats.hit_rate,
            round_latency=0.0 if deferred else self._last_round_latency,
            questions=0 if deferred else self._last_round_questions,
            questions_total=self._questions_posted,
            shared_rounds=self._shared_rounds,
            completed=completed,
            degraded=degraded,
            shed=shed,
            deferred=deferred,
            queue_wait_mean=wait_total / finished if finished else 0.0,
            deadline_met=deadline_met,
            deadline_breached=deadline_breached,
            brownout_level=(
                self._brownout.level if self._brownout is not None else 0
            ),
        )
        if self._slo is not None:
            sample = self._observe_slo(sample)
        self.tick_history.append(sample)
        registry = get_registry()
        registry.gauge("service.queue_depth").set(sample.queue_depth)
        registry.gauge("service.active_queries").set(sample.active)
        registry.gauge("service.queue_wait_mean").set(sample.queue_wait_mean)
        if not deferred:
            registry.histogram("service.round_latency").observe(
                sample.round_latency
            )
        self._journal_record("tick", **sample.to_dict())

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _admit_due(self) -> None:
        """Offer every arrival whose time has come to admission control."""
        while self._backlog and self._backlog[0].arrival_time <= self._now:
            if (
                self._brownout is not None
                and self._brownout.shed_low_priority
                and self._backlog[0].priority <= 0
            ):
                spec = self._backlog.pop(0)
                self._shed(
                    spec,
                    reason=(
                        f"brownout level {self._brownout.level}: "
                        "low-priority admissions shed"
                    ),
                )
                continue
            decision = self._admission.decide(
                n_active=len(self._active), n_waiting=len(self._waiting)
            )
            if decision is AdmissionDecision.DEFER:
                return  # stays in the backlog; re-offered next tick
            spec = self._backlog.pop(0)
            if decision is AdmissionDecision.SHED:
                self._shed(spec)
            else:
                self._admit(spec)

    def _admit(self, spec: QuerySpec) -> None:
        allocation, cache_hit = self._plan(spec)
        session = MaxSession(
            allocation,
            selector_by_name(self.config.selector),
            spec.n_elements,
            np.random.default_rng((self.seed, 4, self._next_seq)),
        )
        budget = LatencyBudget.resolve(
            spec.deadline, self.config.default_deadline, spec.arrival_time
        )
        query = ActiveQuery(
            spec=spec,
            seq=self._next_seq,
            offset=self._offsets[spec.query_id],
            session=session,
            plan_cache_hit=cache_hit,
            admitted_time=max(self._now, spec.arrival_time),
            deadline_at=budget.expires_at if budget is not None else None,
        )
        self._next_seq += 1
        self._journal_record(
            "admit",
            query_id=spec.query_id,
            seq=query.seq,
            plan_cache_hit=cache_hit,
            now=self._now,
        )
        registry = get_registry()
        registry.counter("service.queries_admitted").inc()
        tracer = current_tracer()
        if tracer.enabled:
            query_span = f"q{spec.query_id}"
            open_span(
                tracer,
                query_span,
                "query",
                start=spec.arrival_time,
                query_id=spec.query_id,
                detail=f"c0={spec.n_elements} b={spec.budget}",
            )
            # Planning consumes solver CPU, not simulated platform time,
            # so the plan span is a zero-width annotation on the clock.
            emit_span(
                tracer,
                f"{query_span}/plan",
                "plan",
                start=self._now,
                end=self._now,
                parent_id=query_span,
                query_id=spec.query_id,
                detail="cache-hit" if cache_hit else "solved",
            )
            tracer.emit(
                QueryAdmitted(
                    query_id=spec.query_id,
                    n_elements=spec.n_elements,
                    budget=spec.budget,
                    priority=spec.priority,
                    plan_cache_hit=cache_hit,
                ),
                sim_time=self._now,
            )
        logger.debug(
            "admitted query %d (c0=%d, b=%d, priority=%d, cache %s) at t=%.1f",
            spec.query_id,
            spec.n_elements,
            spec.budget,
            spec.priority,
            "hit" if cache_hit else "miss",
            self._now,
        )
        if session.done:
            # Trivial collection (c0 = 1): completed without any crowd work.
            query.state = QueryState.RUNNING
            self._finalize(query, QueryState.COMPLETED)
            return
        self._waiting.append(query)

    def _promote_waiting(self) -> None:
        """Move waiting queries into free active slots, admission order."""
        while self._waiting and (
            len(self._active) < self.config.max_active_queries
        ):
            query = self._waiting.pop(0)
            query.state = QueryState.RUNNING
            self._active.append(query)

    # ------------------------------------------------------------------
    # Deadlines & brownout
    # ------------------------------------------------------------------
    def _update_brownout(self) -> None:
        """Feed the live queue-wait p95 into the brownout controller."""
        waits = [
            max(0.0, self._now - q.spec.arrival_time) for q in self._waiting
        ]
        waits.extend(
            max(0.0, self._now - spec.arrival_time)
            for spec in self._backlog
            if spec.arrival_time <= self._now
        )
        p95 = queue_wait_p95(waits)
        registry = get_registry()
        registry.gauge("brownout.state").set(self._brownout.level)
        change = self._brownout.observe(p95)
        if change is None:
            return
        previous, level = change
        registry.gauge("brownout.state").set(level)
        registry.counter("brownout.transitions").inc()
        self._journal_record(
            "brownout",
            level=level,
            previous=previous,
            queue_wait_p95=p95,
            now=self._now,
            tick=self._ticks,
        )
        tracer = current_tracer()
        if tracer.enabled:
            tracer.emit(
                BrownoutStateChanged(
                    level=level,
                    previous=previous,
                    queue_wait_p95=p95,
                    tick=self._ticks,
                ),
                sim_time=self._now,
            )
        logger.warning(
            "brownout level %d -> %d at t=%.1f (queue-wait p95 %.1f s)",
            previous,
            level,
            self._now,
            p95,
        )
        self._apply_brownout_effects()

    def _apply_brownout_effects(self) -> None:
        """Re-derive every brownout side effect from the current level.

        Called after each transition *and* after journal recovery, so the
        effects are always a pure function of the (snapshotted) level.
        """
        if self._brownout is None:
            return
        repetition = (
            1 if self._brownout.reduce_repetition else self.config.repetition
        )
        if self._rwl is not None:
            self._rwl.repetition = repetition
        if self._router is not None:
            for backend in self._router.backends:
                backend.rwl.repetition = repetition
            self._router.hedging_suspended = self._brownout.hedging_disabled

    # ------------------------------------------------------------------
    # SLO engine & flight recorder
    # ------------------------------------------------------------------
    def _slo_signals(self, sample: TickSample) -> Dict[str, float]:
        """The threshold-rule signals for one tick.

        Built only from the sample and snapshot-restored scheduler state
        (never the process-global metrics registry), so a recovered run
        feeds the engine the same values and replays the same alerts.
        """
        waits = [
            max(0.0, self._now - q.spec.arrival_time) for q in self._waiting
        ]
        waits.extend(
            max(0.0, self._now - spec.arrival_time)
            for spec in self._backlog
            if spec.arrival_time <= self._now
        )
        hedge_waste = 0.0
        if self._router is not None:
            hedge_waste = float(self._router.hedge_summary()["waste"])
        return {
            "queue_wait_p95": queue_wait_p95(waits),
            "breaker_open": 1.0 if sample.breaker == "open" else 0.0,
            "brownout_level": float(sample.brownout_level),
            "hedge_waste": hedge_waste,
            "queue_depth": float(sample.queue_depth),
            "active_queries": float(sample.active),
            "round_latency": float(sample.round_latency),
        }

    def _observe_slo(self, sample: TickSample) -> TickSample:
        """Feed the tick to the SLO engine; returns the stamped sample."""
        transitions = self._slo.observe(sample, self._slo_signals(sample))
        health = self._slo.health()
        sample = dataclasses.replace(
            sample,
            alerts_active=len(self._slo.active_alerts()),
            health=health.state,
        )
        self._flight.record("tick", **sample.to_dict())
        registry = get_registry()
        registry.gauge("alerts.active").set(sample.alerts_active)
        if self._slo_gauges is None:
            # Resolved once: gauge lookups are per-tick hot-path work.
            self._slo_gauges = [
                (
                    target.name,
                    registry.gauge(
                        labeled_name("slo_burn_rate", {"slo": target.name})
                    ),
                )
                for target in self.config.slo.targets
            ]
        for name, gauge in self._slo_gauges:
            gauge.set(self._slo.burn_rate(name))
        tracer = current_tracer()
        for transition in transitions:
            payload = dataclasses.asdict(transition)
            self._flight.record("alert", **payload)
            self._journal_record("alert", now=self._now, **payload)
            if transition.action == "fired":
                registry.counter("alerts.fired").inc()
                if tracer.enabled:
                    tracer.emit(
                        AlertFired(
                            alert=transition.rule,
                            severity=transition.severity,
                            value=transition.value,
                            tick=transition.tick,
                        ),
                        sim_time=self._now,
                    )
                logger.warning(
                    "alert %s fired at tick %d (%s, value %.3f)",
                    transition.rule, transition.tick,
                    transition.severity, transition.value,
                )
            else:
                registry.counter("alerts.resolved").inc()
                if tracer.enabled:
                    tracer.emit(
                        AlertResolved(
                            alert=transition.rule,
                            severity=transition.severity,
                            value=transition.value,
                            tick=transition.tick,
                        ),
                        sim_time=self._now,
                    )
                logger.warning(
                    "alert %s resolved at tick %d (value %.3f)",
                    transition.rule, transition.tick, transition.value,
                )
        if self.config.slo.bundle_dir is not None:
            for transition in transitions:
                if transition.action == "fired":
                    self._write_incident_bundle(transition)
        return sample

    def debug_state(self) -> Dict[str, Any]:
        """The robustness-layer state a debug bundle snapshots."""
        state: Dict[str, Any] = {
            "tick": self._ticks,
            "now": self._now,
            "breaker": (
                self.breaker.state.value if self.breaker is not None else None
            ),
            "brownout": (
                self._brownout.state_dict()
                if self._brownout is not None
                else None
            ),
            "router": (
                self._router.hedge_summary()
                if self._router is not None
                else None
            ),
            "journal": (
                {"path": str(self._journal.path), "seq": self._journal._seq}
                if self._journal is not None
                else None
            ),
        }
        if self._slo is not None:
            state["health"] = self._slo.health().describe()
            state["active_alerts"] = self._slo.active_alerts()
            state["slo"] = self._slo.state_dict()
        return state

    def write_debug_bundle(
        self, directory: Any, reason: str = "diagnose"
    ) -> Path:
        """Snapshot a flight-recorder debug bundle into *directory*."""
        if self._flight is None:
            raise InvalidParameterError(
                "no flight recorder: the scheduler was built without an "
                "SLO config"
            )
        return write_bundle(
            directory,
            self._flight,
            state=self.debug_state(),
            metrics_snapshot=get_registry().snapshot(),
            reason=reason,
        )

    def _write_incident_bundle(self, transition: AlertTransition) -> None:
        bundle = (
            Path(self.config.slo.bundle_dir)
            / f"alert-{transition.rule}-tick-{transition.tick}"
        )
        # Structural directory name (rule + tick, no wall clock), so a
        # recovered run re-writes the same bundle idempotently.
        self.write_debug_bundle(bundle, reason=f"alert:{transition.rule}")

    def _expire_deadlines(self) -> None:
        """Reactively degrade queries whose budget has already run out.

        Every admitted query reaches an explicit terminal state: even one
        stuck behind a full active set degrades (outcome ``exceeded``)
        the moment its budget expires, rather than waiting forever.
        """
        for query in list(self._active):
            if query.deadline_at is not None and self._now > query.deadline_at:
                self._finalize(
                    query,
                    QueryState.DEGRADED,
                    deadline_outcome=DEADLINE_EXCEEDED,
                )
        for query in list(self._waiting):
            if query.deadline_at is not None and self._now > query.deadline_at:
                self._waiting.remove(query)
                self._finalize(
                    query,
                    QueryState.DEGRADED,
                    deadline_outcome=DEADLINE_EXCEEDED,
                )

    def _apply_deadline(self, query: ActiveQuery) -> bool:
        """Fit *query*'s remaining rounds into its remaining budget.

        When the currently-planned rounds cannot finish inside the
        budget, the future rounds are merged into one — a replan against
        the shrunk budget (one wide round beats several the query will
        not live to post).  When even the merged plan cannot fit, the
        query degrades *proactively* to a partial-confidence answer while
        the evidence it has is still worth returning.

        Returns ``True`` when the query should be packed this tick.
        """
        if query.deadline_at is None:
            return True
        remaining = query.deadline_at - self._now
        session = query.session
        allocation = session.allocation
        current = self.latency(len(query.outstanding))
        future = allocation.round_budgets[session.round_index + 1:]
        planned = current + sum(self.latency(b) for b in future)
        if planned <= remaining:
            return True
        merged = sum(future)
        if merged > 0 and current + self.latency(merged) <= remaining:
            budgets = allocation.round_budgets[: session.round_index + 1] + (
                merged,
            )
            session.allocation = Allocation(
                round_budgets=budgets,
                element_sequence=None,
                allocator_name=f"{allocation.allocator_name}+deadline-replan",
            )
            get_registry().counter("deadline.replans").inc()
            self._journal_record(
                "replan",
                query_id=query.spec.query_id,
                round_budgets=list(budgets),
                now=self._now,
            )
            logger.info(
                "query %d replanned for its deadline at t=%.1f: "
                "%d future rounds merged into one of budget %d",
                query.spec.query_id,
                self._now,
                len(future),
                merged,
            )
            return True
        self._finalize(
            query, QueryState.DEGRADED, deadline_outcome=DEADLINE_DEGRADED
        )
        return False

    def _round_budget(self, scheduled: List[ActiveQuery]) -> Optional[float]:
        """Tightest remaining budget among this round's riders.

        The shared round's RWL retry loop must not back off past the
        point where the most urgent rider's budget expires.
        """
        if not self._deadline_enabled:
            return None
        deadlines = [
            q.deadline_at for q in scheduled if q.deadline_at is not None
        ]
        if not deadlines:
            return None
        return max(0.0, min(deadlines) - self._now)

    def _query_budgets(
        self, scheduled: List[ActiveQuery]
    ) -> Optional[Dict[int, float]]:
        """Per-query remaining budgets for the router's backend choice."""
        if not self._deadline_enabled:
            return None
        budgets = {
            q.spec.query_id: q.deadline_at - self._now
            for q in scheduled
            if q.deadline_at is not None
        }
        return budgets or None

    def _probe_order(self, ordered: List[ActiveQuery]) -> List[ActiveQuery]:
        """Prefer probing with a query that is *not* near its deadline.

        A probe batch may be swallowed by a still-broken platform; a
        near-deadline query cannot afford to ride it.  Stable — ties
        keep policy order.
        """

        def near(query: ActiveQuery) -> bool:
            if query.deadline_at is None:
                return False
            remaining = query.deadline_at - self._now
            return remaining < 2 * self.latency(len(query.outstanding))

        safe = [q for q in ordered if not near(q)]
        risky = [q for q in ordered if near(q)]
        return safe + risky

    def _shed(self, spec: QuerySpec, reason: Optional[str] = None) -> None:
        if reason is None:
            reason = self._admission.describe_overload()
        self._journal_record(
            "shed", query_id=spec.query_id, reason=reason, now=self._now
        )
        get_registry().counter("service.queries_shed").inc()
        tracer = current_tracer()
        if tracer.enabled:
            tracer.emit(
                QueryShed(query_id=spec.query_id, reason=reason),
                sim_time=self._now,
            )
        logger.warning(
            "shed query %d at t=%.1f: %s", spec.query_id, self._now, reason
        )
        budget = LatencyBudget.resolve(
            spec.deadline, self.config.default_deadline, spec.arrival_time
        )
        if budget is not None:
            get_registry().counter(f"deadline.{DEADLINE_SHED}").inc()
        self._results.append(
            QueryResult(
                spec=spec,
                state=QueryState.SHED,
                winner=None,
                correct=None,
                singleton=False,
                latency=0.0,
                queue_wait=0.0,
                rounds=0,
                questions_posted=0,
                plan_cache_hit=False,
                slo_met=None,
                shed_reason=reason,
                deadline=budget.deadline if budget is not None else None,
                deadline_outcome=DEADLINE_SHED if budget is not None else None,
            )
        )

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def _plan(self, spec: QuerySpec) -> Tuple[Allocation, bool]:
        """The query's allocation, served from the plan cache when possible."""
        key = PlanKey.for_query(
            spec.n_elements, spec.budget, self.latency, self.config.repetition
        )
        registry = get_registry()
        cached = self.plan_cache.get(key)
        if cached is not None:
            registry.counter("service.plan_cache.hits").inc()
            self._journal_record(
                "plan",
                query_id=spec.query_id,
                n_elements=spec.n_elements,
                budget=spec.budget,
                cache_hit=True,
            )
            return cached, True
        allocation = self._allocator.allocate(
            spec.n_elements, spec.budget, self.latency
        )
        self.plan_cache.put(key, allocation)
        registry.counter("service.plan_cache.misses").inc()
        self._journal_record(
            "plan",
            query_id=spec.query_id,
            n_elements=spec.n_elements,
            budget=spec.budget,
            cache_hit=False,
        )
        return allocation, False

    # ------------------------------------------------------------------
    # Tick execution
    # ------------------------------------------------------------------
    def _refresh_round(self, query: ActiveQuery) -> bool:
        """Ensure *query* has outstanding questions; finalize when done.

        Returns ``True`` when the query has questions to post this tick.
        """
        if query.outstanding:
            return True
        session = query.session
        if session.done:
            self._finalize(query, QueryState.COMPLETED)
            return False
        try:
            pending = session.pending_questions()
        except SessionStateError:
            # Selecting emptied the remaining rounds; the session is done.
            self._finalize(query, QueryState.COMPLETED)
            return False
        query.outstanding = {
            query.to_global(q): normalize_question(*q) for q in pending
        }
        query.collected = {}
        query.round_attempts = 0
        query.questions_posted += len(pending)
        tracer = current_tracer()
        if tracer.enabled:
            query_id = query.spec.query_id
            open_span(
                tracer,
                f"q{query_id}/r{session.round_index}",
                "round",
                start=self._now,
                parent_id=f"q{query_id}",
                query_id=query_id,
                detail=f"{len(pending)} questions",
            )
        return True

    def _run_tick(
        self, runnable: List[ActiveQuery], probe_only: bool = False
    ) -> None:
        """Pack, post and resolve one shared round.

        With ``probe_only`` (circuit half-open) only the first query in
        policy order is packed: a single probe round tests the platform
        without exposing the whole runnable set to another outage.
        """
        scheduled: List[ActiveQuery] = []
        batch: List[Question] = []
        ordered = self._policy.order(runnable)
        if probe_only:
            if self._deadline_enabled:
                ordered = self._probe_order(ordered)
            ordered = ordered[:1]
        for query in ordered:
            size = len(query.outstanding)
            if batch and len(batch) + size > self.config.max_inflight_questions:
                continue  # backpressure: whole rounds only; retry next tick
            scheduled.append(query)
            batch.extend(query.outstanding)
        registry = get_registry()
        tracer = current_tracer()
        for query in scheduled:
            if query.first_scheduled_time is None:
                query.first_scheduled_time = self._now
                if tracer.enabled:
                    self._emit_wait_chunk(tracer, query, self._now)
            query.times_scheduled += 1
            if tracer.enabled:
                tracer.emit(
                    QueryScheduled(
                        query_id=query.spec.query_id,
                        tick=self._ticks,
                        round_index=query.session.round_index,
                        n_questions=len(query.outstanding),
                    ),
                    sim_time=self._now,
                )
        logger.debug(
            "tick %d at t=%.1f: %d queries share a round of %d questions%s",
            self._ticks,
            self._now,
            len(scheduled),
            len(batch),
            " (probe)" if probe_only else "",
        )
        self._journal_record(
            "round_posted",
            tick=self._ticks,
            now=self._now,
            queries=[q.spec.query_id for q in scheduled],
            n_questions=len(batch),
            probe=probe_only,
        )
        if isinstance(self.platform, FaultyPlatform):
            # The sustained-outage window is gated on simulated time.
            self.platform.set_clock(self._now)
        tick_span = f"t{self._ticks}"
        tick_start = self._now
        if tracer.enabled:
            open_span(
                tracer,
                tick_span,
                "tick",
                start=tick_start,
                detail=(
                    f"{len(scheduled)} queries, {len(batch)} questions"
                    + (" (probe)" if probe_only else "")
                ),
            )
        if self._router is not None:
            self._routed_tick(
                runnable, scheduled, tick_span, tick_start, tracer, registry
            )
            return
        try:
            # The span scope hands the tick's id and clock anchor down to
            # the RWL / fault layer / breaker, whose events and attempt
            # sub-spans then nest under this shared round.
            with span_scope(tick_span, base_time=tick_start):
                result = self._rwl.ask(
                    batch, budget=self._round_budget(scheduled)
                )
        except PlatformOutageError as outage:
            # No retry policy: the whole shared round was swallowed.  Every
            # scheduled query keeps its outstanding questions for the next
            # tick; the detection time is latency all of them paid.
            self._now += outage.wasted_seconds
            self._last_round_latency = float(outage.wasted_seconds)
            self._last_round_questions = 0
            if self.breaker is not None:
                self.breaker.note_time(self._now)
            self._journal_record(
                "answers_collected",
                tick=self._ticks,
                outage=True,
                latency=outage.wasted_seconds,
            )
            if tracer.enabled:
                close_span(tracer, tick_span, end=self._now, status="outage")
                self._record_tick_chunks(
                    tracer, runnable, scheduled, tick_start, self._now,
                    outage=True,
                )
            for query in scheduled:
                self._bump_round_attempts(query)
            return
        self._shared_rounds += 1
        self._questions_posted += len(batch)
        self._last_round_latency = float(result.latency)
        self._last_round_questions = len(batch)
        registry.counter("service.rounds").inc()
        registry.counter("service.questions_posted").inc(len(batch))
        self._now += result.latency
        if self.breaker is not None:
            # The RWL trips the breaker clock-lessly; stamp opened_at now
            # that the round's cost is on the clock.
            self.breaker.note_time(self._now)
        self._journal_record(
            "answers_collected",
            tick=self._ticks,
            outage=False,
            n_answers=len(result.answers),
            latency=result.latency,
        )
        if tracer.enabled:
            close_span(tracer, tick_span, end=self._now)
            self._record_tick_chunks(
                tracer, runnable, scheduled, tick_start, self._now,
                outage=False,
            )
        by_question = {answer.question: answer for answer in result.answers}
        for query in scheduled:
            self._collect(query, by_question)

    def _routed_tick(
        self,
        runnable: List[ActiveQuery],
        scheduled: List[ActiveQuery],
        tick_span: str,
        tick_start: float,
        tracer: Any,
        registry: Any,
    ) -> None:
        """Post one shared round through the multi-backend router.

        Mirrors the direct posting path tick-for-tick: a total outage
        (every backend that received questions went dark) takes the same
        whole-round outage exit, a partial outage simply leaves that
        backend's questions unanswered for the next tick, and questions
        the router could not place under capacity are exempt from the
        round-attempt bump — the crowd never saw them.
        """
        units = [
            (query.spec.query_id, list(query.outstanding))
            for query in scheduled
        ]
        with span_scope(tick_span, base_time=tick_start):
            outcome = self._router.post_round(
                units,
                now=self._now,
                tick=self._ticks,
                budgets=self._query_budgets(scheduled),
                rwl_budget=self._round_budget(scheduled),
            )
        if not self._router.solo:
            self._journal_record("route", **outcome.decision.to_dict())
        if outcome.total_outage:
            self._now += outcome.latency
            self._last_round_latency = float(outcome.latency)
            self._last_round_questions = 0
            self._router.note_time(self._now)
            self._journal_record(
                "answers_collected",
                tick=self._ticks,
                outage=True,
                latency=outcome.latency,
            )
            if tracer.enabled:
                close_span(tracer, tick_span, end=self._now, status="outage")
                self._record_tick_chunks(
                    tracer, runnable, scheduled, tick_start, self._now,
                    outage=True,
                )
            for query in scheduled:
                self._bump_round_attempts(query)
            return
        self._shared_rounds += 1
        self._questions_posted += outcome.n_posted
        self._last_round_latency = float(outcome.latency)
        self._last_round_questions = outcome.n_posted
        registry.counter("service.rounds").inc()
        registry.counter("service.questions_posted").inc(outcome.n_posted)
        self._now += outcome.latency
        self._router.note_time(self._now)
        self._journal_record(
            "answers_collected",
            tick=self._ticks,
            outage=False,
            n_answers=len(outcome.answers),
            latency=outcome.latency,
        )
        if tracer.enabled:
            close_span(tracer, tick_span, end=self._now)
            self._record_tick_chunks(
                tracer, runnable, scheduled, tick_start, self._now,
                outage=False, hedged=outcome.hedged_questions,
            )
        by_question = {answer.question: answer for answer in outcome.answers}
        for query in scheduled:
            self._collect(query, by_question, unposted=outcome.unposted)

    def _collect(
        self,
        query: ActiveQuery,
        by_question: Dict[Question, Answer],
        unposted: Optional[FrozenSet[Question]] = None,
    ) -> None:
        """Route a shared round's answers back into *query*'s session."""
        for global_q in list(query.outstanding):
            answer = by_question.get(global_q)
            if answer is None:
                continue  # lost to a fault; re-posted next tick
            local_q = query.outstanding.pop(global_q)
            query.collected[local_q] = query.to_local_answer(answer)
        if query.outstanding:
            if unposted is not None and all(
                global_q in unposted for global_q in query.outstanding
            ):
                # Capacity deferral, not a lost round: the crowd never saw
                # these questions, so the query spends no round attempt.
                return
            self._bump_round_attempts(query)
            return
        tracer = current_tracer()
        if tracer.enabled:
            # round_index has not advanced yet (submit below does that),
            # so the id matches the open emitted by _refresh_round.
            close_span(
                tracer,
                f"q{query.spec.query_id}/r{query.session.round_index}",
                end=self._now,
            )
        query.session.submit(query.collected.values())
        query.collected = {}
        query.round_attempts = 0
        if query.session.done:
            self._finalize(query, QueryState.COMPLETED)

    def _bump_round_attempts(self, query: ActiveQuery) -> None:
        query.round_attempts += 1
        if query.round_attempts >= self.config.max_round_attempts:
            logger.warning(
                "query %d degraded: round %d unresolved after %d shared "
                "rounds (%d questions lost)",
                query.spec.query_id,
                query.session.round_index,
                query.round_attempts,
                len(query.outstanding),
            )
            self._finalize(query, QueryState.DEGRADED)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _degraded_winner(self, query: ActiveQuery) -> Element:
        """Best guess from all evidence, committed and collected."""
        graph = AnswerGraph(range(query.spec.n_elements))
        graph.record_all(query.session.evidence.iter_answers())
        graph.record_all(query.collected.values())
        scores = score_candidates(graph)
        return max(scores, key=lambda element: (scores[element], -element))

    def _finalize(
        self,
        query: ActiveQuery,
        state: QueryState,
        deadline_outcome: Optional[str] = None,
    ) -> None:
        if state is QueryState.COMPLETED:
            winner = query.session.winner
            singleton = query.session.singleton_termination
        else:
            winner = self._degraded_winner(query)
            singleton = False
        spec = query.spec
        true_max = self._true_local_max(query)
        latency = max(0.0, self._now - spec.arrival_time)
        queue_wait = (
            max(0.0, query.first_scheduled_time - spec.arrival_time)
            if query.first_scheduled_time is not None
            else 0.0
        )
        slo_met = (
            latency <= spec.latency_slo
            if spec.latency_slo is not None
            else None
        )
        deadline_driven = deadline_outcome is not None
        deadline: Optional[float] = None
        if query.deadline_at is not None:
            deadline = query.deadline_at - spec.arrival_time
            if deadline_outcome is None:
                if self._now > query.deadline_at:
                    deadline_outcome = DEADLINE_EXCEEDED
                elif state is QueryState.COMPLETED:
                    deadline_outcome = DEADLINE_MET
                else:
                    deadline_outcome = DEADLINE_DEGRADED
        self._results.append(
            QueryResult(
                spec=spec,
                state=state,
                winner=winner,
                correct=winner == true_max,
                singleton=singleton,
                latency=latency,
                queue_wait=queue_wait,
                rounds=query.session.rounds_executed,
                questions_posted=query.questions_posted,
                plan_cache_hit=query.plan_cache_hit,
                slo_met=slo_met,
                deadline=deadline,
                deadline_outcome=deadline_outcome,
            )
        )
        if query in self._active:
            self._active.remove(query)
        finalize_payload: Dict[str, Any] = dict(
            query_id=spec.query_id,
            state=state.value,
            winner=winner,
            now=self._now,
        )
        if deadline_outcome is not None:
            finalize_payload["deadline_outcome"] = deadline_outcome
        self._journal_record("finalize", **finalize_payload)
        registry = get_registry()
        if state is QueryState.COMPLETED:
            registry.counter("service.queries_completed").inc()
        else:
            registry.counter("service.queries_degraded").inc()
        if deadline_outcome is not None:
            registry.counter(f"deadline.{deadline_outcome}").inc()
        registry.histogram("service.query_latency").observe(latency)
        registry.histogram("service.queue_wait").observe(queue_wait)
        tracer = current_tracer()
        if tracer.enabled:
            if query.first_scheduled_time is None:
                # Never reached the platform (trivial c0=1, or degraded
                # out of the queue): the whole lifetime was queue wait.
                self._emit_wait_chunk(tracer, query, self._now)
            if query.outstanding:
                # Degraded mid-round: the open round span ends with the
                # query.
                close_span(
                    tracer,
                    f"q{spec.query_id}/r{query.session.round_index}",
                    end=self._now,
                    status="degraded",
                )
            close_span(
                tracer, f"q{spec.query_id}", end=self._now, status=state.value
            )
            totals: Dict[str, float] = {}
            for component, start, end in self._attribution.get(
                spec.query_id, ()
            ):
                totals[component] = totals.get(component, 0.0) + (end - start)
            for component, seconds in totals.items():
                registry.histogram(component_metric(component)).observe(
                    seconds
                )
            if deadline_outcome == DEADLINE_EXCEEDED or (
                deadline_driven and deadline_outcome == DEADLINE_DEGRADED
            ):
                tracer.emit(
                    DeadlineExceeded(
                        query_id=spec.query_id,
                        deadline=deadline if deadline is not None else 0.0,
                        overrun=max(0.0, self._now - query.deadline_at),
                        outcome=deadline_outcome,
                    ),
                    sim_time=self._now,
                )
            tracer.emit(
                QueryCompleted(
                    query_id=spec.query_id,
                    state=state.value,
                    winner=winner,
                    latency=latency,
                    queue_wait=queue_wait,
                    rounds=query.session.rounds_executed,
                ),
                sim_time=self._now,
            )
        logger.debug(
            "query %d %s at t=%.1f: winner %d, latency %.1f s, wait %.1f s",
            spec.query_id,
            state.value,
            self._now,
            winner,
            latency,
            queue_wait,
        )

    def _true_local_max(self, query: ActiveQuery) -> Element:
        """The query's true MAX under the shared hidden order, local IDs."""
        span = range(
            query.offset, query.offset + query.spec.n_elements
        )
        best = min(span, key=self.truth.rank)
        return best - query.offset

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _build_report(self) -> ServiceReport:
        cache = self.plan_cache.snapshot()
        return ServiceReport(
            results=tuple(
                sorted(self._results, key=lambda r: r.spec.query_id)
            ),
            makespan=self._now,
            ticks=self._ticks,
            shared_rounds=self._shared_rounds,
            questions_posted=self._questions_posted,
            cache_hits=cache["hits"],
            cache_misses=cache["misses"],
            cache_evictions=cache["evictions"],
            attribution=(
                summarize_attribution(self._attribution)
                if self._attribution
                else None
            ),
            health=self._slo.health() if self._slo is not None else None,
        )
