"""Synthetic multi-query workloads for the MAX service.

A :class:`WorkloadConfig` describes an arrival process (exponential
interarrival times), query-size and budget distributions, priorities and
optional SLOs; :func:`generate_workload` samples a concrete list of
:class:`~repro.service.query.QuerySpec` s from it, fully determined by the
seed.  Named presets cover the scenarios the CLI and benchmarks exercise:

* ``smoke`` — a handful of small queries; finishes in well under a second.
* ``steady`` — a steady trickle of mixed sizes (the default).
* ``burst`` — 60 queries arriving almost at once: the admission-control
  and fair-share stress test (the ">= 50 concurrent queries" scenario).
* ``repeated`` — many queries drawn from two shapes only, exercising the
  plan cache (hit rate approaches 1).
* ``sla`` — a priority mix where every query carries a latency SLO.
* ``deadline`` — a priority mix where every query carries an *enforced*
  end-to-end latency budget (see :mod:`repro.service.deadline`), the
  deadline-propagation and brownout demo workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.service.query import QuerySpec


@dataclass(frozen=True)
class WorkloadConfig:
    """Distributions a synthetic workload is sampled from.

    Attributes:
        n_queries: how many queries to generate.
        mean_interarrival: mean of the exponential gap between arrivals in
            simulated seconds (0 = every query arrives at t = 0).
        sizes: candidate collection sizes ``c0``, sampled uniformly.
        budget_factors: the budget is ``round(factor * c0)`` for a factor
            sampled uniformly from these (clamped up to the Theorem 1
            minimum ``c0 - 1``).
        priorities: priority classes, sampled uniformly.
        slo_seconds: when set, every query carries this latency SLO
            (reported, never enforced).
        deadline_seconds: when set, every query carries this *enforced*
            end-to-end latency budget — the scheduler replans, degrades
            or sheds to meet it.  A config constant, not a sampled
            value, so adding it never perturbs the RNG stream.
    """

    n_queries: int
    mean_interarrival: float
    sizes: Tuple[int, ...]
    budget_factors: Tuple[float, ...]
    priorities: Tuple[int, ...] = (0,)
    slo_seconds: Optional[float] = None
    deadline_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_queries < 1:
            raise InvalidParameterError(
                f"n_queries must be >= 1, got {self.n_queries}"
            )
        if self.mean_interarrival < 0:
            raise InvalidParameterError(
                f"mean_interarrival must be >= 0, got {self.mean_interarrival}"
            )
        if not self.sizes or any(size < 1 for size in self.sizes):
            raise InvalidParameterError(
                f"sizes must be non-empty with every entry >= 1, "
                f"got {self.sizes}"
            )
        if not self.budget_factors or any(f <= 0 for f in self.budget_factors):
            raise InvalidParameterError(
                f"budget_factors must be non-empty and > 0, "
                f"got {self.budget_factors}"
            )
        if not self.priorities:
            raise InvalidParameterError("priorities must be non-empty")
        if self.slo_seconds is not None and self.slo_seconds <= 0:
            raise InvalidParameterError(
                f"slo_seconds must be > 0, got {self.slo_seconds}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise InvalidParameterError(
                f"deadline_seconds must be > 0, got {self.deadline_seconds}"
            )


_PRESETS: Dict[str, WorkloadConfig] = {
    "smoke": WorkloadConfig(
        n_queries=6,
        mean_interarrival=120.0,
        sizes=(8, 12),
        budget_factors=(4.0, 6.0),
    ),
    "steady": WorkloadConfig(
        n_queries=40,
        mean_interarrival=60.0,
        sizes=(16, 24, 40),
        budget_factors=(4.0, 5.0, 8.0),
        priorities=(0, 1),
    ),
    "burst": WorkloadConfig(
        n_queries=60,
        mean_interarrival=0.0,
        sizes=(12, 20, 32),
        budget_factors=(4.0, 6.0),
        priorities=(0, 1, 2),
    ),
    "repeated": WorkloadConfig(
        n_queries=50,
        mean_interarrival=30.0,
        sizes=(16, 24),
        budget_factors=(5.0,),
    ),
    "sla": WorkloadConfig(
        n_queries=30,
        mean_interarrival=45.0,
        sizes=(12, 20, 28),
        budget_factors=(4.0, 6.0),
        priorities=(0, 1, 2),
        slo_seconds=4000.0,
    ),
    "deadline": WorkloadConfig(
        n_queries=30,
        mean_interarrival=45.0,
        sizes=(12, 20, 28),
        budget_factors=(4.0, 6.0),
        priorities=(0, 1, 2),
        deadline_seconds=9000.0,
    ),
}


def available_workloads() -> List[str]:
    """Preset names accepted by :func:`workload_by_name` (CLI ``serve``)."""
    return sorted(_PRESETS)


def workload_by_name(name: str) -> WorkloadConfig:
    """Look up a named workload preset.

    Raises:
        InvalidParameterError: for unknown names (the message lists the
            available ones).
    """
    try:
        return _PRESETS[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown workload {name!r}; available: "
            f"{', '.join(available_workloads())}"
        ) from None


def generate_workload(
    config: WorkloadConfig, seed: int, n_queries: Optional[int] = None
) -> List[QuerySpec]:
    """Sample a concrete workload from *config*, determined by *seed*.

    Args:
        config: the distributions to draw from.
        seed: randomness seed; the same seed reproduces the same specs.
        n_queries: override ``config.n_queries`` (e.g. the CLI's
            ``--queries`` flag or a benchmark's concurrency sweep).

    Returns:
        Specs ordered by arrival time, ``query_id`` = arrival rank.
    """
    count = n_queries if n_queries is not None else config.n_queries
    if count < 1:
        raise InvalidParameterError(f"n_queries must be >= 1, got {count}")
    rng = np.random.default_rng((seed, 17))
    specs: List[QuerySpec] = []
    arrival = 0.0
    for query_id in range(count):
        if query_id > 0 and config.mean_interarrival > 0:
            arrival += float(rng.exponential(config.mean_interarrival))
        size = int(rng.choice(config.sizes))
        factor = float(rng.choice(config.budget_factors))
        budget = max(size - 1, round(factor * size))
        specs.append(
            QuerySpec(
                query_id=query_id,
                n_elements=size,
                budget=budget,
                priority=int(rng.choice(config.priorities)),
                latency_slo=config.slo_seconds,
                arrival_time=arrival,
                deadline=config.deadline_seconds,
            )
        )
    return specs
