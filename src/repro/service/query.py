"""Value types of the multi-query MAX service.

A :class:`QuerySpec` describes one MAX query a requester submits to the
service: its own collection size ``c0``, question budget, priority and an
optional latency SLO.  The scheduler turns every admitted spec into a
:class:`repro.engine.session.MaxSession` and, once the query leaves the
system, summarizes what happened in a :class:`QueryResult`.

Element IDs inside a spec are *local* (``0 .. n_elements - 1``); the
scheduler maps them onto a disjoint slice of the shared platform's global
element space, so concurrent queries can coexist in one crowd.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.errors import InvalidParameterError
from repro.types import Element


class QueryState(str, Enum):
    """Lifecycle of a query inside the service.

    ``QUEUED -> RUNNING -> COMPLETED`` is the happy path; ``DEGRADED``
    means the platform faulted past the scheduler's retry cap and the
    winner was declared from partial evidence; ``SHED`` means admission
    control rejected the query outright.
    """

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    DEGRADED = "degraded"
    SHED = "shed"


@dataclass(frozen=True)
class QuerySpec:
    """One MAX query submitted to the service.

    Attributes:
        query_id: requester-chosen identifier, unique within a workload.
        n_elements: ``c0``, the size of the query's collection.
        budget: total distinct-question budget for this query.
        priority: larger = more urgent (consumed by the ``priority``
            batching policy; ties broken by admission order).
        latency_slo: optional target for the query's end-to-end latency in
            simulated seconds (arrival to completion).  Purely declarative:
            the report scores attainment, the scheduler does not preempt.
        arrival_time: simulated second at which the query reaches the
            service.
        deadline: optional *enforced* end-to-end latency budget in
            simulated seconds (arrival to completion).  Unlike
            ``latency_slo`` the scheduler acts on it: near-deadline
            queries are replanned against the shrunk budget or degraded
            to a partial-confidence answer instead of silently missing.
    """

    query_id: int
    n_elements: int
    budget: int
    priority: int = 0
    latency_slo: Optional[float] = None
    arrival_time: float = 0.0
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_elements < 1:
            raise InvalidParameterError(
                f"query {self.query_id}: n_elements must be >= 1, "
                f"got {self.n_elements}"
            )
        if self.budget < self.n_elements - 1:
            raise InvalidParameterError(
                f"query {self.query_id}: budget {self.budget} < c0 - 1 = "
                f"{self.n_elements - 1} (Theorem 1: infeasible)"
            )
        if self.latency_slo is not None and self.latency_slo <= 0:
            raise InvalidParameterError(
                f"query {self.query_id}: latency_slo must be > 0, "
                f"got {self.latency_slo}"
            )
        if self.arrival_time < 0:
            raise InvalidParameterError(
                f"query {self.query_id}: arrival_time must be >= 0, "
                f"got {self.arrival_time}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise InvalidParameterError(
                f"query {self.query_id}: deadline must be > 0, "
                f"got {self.deadline}"
            )


@dataclass(frozen=True)
class QueryResult:
    """Everything the service knows about one finished (or shed) query.

    Attributes:
        spec: the query as submitted.
        state: terminal :class:`QueryState` (``COMPLETED``, ``DEGRADED``
            or ``SHED``).
        winner: declared MAX in the query's *local* element IDs
            (``None`` for a shed query).
        correct: whether the winner is the query's true MAX under the
            shared platform's hidden order (``None`` for a shed query).
        singleton: whether the query terminated with a single candidate.
        latency: arrival-to-completion simulated seconds (0 when shed).
        queue_wait: seconds between arrival and the first shared round
            that carried the query's questions.
        rounds: rounds of the query's allocation actually executed.
        questions_posted: distinct questions the query contributed to
            shared rounds (re-posts after faults counted once).
        plan_cache_hit: whether the query's tDP allocation came from the
            plan cache instead of a fresh solve.
        slo_met: ``latency <= latency_slo`` (``None`` without an SLO or
            for a shed query).
        shed_reason: admission-control reason for a shed query.
        deadline: the *effective* enforced budget in seconds (the spec's
            own deadline or the service default; ``None`` when neither
            applies).
        deadline_outcome: one of
            :data:`repro.service.deadline.DEADLINE_OUTCOMES` for queries
            that carried a budget (``None`` otherwise).
    """

    spec: QuerySpec
    state: QueryState
    winner: Optional[Element]
    correct: Optional[bool]
    singleton: bool
    latency: float
    queue_wait: float
    rounds: int
    questions_posted: int
    plan_cache_hit: bool
    slo_met: Optional[bool] = None
    shed_reason: Optional[str] = None
    deadline: Optional[float] = None
    deadline_outcome: Optional[str] = None

    @property
    def finished(self) -> bool:
        """Whether the query actually ran to a declared winner."""
        return self.state in (QueryState.COMPLETED, QueryState.DEGRADED)
