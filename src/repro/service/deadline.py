"""End-to-end latency budgets and the overload brownout controller.

The paper allocates a latency budget *offline*; this module enforces it
*online*.  A :class:`LatencyBudget` is attached to every admitted query
(from :attr:`QuerySpec.deadline` or ``ServiceConfig.default_deadline``)
and threaded through every downstream layer:

* the scheduler degrades or replans queries whose remaining budget cannot
  cover the planned rounds (see ``MaxScheduler._replan_for_deadline``);
* the router prefers faster backends for near-deadline chunks and hedges
  predicted-slow chunks (:class:`~repro.crowd.multibackend.HedgeConfig`);
* the RWL clips retry backoff to the remaining budget, never to the
  global retry deadline alone.

The :class:`BrownoutController` is the overload half: when the live
queue-wait p95 crosses a threshold it escalates one level per tick —

===== =======================================================
level effect (cumulative)
===== =======================================================
1     shed new low-priority admissions (``priority <= 0``)
2     post rounds at repetition 1 (widened degradation)
3     disable hedged posting (hedges amplify load)
===== =======================================================

— and de-escalates one level per tick once the p95 drops below
``threshold * clear_fraction`` (hysteresis), restoring effects in
reverse order.  Every transition is journaled and the level is
snapshotted, so crash recovery replays brownout decisions bit-identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.errors import InvalidParameterError

__all__ = [
    "DEADLINE_MET",
    "DEADLINE_DEGRADED",
    "DEADLINE_SHED",
    "DEADLINE_EXCEEDED",
    "DEADLINE_OUTCOMES",
    "LatencyBudget",
    "BrownoutConfig",
    "BrownoutController",
]

#: The query finished (completed) at or before its deadline.
DEADLINE_MET = "met"
#: The scheduler degraded the query to a partial-confidence answer in
#: time, rather than letting it silently blow the deadline.
DEADLINE_DEGRADED = "degraded"
#: The query was shed (admission control or brownout) before running.
DEADLINE_SHED = "shed"
#: The query finished after its deadline had already passed.
DEADLINE_EXCEEDED = "exceeded"

#: Every terminal deadline outcome, in report order.
DEADLINE_OUTCOMES = (
    DEADLINE_MET,
    DEADLINE_DEGRADED,
    DEADLINE_SHED,
    DEADLINE_EXCEEDED,
)


@dataclass(frozen=True)
class LatencyBudget:
    """A per-query end-to-end latency budget, anchored at arrival.

    Attributes:
        deadline: the budget in seconds (relative to arrival).
        arrival: the query's arrival time on the simulated clock.
    """

    deadline: float
    arrival: float = 0.0

    def __post_init__(self) -> None:
        if not self.deadline > 0:
            raise InvalidParameterError(
                f"deadline must be > 0 seconds, got {self.deadline}"
            )
        if self.arrival < 0:
            raise InvalidParameterError(
                f"arrival must be >= 0, got {self.arrival}"
            )

    @property
    def expires_at(self) -> float:
        """Absolute time at which the budget runs out."""
        return self.arrival + self.deadline

    def remaining(self, now: float) -> float:
        """Seconds of budget left at *now* (negative once expired)."""
        return self.expires_at - now

    def expired(self, now: float) -> bool:
        """Whether the budget has run out at *now*.

        Exactly on the boundary counts as *not* expired — a query that
        finishes at precisely ``expires_at`` met its deadline.
        """
        return now > self.expires_at

    @classmethod
    def resolve(
        cls,
        deadline: Optional[float],
        default: Optional[float],
        arrival: float,
    ) -> Optional["LatencyBudget"]:
        """The effective budget: the spec's own deadline, else the default."""
        effective = deadline if deadline is not None else default
        if effective is None or math.isinf(effective):
            return None
        return cls(deadline=float(effective), arrival=float(arrival))


@dataclass(frozen=True)
class BrownoutConfig:
    """Thresholds of the overload brownout controller.

    Attributes:
        queue_wait_threshold: live queue-wait p95 (seconds) at or above
            which the controller escalates one level per tick.
        clear_fraction: hysteresis — de-escalation requires the p95 to
            drop below ``queue_wait_threshold * clear_fraction``.
        max_level: deepest brownout level (1..3).
    """

    queue_wait_threshold: float = 3600.0
    clear_fraction: float = 0.75
    max_level: int = 3

    def __post_init__(self) -> None:
        if not self.queue_wait_threshold > 0:
            raise InvalidParameterError(
                f"queue_wait_threshold must be > 0, "
                f"got {self.queue_wait_threshold}"
            )
        if not 0.0 < self.clear_fraction <= 1.0:
            raise InvalidParameterError(
                f"clear_fraction must be in (0, 1], got {self.clear_fraction}"
            )
        if not 1 <= self.max_level <= 3:
            raise InvalidParameterError(
                f"max_level must be in 1..3, got {self.max_level}"
            )

    @property
    def clear_threshold(self) -> float:
        """The p95 below which the controller starts restoring."""
        return self.queue_wait_threshold * self.clear_fraction


#: Brownout level at which new low-priority admissions are shed.
LEVEL_SHED_LOW_PRIORITY = 1
#: Brownout level at which rounds post at repetition 1.
LEVEL_REDUCE_REPETITION = 2
#: Brownout level at which hedged posting is disabled.
LEVEL_DISABLE_HEDGING = 3


class BrownoutController:
    """Progressive load shedding driven by the live queue-wait p95.

    The controller is deliberately clock- and RNG-free: :meth:`observe`
    is a pure function of the fed p95 and the current level, so replaying
    the same tick sequence after crash recovery reproduces the same
    transitions bit for bit.  The level itself is snapshotted via
    :meth:`state_dict` so recovery resumes mid-brownout.
    """

    def __init__(self, config: BrownoutConfig) -> None:
        self.config = config
        #: Current brownout level, 0 (off) .. ``config.max_level``.
        self.level = 0
        #: Total level transitions (either direction).
        self.transitions = 0

    # -- effects -------------------------------------------------------
    @property
    def shed_low_priority(self) -> bool:
        """Whether new low-priority admissions are currently shed."""
        return self.level >= LEVEL_SHED_LOW_PRIORITY

    @property
    def reduce_repetition(self) -> bool:
        """Whether rounds should post at repetition 1."""
        return self.level >= LEVEL_REDUCE_REPETITION

    @property
    def hedging_disabled(self) -> bool:
        """Whether hedged posting is currently suspended."""
        return self.level >= LEVEL_DISABLE_HEDGING

    # -- driving -------------------------------------------------------
    def observe(self, queue_wait_p95: float) -> Optional[Tuple[int, int]]:
        """Feed one tick's queue-wait p95.

        Returns ``(previous, new)`` on a level change, ``None`` otherwise.
        Escalates or restores at most one level per call so effects are
        applied (and journaled) in a strict, replayable order.
        """
        from repro.obs.stats import escalation_step

        config = self.config
        change = escalation_step(
            queue_wait_p95,
            self.level,
            threshold=config.queue_wait_threshold,
            clear_threshold=config.clear_threshold,
            max_level=config.max_level,
        )
        if change is None:
            return None
        self.level = change[1]
        self.transitions += 1
        return change

    # -- snapshot / restore -------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Serialize the mutable controller state for a journal snapshot."""
        return {"level": self.level, "transitions": self.transitions}

    def load_state_dict(self, payload: Dict[str, Any]) -> None:
        """Restore the counterpart of :meth:`state_dict`."""
        self.level = int(payload["level"])
        self.transitions = int(payload["transitions"])


def queue_wait_p95(waits: Sequence[float]) -> float:
    """Nearest-rank p95 of the live queue waits (0.0 when empty)."""
    from repro.obs.stats import percentile

    if not waits:
        return 0.0
    return float(percentile(waits, 95.0))
