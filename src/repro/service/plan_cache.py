"""LRU cache of tDP allocations keyed by query shape.

Solving MinLatency is the one CPU-bound step of admitting a query; in a
service, query *shapes* repeat constantly (the same ``c0``/budget under the
same latency model), so the optimal allocation can be reused verbatim —
tDP is deterministic given its inputs.  The cache key captures everything
the solver consumes: ``(c0, budget, latency-model, rwl-params)``.

The latency model is keyed by its ``repr``; every model in
:mod:`repro.core.latency` renders its full parameterization there (knots
included for the tabulated models), so equal reprs imply equal functions.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.allocation import Allocation
from repro.core.latency import LatencyFunction
from repro.errors import InvalidParameterError
from repro.obs.profiling import PROFILER


@dataclass(frozen=True)
class PlanKey:
    """Identity of a solver input: equal keys guarantee equal allocations.

    Attributes:
        n_elements: ``c0`` of the query.
        budget: the query's distinct-question budget.
        latency_key: ``repr`` of the latency model used for planning.
        repetition: the RWL repetition factor the service posts under.
    """

    n_elements: int
    budget: int
    latency_key: str
    repetition: int

    @classmethod
    def for_query(
        cls,
        n_elements: int,
        budget: int,
        latency: LatencyFunction,
        repetition: int = 1,
    ) -> "PlanKey":
        """Build the key for one query shape under *latency*."""
        return cls(
            n_elements=n_elements,
            budget=budget,
            latency_key=repr(latency),
            repetition=repetition,
        )


@dataclass
class PlanCacheStats:
    """Cumulative hit/miss/eviction counts of a :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0


class PlanCache:
    """A bounded LRU mapping :class:`PlanKey` to :class:`Allocation`.

    Args:
        capacity: maximum entries retained; the least recently *used*
            entry is evicted when a new key would exceed it.

    Lookups through :meth:`get` refresh recency and update the hit/miss
    stats; :meth:`peek` does neither (tests and reports use it to inspect
    the cache without perturbing it).
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise InvalidParameterError(
                f"plan cache capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.stats = PlanCacheStats()
        self._entries: "OrderedDict[PlanKey, Allocation]" = OrderedDict()
        # Secondary index by coarse shape (c0, budget) — the *two-level*
        # hit question: how many full-key misses would have hit if the
        # latency model / repetition matched?  Profiling-only diagnostic.
        self._shapes: Dict[Tuple[int, int], int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: PlanKey) -> bool:
        return key in self._entries

    def get(self, key: PlanKey) -> Optional[Allocation]:
        """The cached allocation for *key*, refreshing its recency."""
        allocation = self._entries.get(key)
        if allocation is None:
            self.stats.misses += 1
            if PROFILER.enabled:
                PROFILER.add("plan_cache.misses")
                if self._shapes.get((key.n_elements, key.budget), 0):
                    PROFILER.add("plan_cache.shape_hits")
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        if PROFILER.enabled:
            PROFILER.add("plan_cache.hits")
        return allocation

    def peek(self, key: PlanKey) -> Optional[Allocation]:
        """Like :meth:`get` but without touching recency or stats."""
        return self._entries.get(key)

    def put(self, key: PlanKey, allocation: Allocation) -> None:
        """Insert (or refresh) *key*, evicting the LRU entry if full."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = allocation
            return
        if len(self._entries) >= self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            self.stats.evictions += 1
            self._drop_shape(evicted)
        self._entries[key] = allocation
        shape = (key.n_elements, key.budget)
        self._shapes[shape] = self._shapes.get(shape, 0) + 1

    def _drop_shape(self, key: PlanKey) -> None:
        shape = (key.n_elements, key.budget)
        remaining = self._shapes.get(shape, 0) - 1
        if remaining > 0:
            self._shapes[shape] = remaining
        else:
            self._shapes.pop(shape, None)

    def items(self) -> List[Tuple[PlanKey, Allocation]]:
        """All entries, LRU first (a snapshot; safe to iterate)."""
        return list(self._entries.items())

    def clear(self) -> None:
        """Drop every entry; stats keep accumulating."""
        self._entries.clear()
        self._shapes.clear()

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict summary for reports and metrics exports."""
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "evictions": self.stats.evictions,
            "hit_rate": self.stats.hit_rate,
        }
