"""Admission control: what happens when queries arrive faster than they drain.

The service bounds two things: how many queries may be *in flight*
(running sessions) and how many may *wait* behind them.  When both bounds
are hit, an arriving query is either **shed** (rejected immediately, the
requester is told to come back later) or **deferred** (left in the arrival
backlog and re-offered on the next tick) depending on the configured
overload policy.  Shedding keeps latency predictable for admitted work;
deferring keeps completeness at the price of unbounded queueing delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import InvalidParameterError

#: Valid values of ``AdmissionConfig.overload_policy``.
OVERLOAD_POLICIES = ("shed", "defer")


class AdmissionDecision(str, Enum):
    """Outcome of offering one arriving query to admission control."""

    ADMIT = "admit"
    DEFER = "defer"
    SHED = "shed"


@dataclass(frozen=True)
class AdmissionConfig:
    """Bounds and overload behaviour of the admission controller.

    Attributes:
        max_active_queries: queries allowed to run sessions concurrently.
        max_queue_depth: admitted-but-waiting queries allowed behind them.
        overload_policy: ``"shed"`` rejects an arrival that finds both
            bounds full; ``"defer"`` leaves it in the arrival backlog to
            be offered again next tick.
    """

    max_active_queries: int = 16
    max_queue_depth: int = 64
    overload_policy: str = "defer"

    def __post_init__(self) -> None:
        if self.max_active_queries < 1:
            raise InvalidParameterError(
                f"max_active_queries must be >= 1, got {self.max_active_queries}"
            )
        if self.max_queue_depth < 0:
            raise InvalidParameterError(
                f"max_queue_depth must be >= 0, got {self.max_queue_depth}"
            )
        if self.overload_policy not in OVERLOAD_POLICIES:
            raise InvalidParameterError(
                f"overload_policy must be one of {OVERLOAD_POLICIES}, "
                f"got {self.overload_policy!r}"
            )


class AdmissionController:
    """Stateless gate evaluating one arrival against the current load."""

    def __init__(self, config: AdmissionConfig) -> None:
        self.config = config

    def decide(self, n_active: int, n_waiting: int) -> AdmissionDecision:
        """Admit, defer or shed one arriving query.

        Admission bounds the *joint* occupancy ``n_active + n_waiting``
        against ``max_active_queries + max_queue_depth`` — the scheduler
        may offer a whole arrival burst before promoting anyone into an
        active slot, so the two counts must be interchangeable here.

        Args:
            n_active: queries currently running sessions.
            n_waiting: admitted queries waiting for a session slot.
        """
        config = self.config
        capacity = config.max_active_queries + config.max_queue_depth
        if n_active + n_waiting < capacity:
            return AdmissionDecision.ADMIT
        if config.overload_policy == "shed":
            return AdmissionDecision.SHED
        return AdmissionDecision.DEFER

    def describe_overload(self) -> str:
        """Reason string attached to shed results and trace events."""
        config = self.config
        return (
            f"queue full ({config.max_active_queries} active + "
            f"{config.max_queue_depth} waiting)"
        )
