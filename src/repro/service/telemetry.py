"""Per-tick scheduler telemetry: sampling, journal replay, live follow.

Every scheduler tick produces one :class:`TickSample` — a frozen,
JSON-friendly row of the quantities an operator watches: queue depths,
breaker state, plan-cache hit rate, the shared round's latency and size,
and the cumulative outcome counters.  Samples land in three places at
once:

* the scheduler's in-memory ``tick_history`` ring (capped at
  :data:`TICK_HISTORY_LIMIT`, feeding the live dashboard);
* the metrics registry (``service.queue_depth``,
  ``service.active_queries`` gauges and the ``service.round_latency``
  histogram);
* the write-ahead journal, as a ``"tick"`` delta record — recovery
  ignores unknown record types, so old journals stay readable, and
  ``tdp-repro top`` can replay any journaled run tick by tick
  (:func:`samples_from_journal`) or follow one that is still being
  written (:func:`follow_samples`).

A recovered run re-executes the ticks lost after the last snapshot and
journals them again; :func:`samples_from_records` deduplicates by tick
number keeping the last occurrence, which by the determinism guarantee is
bit-identical to the first.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Union

from repro.errors import InvalidParameterError

#: In-memory ring size of ``MaxScheduler.tick_history``.  Bounded so an
#: unattended ``serve`` run cannot grow without limit; the journal keeps
#: the full series.
TICK_HISTORY_LIMIT = 4096


@dataclasses.dataclass(frozen=True)
class TickSample:
    """One scheduler tick's operational state.

    Attributes:
        tick: 1-based tick number (the value of ``scheduler.ticks`` after
            the tick ran).
        now: simulated clock after the tick, seconds.
        active: queries running in shared rounds.
        waiting: admitted queries waiting for an active slot.
        backlog: queries not yet offered to admission control.
        breaker: circuit-breaker state (``"closed"``/``"open"``/
            ``"half_open"``), or ``"none"`` when no breaker is installed.
        cache_hit_rate: plan-cache hits / lookups so far (0.0 before any
            lookup).
        round_latency: the shared round's latency this tick (seconds);
            0.0 for a breaker-deferred tick.
        questions: questions answered by this tick's shared round (0 on
            deferral or outage).
        questions_total: cumulative questions posted successfully.
        shared_rounds: cumulative shared rounds completed.
        completed: cumulative queries finished COMPLETED.
        degraded: cumulative queries finished DEGRADED.
        shed: cumulative queries SHED by admission control.
        deferred: whether this tick was a breaker deferral instead of a
            shared round.
        queue_wait_mean: mean arrival-to-first-schedule seconds across
            queries finished so far (0.0 before the first finish).
            Defaulted so journals written before the field existed stay
            replayable.
        deadline_met: cumulative queries that finished inside their
            latency budget (deadline-carrying queries only).  Defaulted,
            like every field below, for pre-deadline journals.
        deadline_breached: cumulative deadline-carrying queries that were
            degraded, shed or finished late.
        brownout_level: the brownout controller's level after this tick
            (0 = off / no controller).
        alerts_active: SLO engine alerts firing after this tick (0 when
            the engine is off).
        health: aggregate health after this tick (``"ok"``/
            ``"degraded"``/``"critical"``), or ``""`` when no SLO engine
            is armed — the empty string keeps pre-SLO journals and the
            dashboard header bit-identical.
    """

    tick: int
    now: float
    active: int
    waiting: int
    backlog: int
    breaker: str
    cache_hit_rate: float
    round_latency: float
    questions: int
    questions_total: int
    shared_rounds: int
    completed: int
    degraded: int
    shed: int
    deferred: bool
    queue_wait_mean: float = 0.0
    deadline_met: int = 0
    deadline_breached: int = 0
    brownout_level: int = 0
    alerts_active: int = 0
    health: str = ""

    @property
    def queue_depth(self) -> int:
        """Admitted-but-waiting plus not-yet-arrived-or-offered queries."""
        return self.waiting + self.backlog

    def to_dict(self) -> Dict[str, Any]:
        # All fields are scalars, so a shallow copy equals
        # dataclasses.asdict at a fraction of its recursive cost — this
        # runs on every journaled/SLO-armed tick.
        return dict(self.__dict__)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TickSample":
        """Rebuild a sample from its journal form.

        Fields with defaults may be absent (a journal written by an older
        version); missing *core* fields still raise, so a garbage payload
        cannot masquerade as a sample.
        """
        kwargs: Dict[str, Any] = {}
        for spec in dataclasses.fields(cls):
            if spec.name in payload:
                kwargs[spec.name] = payload[spec.name]
            elif spec.default is dataclasses.MISSING:
                raise InvalidParameterError(
                    f"tick record is missing field '{spec.name}'"
                )
        return cls(**kwargs)


def samples_from_records(
    records: Iterable[Dict[str, Any]],
) -> List[TickSample]:
    """Extract the tick series from parsed journal records.

    Duplicate tick numbers (a recovered run replaying the ticks lost
    after its last snapshot) collapse to the last occurrence; the result
    is sorted by tick.
    """
    by_tick: Dict[int, TickSample] = {}
    for record in records:
        if record.get("record") != "tick":
            continue
        payload = record.get("payload")
        if isinstance(payload, dict):
            sample = TickSample.from_dict(payload)
            by_tick[sample.tick] = sample
    return [by_tick[tick] for tick in sorted(by_tick)]


def alert_transitions_from_records(
    records: Iterable[Dict[str, Any]],
) -> List["AlertTransition"]:
    """Extract the SLO alert history from parsed journal records.

    Duplicate transitions (a recovered run replaying the ticks lost
    after its last snapshot) collapse by ``(tick, rule, action)``,
    keeping first-occurrence order — which is tick order, since ticks
    replay in order.  This is the ground truth ``tdp-repro health``
    reads and the chaos harness compares across kill/recover.
    """
    from repro.obs.slo import AlertTransition

    seen: Dict[Any, AlertTransition] = {}
    for record in records:
        if record.get("record") != "alert":
            continue
        payload = record.get("payload")
        if not isinstance(payload, dict):
            continue
        key = (payload["tick"], payload["rule"], payload["action"])
        if key not in seen:
            seen[key] = AlertTransition(
                rule=str(payload["rule"]),
                action=str(payload["action"]),
                severity=str(payload["severity"]),
                value=float(payload["value"]),
                tick=int(payload["tick"]),
            )
    return list(seen.values())


def samples_from_journal(path: Union[str, Path]) -> List[TickSample]:
    """Replay a journal file's tick series (corrupt tails tolerated)."""
    from repro.service.journal import read_journal

    return samples_from_records(read_journal(path).records)


def follow_samples(
    path: Union[str, Path],
    poll_interval: float = 0.25,
    timeout: Optional[float] = None,
    _clock: Callable[[], float] = time.monotonic,
    _sleep: Callable[[float], None] = time.sleep,
) -> Iterator[TickSample]:
    """Yield :class:`TickSample` s from a journal as they are written.

    Tails *path* incrementally — safe on a file another process is
    appending to, because the journal only flushes whole lines.  The
    iterator finishes when a ``"complete"`` record appears (the run
    drained) or, with *timeout*, after that many seconds pass without
    one.  A journal mid-write may end in a partial line; it is kept
    buffered until its newline arrives, never parsed early.

    Duplicate tick numbers from an in-place recovery are suppressed by
    yielding only ticks greater than the last one seen.

    Raises:
        InvalidParameterError: non-positive *poll_interval*.
    """
    if poll_interval <= 0:
        raise InvalidParameterError(
            f"poll_interval must be > 0, got {poll_interval}"
        )
    path = Path(path)
    deadline = None if timeout is None else _clock() + timeout
    buffered = ""
    position = 0
    last_tick = -1
    while True:
        if path.exists():
            with open(path, "r", encoding="utf-8") as handle:
                handle.seek(position)
                chunk = handle.read()
                position = handle.tell()
            buffered += chunk
            while "\n" in buffered:
                line, buffered = buffered.split("\n", 1)
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # corrupt line; recovery-grade tolerance
                if not isinstance(record, dict):
                    continue
                kind = record.get("record")
                if kind == "complete":
                    return
                if kind != "tick":
                    continue
                payload = record.get("payload")
                if not isinstance(payload, dict):
                    continue
                sample = TickSample.from_dict(payload)
                if sample.tick > last_tick:
                    last_tick = sample.tick
                    yield sample
        if deadline is not None and _clock() >= deadline:
            return
        _sleep(poll_interval)
