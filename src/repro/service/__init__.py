"""repro.service — concurrent multi-query MAX scheduling on a shared crowd.

The paper's solvers optimize one MAX query in isolation; this subsystem
runs *many* queries against one shared (possibly faulty) platform:

* :class:`MaxScheduler` — admits queries, plans them with tDP through a
  shared LRU :class:`PlanCache`, and coalesces all pending rounds each
  tick into shared platform rounds under a :class:`BatchingPolicy` with
  admission control and backpressure;
* :mod:`repro.service.workload` — seeded synthetic workloads with named
  presets (``smoke``, ``steady``, ``burst``, ``repeated``, ``sla``);
* :class:`ServiceReport` — per-query latency, SLO attainment, queue wait
  and cache hit rate, rendered by ``tdp-repro serve``.

Runs are deterministic given the seed, including under fault injection::

    from repro.core.latency import mturk_car_latency
    from repro.service import (
        MaxScheduler, generate_workload, workload_by_name,
    )

    specs = generate_workload(workload_by_name("burst"), seed=0)
    report = MaxScheduler(specs, mturk_car_latency(), seed=0).run()
    print(report.render())
"""

from repro.service.admission import (
    OVERLOAD_POLICIES,
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
)
from repro.service.deadline import (
    DEADLINE_DEGRADED,
    DEADLINE_EXCEEDED,
    DEADLINE_MET,
    DEADLINE_OUTCOMES,
    DEADLINE_SHED,
    BrownoutConfig,
    BrownoutController,
    LatencyBudget,
)
from repro.service.journal import (
    JOURNAL_VERSION,
    JournalContents,
    SchedulerJournal,
    read_journal,
    recover_scheduler,
    restore_scheduler_state,
    scheduler_from_header,
    service_config_from_dict,
    snapshot_scheduler,
)
from repro.service.plan_cache import PlanCache, PlanCacheStats, PlanKey
from repro.service.policies import (
    BatchingPolicy,
    FIFOPolicy,
    FairSharePolicy,
    PriorityPolicy,
    available_policies,
    policy_by_name,
)
from repro.service.query import QueryResult, QuerySpec, QueryState
from repro.service.report import ServiceReport, nearest_rank_percentile
from repro.service.scheduler import ActiveQuery, MaxScheduler, ServiceConfig
from repro.service.telemetry import (
    TICK_HISTORY_LIMIT,
    TickSample,
    alert_transitions_from_records,
    follow_samples,
    samples_from_journal,
    samples_from_records,
)
from repro.service.workload import (
    WorkloadConfig,
    available_workloads,
    generate_workload,
    workload_by_name,
)

__all__ = [
    # queries
    "QuerySpec",
    "QueryResult",
    "QueryState",
    # plan cache
    "PlanKey",
    "PlanCache",
    "PlanCacheStats",
    # policies
    "BatchingPolicy",
    "FIFOPolicy",
    "PriorityPolicy",
    "FairSharePolicy",
    "available_policies",
    "policy_by_name",
    # admission
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "OVERLOAD_POLICIES",
    # scheduler
    "MaxScheduler",
    "ServiceConfig",
    "ActiveQuery",
    # deadlines / brownout
    "LatencyBudget",
    "BrownoutConfig",
    "BrownoutController",
    "DEADLINE_MET",
    "DEADLINE_DEGRADED",
    "DEADLINE_SHED",
    "DEADLINE_EXCEEDED",
    "DEADLINE_OUTCOMES",
    # workload
    "WorkloadConfig",
    "available_workloads",
    "workload_by_name",
    "generate_workload",
    # report
    "ServiceReport",
    "nearest_rank_percentile",
    # telemetry
    "TickSample",
    "TICK_HISTORY_LIMIT",
    "samples_from_records",
    "samples_from_journal",
    "follow_samples",
    "alert_transitions_from_records",
    # journal / recovery
    "SchedulerJournal",
    "JournalContents",
    "JOURNAL_VERSION",
    "read_journal",
    "recover_scheduler",
    "restore_scheduler_state",
    "scheduler_from_header",
    "service_config_from_dict",
    "snapshot_scheduler",
]
