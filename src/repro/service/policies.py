"""Batching policies: the order in which queries share a round.

Each scheduler tick packs whole per-query rounds into one shared platform
batch until the in-flight cap is reached.  A :class:`BatchingPolicy` only
decides the *order* in which runnable queries are offered a slot; the
packing itself (and the cap) lives in the scheduler, so every policy
automatically respects backpressure.

Three deterministic policies ship:

* ``fifo`` — strict admission order; earliest admitted query first.
* ``priority`` — higher :attr:`~repro.service.query.QuerySpec.priority`
  first, admission order as the tie-break.
* ``fair`` — fair share: queries that have participated in the fewest
  shared rounds go first, so one huge query cannot starve the rest.

All orderings are total and stable, which the service's bit-identical
replay guarantee depends on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Dict, List, Sequence

from repro.errors import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.service.scheduler import ActiveQuery


class BatchingPolicy(ABC):
    """Strategy ranking runnable queries for one shared round."""

    #: Short name used by the registry, the CLI and reports.
    name: str = "policy"

    @abstractmethod
    def order(self, queries: Sequence["ActiveQuery"]) -> List["ActiveQuery"]:
        """Return *queries* in packing order (highest claim first)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FIFOPolicy(BatchingPolicy):
    """Earliest-admitted query first."""

    name = "fifo"

    def order(self, queries: Sequence["ActiveQuery"]) -> List["ActiveQuery"]:
        return sorted(queries, key=lambda q: q.seq)


class PriorityPolicy(BatchingPolicy):
    """Highest priority first; admission order breaks ties."""

    name = "priority"

    def order(self, queries: Sequence["ActiveQuery"]) -> List["ActiveQuery"]:
        return sorted(queries, key=lambda q: (-q.spec.priority, q.seq))


class FairSharePolicy(BatchingPolicy):
    """Fewest shared rounds participated in first (round-robin-like).

    A query that was left out of the last round (backpressure) has a lower
    participation count and therefore outranks the queries that did run,
    which is exactly the starvation-freedom property fair share wants.
    """

    name = "fair"

    def order(self, queries: Sequence["ActiveQuery"]) -> List["ActiveQuery"]:
        return sorted(queries, key=lambda q: (q.times_scheduled, q.seq))


_FACTORIES: Dict[str, Callable[[], BatchingPolicy]] = {
    "fifo": FIFOPolicy,
    "priority": PriorityPolicy,
    "fair": FairSharePolicy,
}


def available_policies() -> List[str]:
    """Names of all registered batching policies."""
    return sorted(_FACTORIES)


def policy_by_name(name: str) -> BatchingPolicy:
    """Instantiate the policy registered under *name* (case-insensitive).

    Raises:
        InvalidParameterError: for unknown names, listing the valid ones.
    """
    factory = _FACTORIES.get(name.lower())
    if factory is None:
        raise InvalidParameterError(
            f"unknown batching policy {name!r}; available: "
            f"{available_policies()}"
        )
    return factory()
