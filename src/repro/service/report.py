"""Service-level summary of a multi-query scheduler run.

A :class:`ServiceReport` aggregates the per-query
:class:`~repro.service.query.QueryResult` s of one
:class:`~repro.service.scheduler.MaxScheduler` run into the numbers an
operator watches: completion/shed counts, latency percentiles, queue
wait, SLO attainment, accuracy, throughput and plan-cache efficiency.

Percentiles use the deterministic nearest-rank definition from
:mod:`repro.obs.stats` (the smallest sample at or above the requested
rank) — the same one the metrics histograms use, so a service report and
a scraped ``service.query_latency`` histogram always agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.attribution import ComponentStat, render_attribution
from repro.obs.slo import HealthStatus
from repro.obs.stats import percentile
from repro.service.deadline import DEADLINE_OUTCOMES
from repro.service.query import QueryResult, QueryState


def nearest_rank_percentile(values: List[float], p: float) -> float:
    """The nearest-rank *p*-th percentile of *values* (``0 < p <= 100``).

    Alias of :func:`repro.obs.stats.percentile`, kept for its callers.

    Raises:
        InvalidParameterError: on an empty sample or out-of-range *p*.
    """
    return percentile(values, p)


@dataclass(frozen=True)
class ServiceReport:
    """Outcome of one scheduler run over a workload.

    Attributes:
        results: one entry per query, in ``query_id`` order (shed
            queries included).
        makespan: simulated seconds from start to the last completion.
        ticks: scheduler ticks executed (including outage-only ticks).
        shared_rounds: shared platform rounds actually posted.
        questions_posted: distinct questions over all shared rounds
            (fault re-posts counted once per question).
        cache_hits / cache_misses / cache_evictions: plan-cache traffic.
        attribution: aggregated per-component latency attribution
            (total/p50/p95/share per component), present only when the
            run was traced — with tracing off the report is bit-identical
            to the attribution-less one.
        health: the SLO engine's final aggregate health, present only
            when an engine was armed — with the engine off the report is
            bit-identical to the health-less one.
    """

    results: Tuple[QueryResult, ...]
    makespan: float
    ticks: int
    shared_rounds: int
    questions_posted: int
    cache_hits: int
    cache_misses: int
    cache_evictions: int
    attribution: Optional[Tuple[ComponentStat, ...]] = None
    health: Optional[HealthStatus] = None

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def n_queries(self) -> int:
        return len(self.results)

    @property
    def completed(self) -> Tuple[QueryResult, ...]:
        return tuple(
            r for r in self.results if r.state is QueryState.COMPLETED
        )

    @property
    def degraded(self) -> Tuple[QueryResult, ...]:
        return tuple(r for r in self.results if r.state is QueryState.DEGRADED)

    @property
    def shed(self) -> Tuple[QueryResult, ...]:
        return tuple(r for r in self.results if r.state is QueryState.SHED)

    @property
    def finished(self) -> Tuple[QueryResult, ...]:
        """Queries that ran to a declared winner (completed + degraded)."""
        return tuple(r for r in self.results if r.finished)

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def accuracy(self) -> Optional[float]:
        """Fraction of finished queries whose winner is their true MAX."""
        finished = self.finished
        if not finished:
            return None
        return sum(r.correct for r in finished) / len(finished)

    @property
    def mean_queue_wait(self) -> Optional[float]:
        finished = self.finished
        if not finished:
            return None
        return sum(r.queue_wait for r in finished) / len(finished)

    @property
    def slo_attainment(self) -> Optional[float]:
        """Fraction of SLO-carrying finished queries that met their SLO."""
        scored = [r for r in self.finished if r.slo_met is not None]
        if not scored:
            return None
        return sum(r.slo_met for r in scored) / len(scored)

    @property
    def deadline_attainment(self) -> Optional[Dict[str, int]]:
        """Terminal deadline outcomes, ``{met, degraded, shed, exceeded}``.

        ``None`` when no query carried a latency budget — a deadline-free
        run's report stays identical to one from before deadlines existed.
        """
        scored = [
            r for r in self.results if r.deadline_outcome is not None
        ]
        if not scored:
            return None
        counts = {outcome: 0 for outcome in DEADLINE_OUTCOMES}
        for r in scored:
            counts[r.deadline_outcome] = counts.get(r.deadline_outcome, 0) + 1
        return counts

    @property
    def throughput_per_hour(self) -> float:
        """Finished queries per simulated hour of makespan."""
        if self.makespan <= 0:
            return 0.0
        return len(self.finished) * 3600.0 / self.makespan

    def latency_percentile(self, p: float) -> Optional[float]:
        """Nearest-rank percentile of finished-query latency."""
        finished = self.finished
        if not finished:
            return None
        return nearest_rank_percentile([r.latency for r in finished], p)

    @property
    def p50_latency(self) -> Optional[float]:
        return self.latency_percentile(50)

    @property
    def p95_latency(self) -> Optional[float]:
        return self.latency_percentile(95)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self, per_query: bool = False) -> str:
        """Human-readable report block (CLI ``serve`` output).

        Args:
            per_query: also list one line per query.
        """

        def fmt(value: Optional[float], suffix: str = "") -> str:
            return "-" if value is None else f"{value:.1f}{suffix}"

        def pct(value: Optional[float]) -> str:
            return "-" if value is None else f"{100 * value:.0f}%"

        lines = [
            f"queries:          {self.n_queries} "
            f"({len(self.completed)} completed, {len(self.degraded)} "
            f"degraded, {len(self.shed)} shed)",
            f"makespan:         {self.makespan:.1f} s over "
            f"{self.shared_rounds} shared rounds ({self.ticks} ticks)",
            f"throughput:       {self.throughput_per_hour:.1f} queries/h",
            f"latency p50/p95:  {fmt(self.p50_latency, ' s')} / "
            f"{fmt(self.p95_latency, ' s')}",
            f"mean queue wait:  {fmt(self.mean_queue_wait, ' s')}",
            f"SLO attainment:   {pct(self.slo_attainment)}",
            f"accuracy:         {pct(self.accuracy)}",
            f"questions posted: {self.questions_posted}",
            f"plan cache:       {self.cache_hits} hits / "
            f"{self.cache_misses} misses "
            f"(hit rate {100 * self.cache_hit_rate:.0f}%, "
            f"{self.cache_evictions} evictions)",
        ]
        attainment = self.deadline_attainment
        if attainment is not None:
            # Only deadline-carrying runs print the line, so a
            # deadline-free report renders byte-identically to before.
            breakdown = ", ".join(
                f"{count} {outcome}"
                for outcome, count in attainment.items()
                if count
            )
            lines.insert(
                6, f"deadlines:        {breakdown}"
            )
        if self.health is not None:
            # Only SLO-armed runs print the line, so an engine-off
            # report renders byte-identically to before.
            lines.append(f"health:           {self.health.describe()}")
        if self.attribution is not None:
            lines.append("")
            lines.extend(render_attribution(self.attribution))
        if per_query:
            lines.append("")
            for r in self.results:
                if r.state is QueryState.SHED:
                    lines.append(
                        f"  query {r.spec.query_id}: shed ({r.shed_reason})"
                    )
                    continue
                slo = "" if r.slo_met is None else (
                    ", SLO met" if r.slo_met else ", SLO MISSED"
                )
                deadline = (
                    ""
                    if r.deadline_outcome is None
                    else f", deadline {r.deadline_outcome}"
                )
                verdict = "correct" if r.correct else "WRONG"
                lines.append(
                    f"  query {r.spec.query_id}: {r.state.value}, "
                    f"MAX={r.winner} ({verdict}) in {r.rounds} rounds / "
                    f"{r.questions_posted} questions, latency {r.latency:.1f} s "
                    f"(wait {r.queue_wait:.1f} s){slo}{deadline}"
                )
        return "\n".join(lines)
