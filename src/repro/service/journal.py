"""Write-ahead journal and deterministic crash recovery for the scheduler.

A crowdsourced workload is hours of paid real time; a requester process
that dies mid-workload must not forfeit it.  :class:`SchedulerJournal`
gives :class:`~repro.service.scheduler.MaxScheduler` durability in the
classic database shape:

* an **append-only JSONL log** — one record per state change (admit,
  plan, round posted, answers collected, finalize, shed, deferred) so the
  run is auditable line by line;
* **periodic full snapshots** — every ``snapshot_interval`` ticks the
  complete scheduler state is serialized into the log, building on the
  :mod:`repro.persistence` serializers: allocations, evidence graphs and
  per-session RNG bit-generator state, plus the scheduler's own queues,
  plan-cache contents, platform counters, fault statistics and circuit
  breaker.

Because the scheduler is deterministic given its seed, recovery is exact:
:func:`recover_scheduler` rebuilds the scheduler from the journal header
(same constructor arguments, hence the same ground truth and RNG streams),
restores the last snapshot, and re-runs.  Ticks that ran after the last
snapshot but before the crash replay *identically* — same RNG states, same
iteration orders — so the final :class:`~repro.service.report.ServiceReport`
is bit-identical to the uninterrupted run's, no matter where the kill
landed.  :mod:`repro.chaos` asserts exactly that property.

Corruption policy (the crash-mid-write shapes):

* missing file, empty file, unparseable header — raise
  :class:`~repro.errors.JournalCorruptError`;
* truncated last record or garbage tail — drop the tail, recover from the
  last valid snapshot (every journal starts with one, so this always
  works once the header is intact).
"""

from __future__ import annotations

import dataclasses
import json
import logging
import os
import weakref
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.crowd.breaker import CircuitBreakerConfig
from repro.crowd.faults import FaultProfile, FaultStats, FaultyPlatform, RetryPolicy
from repro.crowd.multibackend import (
    HedgeConfig,
    backend_spec_from_dict,
    backend_spec_to_dict,
)
from repro.crowd.platform import PlatformStats, SimulatedPlatform
from repro.errors import InvalidParameterError, JournalCorruptError
from repro.obs.events import CheckpointWritten, RecoveryCompleted
from repro.obs.metrics import get_registry
from repro.obs.slo import slo_config_from_dict
from repro.obs.tracer import current_tracer
from repro.persistence import (
    allocation_from_dict,
    allocation_to_dict,
    error_model_from_dict,
    error_model_to_dict,
    latency_from_dict,
    latency_to_dict,
    session_from_dict,
    session_to_dict,
    worker_config_from_dict,
    worker_config_to_dict,
)
from repro.service.deadline import BrownoutConfig
from repro.service.plan_cache import PlanCacheStats, PlanKey
from repro.service.query import QueryResult, QuerySpec, QueryState
from repro.service.scheduler import ActiveQuery, MaxScheduler, ServiceConfig
from repro.types import Answer

logger = logging.getLogger(__name__)

#: Bumped on incompatible journal layout changes.
JOURNAL_VERSION = 1


def _json_default(value: Any) -> Any:
    """Coerce numpy scalars leaking into payloads (e.g. latencies)."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    raise TypeError(f"not JSON serializable: {type(value).__name__}")


class SchedulerJournal:
    """Append-only JSONL write-ahead journal for one scheduler run.

    Args:
        path: journal file; :meth:`create` truncates, :meth:`resume`
            appends (recovery continues the same file).
        snapshot_interval: full snapshot every N ticks (>= 1; default 5).
            Larger intervals write less but replay more ticks on
            recovery; recovery is exact either way.  Use 1 for a
            snapshot at every tick boundary; the default keeps steady
            journaling overhead under a tenth of the run.
        fsync: fsync after every record — durable against power loss, at
            a heavy simulation-throughput cost (default: flush only).
    """

    def __init__(
        self,
        path: Union[str, Path],
        snapshot_interval: int = 5,
        fsync: bool = False,
        _append: bool = False,
    ) -> None:
        if snapshot_interval < 1:
            raise InvalidParameterError(
                f"snapshot_interval must be >= 1, got {snapshot_interval}"
            )
        self.path = Path(path)
        self.snapshot_interval = snapshot_interval
        self.fsync = fsync
        self._handle = open(self.path, "a" if _append else "w", encoding="utf-8")
        self._seq = 0
        self._header_written = _append
        self._closed = False

    @classmethod
    def create(
        cls,
        path: Union[str, Path],
        *,
        snapshot_interval: int = 5,
        fsync: bool = False,
    ) -> "SchedulerJournal":
        """Start a fresh journal (truncating any existing file)."""
        return cls(path, snapshot_interval=snapshot_interval, fsync=fsync)

    @classmethod
    def resume(
        cls,
        path: Union[str, Path],
        *,
        snapshot_interval: int = 5,
        fsync: bool = False,
    ) -> "SchedulerJournal":
        """Continue appending to an existing journal (after recovery)."""
        if not Path(path).exists():
            raise JournalCorruptError(f"no such journal to resume: {path}")
        return cls(
            path, snapshot_interval=snapshot_interval, fsync=fsync, _append=True
        )

    # ------------------------------------------------------------------
    # Scheduler hooks
    # ------------------------------------------------------------------
    def begin(self, scheduler: MaxScheduler) -> None:
        """Write the header + initial snapshot (no-op on a resumed journal)."""
        if self._header_written:
            return
        self._header_written = True
        self._write("header", self._header_payload(scheduler))
        self.write_snapshot(scheduler)

    def record(self, record_type: str, payload: Dict[str, Any]) -> None:
        """Append one write-ahead record."""
        self._write(record_type, payload)

    def maybe_snapshot(self, scheduler: MaxScheduler) -> None:
        """Snapshot if the tick counter crossed the snapshot interval."""
        if scheduler.ticks % self.snapshot_interval == 0:
            self.write_snapshot(scheduler)

    def write_snapshot(self, scheduler: MaxScheduler) -> None:
        """Serialize the scheduler's full state into the journal."""
        payload = snapshot_scheduler(scheduler)
        self._write("snapshot", payload, flush=True)
        get_registry().counter("service.checkpoints").inc()
        tracer = current_tracer()
        if tracer.enabled:
            tracer.emit(
                CheckpointWritten(
                    tick=payload["ticks"],
                    n_active=len(payload["active"]),
                    n_waiting=len(payload["waiting"]),
                    n_results=len(payload["results"]),
                ),
                sim_time=payload["now"],
            )

    def complete(self, scheduler: MaxScheduler) -> None:
        """Mark the run drained: final snapshot + completion record."""
        self.write_snapshot(scheduler)
        self._write(
            "complete",
            {"ticks": scheduler.ticks, "makespan": scheduler.now},
            flush=True,
        )

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _header_payload(self, scheduler: MaxScheduler) -> Dict[str, Any]:
        return {
            "version": JOURNAL_VERSION,
            "kind": "scheduler_journal",
            "seed": scheduler.seed,
            "snapshot_interval": self.snapshot_interval,
            "specs": [_spec_to_dict(s) for s in scheduler._specs],
            "latency": latency_to_dict(scheduler.latency),
            "config": dataclasses.asdict(scheduler.config),
            "fault_profile": (
                dataclasses.asdict(scheduler._fault_profile)
                if scheduler._fault_profile is not None
                else None
            ),
            "retry_policy": (
                dataclasses.asdict(scheduler._retry_policy)
                if scheduler._retry_policy is not None
                else None
            ),
            "error_model": error_model_to_dict(scheduler._error_model),
            "worker_config": worker_config_to_dict(scheduler._worker_config),
            "breaker_config": (
                dataclasses.asdict(scheduler._breaker_config)
                if scheduler._breaker_config is not None
                else None
            ),
            "backends": (
                [backend_spec_to_dict(s) for s in scheduler._backend_specs]
                if scheduler._backend_specs is not None
                else None
            ),
        }

    def _write(
        self, record_type: str, payload: Dict[str, Any], flush: bool = False
    ) -> None:
        # Delta records are buffered: recovery resumes from the newest
        # intact *snapshot* and re-derives lost ticks deterministically,
        # so the snapshot is the durability boundary.  Flushing (and
        # optionally fsyncing) only there keeps the per-record overhead
        # off the hot path without weakening the recovery guarantee.
        if self._closed:
            raise InvalidParameterError(
                f"journal {self.path} is closed; no further records accepted"
            )
        line = json.dumps(
            {"record": record_type, "seq": self._seq, "payload": payload},
            separators=(",", ":"),
            default=_json_default,
        )
        self._handle.write(line + "\n")
        if flush:
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
        self._seq += 1

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if not self._closed:
            self._closed = True
            self._handle.close()

    def __enter__(self) -> "SchedulerJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ----------------------------------------------------------------------
# Snapshot / restore of the full scheduler state
# ----------------------------------------------------------------------

#: Finished results, backlog specs and cached allocations are immutable
#: once created, yet a full snapshot re-serializes all of them every
#: ``snapshot_interval`` ticks.  Memoizing their payloads keeps the
#: dict-building cost of a snapshot proportional to the state that
#: actually changed since the last one.  Weak keys: the memo never
#: extends an object's lifetime.  Entries must be treated as frozen —
#: the same dict is embedded in every later snapshot.
_frozen_payloads: "weakref.WeakKeyDictionary[Any, Dict[str, Any]]" = (
    weakref.WeakKeyDictionary()
)


def _memoized_payload(
    obj: Any, build: Callable[[Any], Dict[str, Any]]
) -> Dict[str, Any]:
    try:
        return _frozen_payloads[obj]
    except (KeyError, TypeError):  # TypeError: unhashable/unweakrefable
        payload = build(obj)
        try:
            _frozen_payloads[obj] = payload
        except TypeError:
            pass
        return payload


def snapshot_scheduler(scheduler: MaxScheduler) -> Dict[str, Any]:
    """Serialize every piece of mutable scheduler state.

    The immutable construction arguments (specs, latency, config, seed)
    live in the journal header; this captures what evolves: the clock and
    counters, the backlog/waiting/active/results queues, every session
    (mid-round included), the RNG bit-generator states of the platform,
    RWL and fault streams, platform/fault statistics, plan-cache contents
    and the circuit breaker.
    """
    if scheduler._router is not None:
        # Federated mode: the platform/RWL/fault/breaker state lives
        # inside each Backend; the legacy top-level slots stay None so
        # old readers fail loudly rather than restore half a fleet.
        crowd_state: Dict[str, Any] = {
            "rng": None,
            "platform": None,
            "fault": None,
            "breaker": None,
            "backends": [
                backend.state_dict()
                for backend in scheduler._router.backends
            ],
        }
    else:
        platform = scheduler.platform
        faulty = platform if isinstance(platform, FaultyPlatform) else None
        inner: SimulatedPlatform = (
            faulty.inner if faulty is not None else platform
        )
        crowd_state = {
            "rng": {
                "platform": inner._rng.bit_generator.state,
                "rwl": scheduler._rwl._rng.bit_generator.state,
                "fault": (
                    faulty._fault_rng.bit_generator.state
                    if faulty is not None
                    else None
                ),
            },
            "platform": {
                "next_worker_id": inner._next_worker_id,
                "stats": dataclasses.asdict(inner.stats),
            },
            "fault": (
                {
                    "stats": faulty.fault_stats.as_dict(),
                    "clock": float(faulty.clock),
                }
                if faulty is not None
                else None
            ),
            "breaker": (
                scheduler.breaker.state_dict()
                if scheduler.breaker is not None
                else None
            ),
            "backends": None,
        }
    return {
        "now": float(scheduler._now),
        "ticks": scheduler._ticks,
        "shared_rounds": scheduler._shared_rounds,
        "questions_posted": scheduler._questions_posted,
        "next_seq": scheduler._next_seq,
        "backlog": [
            _memoized_payload(s, _spec_to_dict) for s in scheduler._backlog
        ],
        "waiting": [_waiting_query_payload(q) for q in scheduler._waiting],
        "active": [_active_query_to_dict(q) for q in scheduler._active],
        "results": [
            _memoized_payload(r, _result_to_dict) for r in scheduler._results
        ],
        "plan_cache": {
            "entries": [
                [
                    _memoized_payload(key, dataclasses.asdict),
                    _memoized_payload(allocation, allocation_to_dict),
                ]
                for key, allocation in scheduler.plan_cache.items()
            ],
            "stats": dataclasses.asdict(scheduler.plan_cache.stats),
        },
        "router": (
            scheduler._router.state_dict()
            if scheduler._router is not None
            and scheduler._router.hedge is not None
            else None
        ),
        "brownout": (
            scheduler._brownout.state_dict()
            if scheduler._brownout is not None
            else None
        ),
        "slo": (
            scheduler._slo.state_dict()
            if scheduler._slo is not None
            else None
        ),
        "flight": (
            scheduler._flight.state_dict()
            if scheduler._flight is not None
            else None
        ),
        **crowd_state,
    }


def restore_scheduler_state(
    scheduler: MaxScheduler, snapshot: Dict[str, Any]
) -> None:
    """Overwrite *scheduler*'s mutable state with a snapshot's.

    The scheduler must have been constructed from the matching journal
    header (same seed/specs/config), so its immutable pieces — ground
    truth, element offsets, policy, allocator — are already identical.
    """
    scheduler._now = float(snapshot["now"])
    scheduler._ticks = int(snapshot["ticks"])
    scheduler._shared_rounds = int(snapshot["shared_rounds"])
    scheduler._questions_posted = int(snapshot["questions_posted"])
    scheduler._next_seq = int(snapshot["next_seq"])
    scheduler._backlog = [_spec_from_dict(d) for d in snapshot["backlog"]]
    scheduler._waiting = [_active_query_from_dict(d) for d in snapshot["waiting"]]
    scheduler._active = [_active_query_from_dict(d) for d in snapshot["active"]]
    scheduler._results = [_result_from_dict(d) for d in snapshot["results"]]

    if scheduler._router is not None:
        backends_payload = snapshot.get("backends")
        fleet = scheduler._router.backends
        if not isinstance(backends_payload, list) or len(
            backends_payload
        ) != len(fleet):
            raise JournalCorruptError(
                "snapshot backend states do not match the configured fleet"
            )
        for backend, backend_payload in zip(fleet, backends_payload):
            backend.load_state_dict(backend_payload)
    else:
        platform = scheduler.platform
        faulty = platform if isinstance(platform, FaultyPlatform) else None
        inner: SimulatedPlatform = (
            faulty.inner if faulty is not None else platform
        )
        rng_states = snapshot["rng"]
        inner._rng = _generator_from_state(rng_states["platform"])
        scheduler._rwl._rng = _generator_from_state(rng_states["rwl"])
        if faulty is not None:
            if rng_states["fault"] is None:
                raise JournalCorruptError(
                    "snapshot lacks the fault RNG state of a faulty platform"
                )
            faulty._fault_rng = _generator_from_state(rng_states["fault"])
            fault = snapshot["fault"]
            faulty.fault_stats = FaultStats(**fault["stats"])
            faulty.clock = float(fault["clock"])
        inner._next_worker_id = int(snapshot["platform"]["next_worker_id"])
        inner.stats = PlatformStats(**snapshot["platform"]["stats"])

    cache = snapshot["plan_cache"]
    scheduler.plan_cache.clear()
    for key_payload, allocation_payload in cache["entries"]:
        scheduler.plan_cache.put(
            PlanKey(**key_payload), allocation_from_dict(allocation_payload)
        )
    # After the puts, so re-inserting does not perturb the counters.
    scheduler.plan_cache.stats = PlanCacheStats(**cache["stats"])

    breaker_state = snapshot.get("breaker")
    if scheduler.breaker is not None and breaker_state is not None:
        scheduler.breaker.load_state_dict(breaker_state)

    router_state = snapshot.get("router")
    if scheduler._router is not None and router_state is not None:
        scheduler._router.load_state_dict(router_state)
    brownout_state = snapshot.get("brownout")
    if scheduler._brownout is not None and brownout_state is not None:
        scheduler._brownout.load_state_dict(brownout_state)
        # Effects (repetition, hedging suspension) are a pure function of
        # the restored level; re-derive them so the replay matches.
        scheduler._apply_brownout_effects()
    # .get(): pre-SLO journals lack the slots and replay unchanged.
    slo_state = snapshot.get("slo")
    if scheduler._slo is not None and slo_state is not None:
        scheduler._slo.load_state_dict(slo_state)
    flight_state = snapshot.get("flight")
    if scheduler._flight is not None and flight_state is not None:
        scheduler._flight.load_state_dict(flight_state)


def _spec_to_dict(spec: QuerySpec) -> Dict[str, Any]:
    return {
        "query_id": spec.query_id,
        "n_elements": spec.n_elements,
        "budget": spec.budget,
        "priority": spec.priority,
        "latency_slo": spec.latency_slo,
        "arrival_time": float(spec.arrival_time),
        "deadline": spec.deadline,
    }


def _spec_from_dict(payload: Dict[str, Any]) -> QuerySpec:
    deadline = payload.get("deadline")  # absent in pre-deadline journals
    return QuerySpec(
        query_id=int(payload["query_id"]),
        n_elements=int(payload["n_elements"]),
        budget=int(payload["budget"]),
        priority=int(payload["priority"]),
        latency_slo=(
            float(payload["latency_slo"])
            if payload["latency_slo"] is not None
            else None
        ),
        arrival_time=float(payload["arrival_time"]),
        deadline=float(deadline) if deadline is not None else None,
    )


def _waiting_query_payload(query: ActiveQuery) -> Dict[str, Any]:
    """Serialize a *waiting* query, reusing the payload across snapshots.

    A waiting query is frozen from admission to promotion: its session
    (allocation, empty evidence, per-query RNG) is created in ``_admit``
    and first touched only after the query's state flips to ``RUNNING``
    and it joins a shared round.  Re-serializing it every snapshot is
    therefore pure waste — under deep admission queues the waiting list
    dominates snapshot cost.  The cache rides on the query object itself
    so it dies with it, and the ``QUEUED`` check makes staleness
    impossible: any promoted query is rebuilt fresh.
    """
    if query.state is not QueryState.QUEUED:
        return _active_query_to_dict(query)
    cached = query.__dict__.get("_waiting_payload")
    if cached is None:
        cached = _active_query_to_dict(query)
        query.__dict__["_waiting_payload"] = cached
    return cached


def _active_query_to_dict(query: ActiveQuery) -> Dict[str, Any]:
    return {
        "spec": _spec_to_dict(query.spec),
        "seq": query.seq,
        "offset": query.offset,
        "session": session_to_dict(query.session, allow_pending=True),
        "plan_cache_hit": query.plan_cache_hit,
        "state": query.state.value,
        "admitted_time": float(query.admitted_time),
        "first_scheduled_time": (
            float(query.first_scheduled_time)
            if query.first_scheduled_time is not None
            else None
        ),
        # Insertion order is iteration order, which the round packer
        # depends on — keep both dicts as ordered pair lists.
        "outstanding": [
            [list(global_q), list(local_q)]
            for global_q, local_q in query.outstanding.items()
        ],
        "collected": [
            [answer.winner, answer.loser]
            for answer in query.collected.values()
        ],
        "times_scheduled": query.times_scheduled,
        "round_attempts": query.round_attempts,
        "questions_posted": query.questions_posted,
        "deadline_at": (
            float(query.deadline_at) if query.deadline_at is not None else None
        ),
    }


def _active_query_from_dict(payload: Dict[str, Any]) -> ActiveQuery:
    query = ActiveQuery(
        spec=_spec_from_dict(payload["spec"]),
        seq=int(payload["seq"]),
        offset=int(payload["offset"]),
        session=session_from_dict(payload["session"]),
        plan_cache_hit=bool(payload["plan_cache_hit"]),
        state=QueryState(payload["state"]),
        admitted_time=float(payload["admitted_time"]),
        first_scheduled_time=(
            float(payload["first_scheduled_time"])
            if payload["first_scheduled_time"] is not None
            else None
        ),
        times_scheduled=int(payload["times_scheduled"]),
        round_attempts=int(payload["round_attempts"]),
        questions_posted=int(payload["questions_posted"]),
        deadline_at=(
            float(payload["deadline_at"])
            if payload.get("deadline_at") is not None
            else None
        ),
    )
    query.outstanding = {
        (int(g[0]), int(g[1])): (int(local[0]), int(local[1]))
        for g, local in payload["outstanding"]
    }
    for winner, loser in payload["collected"]:
        answer = Answer(winner=int(winner), loser=int(loser))
        query.collected[answer.question] = answer
    return query


def _result_to_dict(result: QueryResult) -> Dict[str, Any]:
    return {
        "spec": _spec_to_dict(result.spec),
        "state": result.state.value,
        "winner": result.winner,
        "correct": result.correct,
        "singleton": result.singleton,
        "latency": float(result.latency),
        "queue_wait": float(result.queue_wait),
        "rounds": result.rounds,
        "questions_posted": result.questions_posted,
        "plan_cache_hit": result.plan_cache_hit,
        "slo_met": result.slo_met,
        "shed_reason": result.shed_reason,
        "deadline": result.deadline,
        "deadline_outcome": result.deadline_outcome,
    }


def _result_from_dict(payload: Dict[str, Any]) -> QueryResult:
    return QueryResult(
        spec=_spec_from_dict(payload["spec"]),
        state=QueryState(payload["state"]),
        winner=(
            int(payload["winner"]) if payload["winner"] is not None else None
        ),
        correct=payload["correct"],
        singleton=bool(payload["singleton"]),
        latency=float(payload["latency"]),
        queue_wait=float(payload["queue_wait"]),
        rounds=int(payload["rounds"]),
        questions_posted=int(payload["questions_posted"]),
        plan_cache_hit=bool(payload["plan_cache_hit"]),
        slo_met=payload["slo_met"],
        shed_reason=payload["shed_reason"],
        deadline=(
            float(payload["deadline"])
            if payload.get("deadline") is not None
            else None
        ),
        deadline_outcome=payload.get("deadline_outcome"),
    )


def _generator_from_state(state: Dict[str, Any]) -> np.random.Generator:
    if not isinstance(state, dict) or "bit_generator" not in state:
        raise JournalCorruptError(
            "snapshot RNG state is not a bit-generator state dict"
        )
    bit_generator_cls = getattr(np.random, str(state["bit_generator"]), None)
    if bit_generator_cls is None:
        raise JournalCorruptError(
            f"unknown bit generator {state['bit_generator']!r} in snapshot"
        )
    bit_generator = bit_generator_cls()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


# ----------------------------------------------------------------------
# Reading journals back
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class JournalContents:
    """Parsed view of a journal file.

    Attributes:
        header: the header record's payload.
        records: every parsed record (header included, corrupt tail
            excluded), in file order.
        last_snapshot: payload of the newest intact snapshot.
        tail_corrupt: whether a truncated/garbage tail was discarded.
    """

    header: Dict[str, Any]
    records: Tuple[Dict[str, Any], ...]
    last_snapshot: Dict[str, Any]
    tail_corrupt: bool


def read_journal(path: Union[str, Path]) -> JournalContents:
    """Parse a journal, tolerating a corrupt tail.

    Raises:
        JournalCorruptError: missing/empty file, unparseable header, or
            no intact snapshot to recover from.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise JournalCorruptError(f"no such journal: {path}") from None
    raw_lines = text.split("\n")
    # A journal's every line ends with "\n"; a non-empty final fragment
    # is a record that was being written when the process died.
    dangling_tail = raw_lines[-1] != ""
    lines = [line for line in raw_lines[:-1] if line] + (
        [raw_lines[-1]] if dangling_tail else []
    )
    if not lines:
        raise JournalCorruptError(f"journal {path} is empty")

    records: List[Dict[str, Any]] = []
    tail_corrupt = False
    for index, line in enumerate(lines):
        truncated = dangling_tail and index == len(lines) - 1
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            tail_corrupt = True
            break
        if not isinstance(record, dict) or "record" not in record:
            tail_corrupt = True
            break
        if truncated:
            # Parsed, but the trailing newline never made it to disk —
            # treat the record as incomplete rather than trusting it.
            tail_corrupt = True
            break
        records.append(record)
    if tail_corrupt:
        dropped = len(lines) - len(records)
        logger.warning(
            "journal %s has a corrupt tail: dropping %d trailing line(s)",
            path,
            dropped,
        )

    if not records or records[0].get("record") != "header":
        raise JournalCorruptError(
            f"journal {path} has no parseable header record"
        )
    header = records[0].get("payload")
    if not isinstance(header, dict) or header.get("kind") != "scheduler_journal":
        raise JournalCorruptError(
            f"journal {path} header is not a scheduler_journal payload"
        )
    version = header.get("version")
    if version != JOURNAL_VERSION:
        raise JournalCorruptError(
            f"journal {path} has version {version!r}; this build reads "
            f"version {JOURNAL_VERSION}"
        )
    last_snapshot: Optional[Dict[str, Any]] = None
    for record in records:
        if record.get("record") == "snapshot":
            payload = record.get("payload")
            if isinstance(payload, dict):
                last_snapshot = payload
    if last_snapshot is None:
        raise JournalCorruptError(
            f"journal {path} contains no intact snapshot to recover from"
        )
    return JournalContents(
        header=header,
        records=tuple(records),
        last_snapshot=last_snapshot,
        tail_corrupt=tail_corrupt,
    )


def service_config_from_dict(payload: Dict[str, Any]) -> ServiceConfig:
    """Rebuild a :class:`ServiceConfig` from its journal-header form.

    ``dataclasses.asdict`` flattens the nested ``hedge``/``brownout``
    configs into plain dicts; headers written before those fields existed
    simply lack the keys, which the dataclass defaults cover.
    """
    data = dict(payload)
    hedge = data.get("hedge")
    if isinstance(hedge, dict):
        data["hedge"] = HedgeConfig(**hedge)
    brownout = data.get("brownout")
    if isinstance(brownout, dict):
        data["brownout"] = BrownoutConfig(**brownout)
    slo = data.get("slo")
    if isinstance(slo, dict):
        data["slo"] = slo_config_from_dict(slo)
    return ServiceConfig(**data)


def scheduler_from_header(header: Dict[str, Any]) -> MaxScheduler:
    """Reconstruct a pristine scheduler from a journal header.

    The constructor re-derives everything seeded — ground truth, element
    offsets, RNG streams — identically to the original run.
    """
    try:
        specs = [_spec_from_dict(d) for d in header["specs"]]
        latency = latency_from_dict(header["latency"])
        config = service_config_from_dict(header["config"])
        fault_payload = header["fault_profile"]
        fault_profile = (
            FaultProfile(**fault_payload) if fault_payload is not None else None
        )
        retry_payload = header["retry_policy"]
        retry_policy = (
            RetryPolicy(**retry_payload) if retry_payload is not None else None
        )
        error_model = error_model_from_dict(header["error_model"])
        worker_config = worker_config_from_dict(header["worker_config"])
        breaker_payload = header["breaker_config"]
        breaker_config = (
            CircuitBreakerConfig(**breaker_payload)
            if breaker_payload is not None
            else None
        )
        backends_payload = header.get("backends")
        backends = (
            [backend_spec_from_dict(d) for d in backends_payload]
            if backends_payload is not None
            else None
        )
        seed = header["seed"]
    except (KeyError, TypeError) as error:
        raise JournalCorruptError(
            f"journal header is missing or malformed: {error}"
        ) from None
    return MaxScheduler(
        specs,
        latency,
        seed=seed,
        config=config,
        fault_profile=fault_profile,
        retry_policy=retry_policy,
        error_model=error_model,
        worker_config=worker_config,
        breaker_config=breaker_config,
        backends=backends,
    )


def recover_scheduler(
    journal_path: Union[str, Path],
    *,
    resume_journal: bool = True,
    fsync: bool = False,
) -> MaxScheduler:
    """Rebuild a crashed scheduler from its write-ahead journal.

    Restores the newest intact snapshot and relies on determinism for the
    rest: ticks lost after that snapshot re-execute identically when the
    caller drives the returned scheduler (``scheduler.run()`` completes
    the workload with a report bit-identical to an uninterrupted run).

    Args:
        journal_path: the journal the crashed run was writing.
        resume_journal: keep journaling into the same file (default), so
            the recovered run is itself recoverable.
        fsync: fsync policy for the resumed journal.

    Raises:
        JournalCorruptError: when the journal is missing, empty, or has
            no intact header/snapshot.
    """
    contents = read_journal(journal_path)
    scheduler = scheduler_from_header(contents.header)
    restore_scheduler_state(scheduler, contents.last_snapshot)
    get_registry().counter("service.recoveries").inc()
    tracer = current_tracer()
    if tracer.enabled:
        tracer.emit(
            RecoveryCompleted(
                snapshot_tick=int(contents.last_snapshot["ticks"]),
                records_read=len(contents.records),
                tail_corrupt=contents.tail_corrupt,
            ),
            sim_time=scheduler.now,
        )
    logger.info(
        "recovered scheduler from %s at tick %d (%d records%s)",
        journal_path,
        scheduler.ticks,
        len(contents.records),
        ", corrupt tail dropped" if contents.tail_corrupt else "",
    )
    if resume_journal:
        snapshot_interval = int(contents.header.get("snapshot_interval", 1))
        journal = SchedulerJournal.resume(
            journal_path, snapshot_interval=snapshot_interval, fsync=fsync
        )
        scheduler.attach_journal(journal)
    return scheduler
