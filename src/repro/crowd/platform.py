"""A discrete-event simulation of a crowdsourcing platform.

This is the substitute for Amazon Mechanical Turk: a batch of pairwise
questions is "posted", simulated workers discover it, pick up questions one
at a time, and submit (possibly erroneous) answers.  The batch's latency is
the time from posting until the last answer arrives — exactly the quantity
the paper measured on MTurk to estimate ``L(q)`` (Section 6.1).

The simulation is a simple event loop over worker availability: the next
free worker takes the next unanswered question.  Workers arrive staggered
(discovery delay + arrival spread), may have a limited attention span, and
are replaced by fresh arrivals when the queue would otherwise starve.
"""

from __future__ import annotations

import heapq
import logging
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.crowd.error_models import ErrorModel, PerfectWorkers
from repro.crowd.ground_truth import GroundTruth
from repro.crowd.workers import WorkerPoolConfig
from repro.errors import PlatformError
from repro.obs.events import WorkerServiced
from repro.obs.metrics import get_registry
from repro.obs.tracer import Tracer, current_tracer
from repro.types import Answer, Question

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class WorkerAnswer:
    """One submitted answer, with submission metadata.

    Attributes:
        question: the canonical pair that was asked.
        answer: the worker's (possibly wrong) judgement.
        submit_time: seconds after the batch was posted.
        worker_id: identifier of the submitting simulated worker.
    """

    question: Question
    answer: Answer
    submit_time: float
    worker_id: int


@dataclass(frozen=True)
class BatchResult:
    """Outcome of posting one batch of questions.

    Attributes:
        worker_answers: one entry per posted question (repeats included).
        completion_time: seconds until the last answer arrived — the
            measured round latency.
        n_workers: number of distinct workers who submitted answers.
    """

    worker_answers: Tuple[WorkerAnswer, ...]
    completion_time: float
    n_workers: int

    @property
    def n_answers(self) -> int:
        return len(self.worker_answers)


@dataclass
class PlatformStats:
    """Cumulative usage statistics of a platform instance."""

    batches_posted: int = 0
    questions_posted: int = 0
    total_busy_time: float = field(default=0.0)


class Platform(ABC):
    """The posting interface every platform implementation provides.

    :class:`SimulatedPlatform` is the bare discrete-event implementation
    (and :class:`repro.crowd.diurnal.DiurnalPlatform` a subclass of it);
    :class:`repro.crowd.faults.FaultyPlatform` is a decorator wrapping any
    other platform.  Consumers — the Reliable Worker Layer above all —
    depend only on this interface, so decorators and new implementations
    slot in unchanged.
    """

    stats: PlatformStats

    @abstractmethod
    def post_batch(self, questions: Sequence[Question]) -> BatchResult:
        """Post *questions* as one batch and block until it resolves.

        Raises:
            PlatformError: on invalid questions.
            PlatformOutageError: when a fault-injecting implementation
                loses the whole batch.
        """

    def measure_latency(self, batch_size: int, pairs: Sequence[Question]) -> float:
        """Convenience: post a batch and return only its completion time."""
        if len(pairs) != batch_size:
            raise PlatformError(
                f"expected {batch_size} questions, got {len(pairs)}"
            )
        return self.post_batch(pairs).completion_time


class SimulatedPlatform(Platform):
    """The crowdsourcing platform substrate.

    Args:
        truth: the hidden true order workers judge against.
        error_model: per-answer error behaviour (default: perfect workers,
            matching the paper's error-free main setting).
        config: worker-pool dynamics.
        rng: randomness source.
    """

    def __init__(
        self,
        truth: GroundTruth,
        rng: np.random.Generator,
        error_model: Optional[ErrorModel] = None,
        config: Optional[WorkerPoolConfig] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.truth = truth
        self.error_model = error_model if error_model is not None else PerfectWorkers()
        self.config = config if config is not None else WorkerPoolConfig()
        self._rng = rng
        self.stats = PlatformStats()
        self._next_worker_id = 0
        self._tracer = tracer

    def post_batch(self, questions: Sequence[Question]) -> BatchResult:
        """Post *questions* as one batch and simulate until all are answered.

        Duplicate questions are allowed (the Reliable Worker Layer posts
        repetitions for voting); each posted copy is answered independently.
        """
        for a, b in questions:
            if a == b:
                raise PlatformError(f"cannot post a self-comparison ({a}, {b})")
            # Membership checks happen inside the oracle on answer time.
        self.stats.batches_posted += 1
        self.stats.questions_posted += len(questions)
        if not questions:
            return BatchResult(worker_answers=(), completion_time=0.0, n_workers=0)

        config = self.config
        n_workers = config.attracted_workers(len(questions))
        arrivals = config.sample_arrival_times(n_workers, self._rng)
        # Min-heap of (time the worker becomes free, worker id, answered so
        # far).  Initially each worker frees up at their arrival time.
        free_at: List[Tuple[float, int, int]] = []
        worker_speed = {}
        for arrival in arrivals:
            worker_id = self._new_worker_id()
            worker_speed[worker_id] = config.sample_worker_speed(self._rng)
            heapq.heappush(free_at, (arrival, worker_id, 0))

        answers: List[WorkerAnswer] = []
        completion = 0.0
        # worker id -> [answers submitted, busy seconds] in this batch.
        participants: Dict[int, List[float]] = {}
        for question in questions:
            time_free, worker_id, answered = heapq.heappop(free_at)
            service = config.sample_service_time(self._rng) * worker_speed[
                worker_id
            ]
            submit = time_free + service
            self.stats.total_busy_time += service
            answer = self.error_model.worker_answer(
                self.truth, question[0], question[1], self._rng
            )
            answers.append(
                WorkerAnswer(
                    question=question,
                    answer=answer,
                    submit_time=submit,
                    worker_id=worker_id,
                )
            )
            usage = participants.setdefault(worker_id, [0, 0.0])
            usage[0] += 1
            usage[1] += service
            completion = max(completion, submit)
            answered += 1
            if config.attention_span is not None and answered >= config.attention_span:
                # The worker moves on; a fresh worker discovers the still-
                # open batch after a new discovery delay, keeping the queue
                # from starving.
                replacement_arrival = submit + config.sample_discovery_time(
                    self._rng
                )
                replacement_id = self._new_worker_id()
                worker_speed[replacement_id] = config.sample_worker_speed(
                    self._rng
                )
                heapq.heappush(free_at, (replacement_arrival, replacement_id, 0))
                logger.debug(
                    "worker %d exhausted its attention span (%d answers); "
                    "replacement %d arrives at t=%.1f s",
                    worker_id,
                    answered,
                    replacement_id,
                    replacement_arrival,
                )
            else:
                heapq.heappush(free_at, (submit, worker_id, answered))
        registry = get_registry()
        registry.counter("platform.batches_posted").inc()
        registry.counter("platform.questions_posted").inc(len(questions))
        registry.counter("platform.workers_serviced").inc(len(participants))
        tracer = self._tracer if self._tracer is not None else current_tracer()
        if tracer.enabled:
            for worker_id, (n_answers, busy_time) in sorted(participants.items()):
                tracer.emit(
                    WorkerServiced(
                        worker_id=worker_id,
                        n_answers=int(n_answers),
                        busy_time=busy_time,
                    )
                )
        return BatchResult(
            worker_answers=tuple(answers),
            completion_time=completion,
            n_workers=len(participants),
        )

    def _new_worker_id(self) -> int:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        return worker_id
