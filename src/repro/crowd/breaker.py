"""Circuit breaker guarding the crowd platform against sustained outages.

The retry policy in :mod:`repro.crowd.rwl` treats each outage as an
independent accident: back off, re-post, hope.  During a *sustained*
platform outage (maintenance window, payment freeze) that strategy burns
every retry attempt of every round against a platform that cannot answer,
degrading queries that would have completed fine an hour later.  The
classic remedy is a circuit breaker:

* **CLOSED** — normal operation; every post goes through.  Consecutive
  outages are counted, and reaching ``failure_threshold`` trips the
  breaker open.
* **OPEN** — posts are blocked.  The scheduler *defers* its shared round
  instead of posting it, advancing the simulated clock to the end of the
  cooldown rather than paying per-retry backoff and detection time.
* **HALF_OPEN** — after ``cooldown_seconds`` the breaker admits one probe
  round.  ``probe_successes`` successful batches close the circuit; a
  single outage re-opens it for another cooldown.

The breaker is split across two layers on purpose.  The
:class:`~repro.crowd.rwl.ReliableWorkerLayer` sees individual batch
outcomes but has no clock, so it uses the time-free half of the API
(:meth:`CircuitBreaker.allow_post` / :meth:`~CircuitBreaker.record_outage`
/ :meth:`~CircuitBreaker.record_success`).  The scheduler owns simulated
time, so it drives the time-based transitions through
:meth:`CircuitBreaker.before_round` and stamps :attr:`opened_at` via
:meth:`~CircuitBreaker.note_time` once the round that tripped the breaker
resolves.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, Optional

from repro.errors import InvalidParameterError
from repro.obs.events import CircuitClosed, CircuitOpened
from repro.obs.metrics import get_registry
from repro.obs.spans import current_span_id
from repro.obs.tracer import current_tracer

logger = logging.getLogger(__name__)


class BreakerState(str, Enum):
    """The three classic circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class RoundDecision(str, Enum):
    """What the scheduler should do with its next shared round."""

    POST = "post"  #: circuit closed — post normally.
    PROBE = "probe"  #: half-open — post a single probe round.
    DEFER = "defer"  #: open — skip the round, advance the clock.


@dataclass(frozen=True)
class CircuitBreakerConfig:
    """Trip and recovery parameters of the platform circuit breaker.

    Attributes:
        failure_threshold: consecutive outages that trip the breaker
            open (>= 1).
        cooldown_seconds: simulated seconds the circuit stays open
            before admitting a half-open probe (> 0).
        probe_successes: successful half-open batches required to close
            the circuit again (>= 1).
    """

    failure_threshold: int = 3
    cooldown_seconds: float = 1800.0
    probe_successes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise InvalidParameterError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_seconds <= 0:
            raise InvalidParameterError(
                f"cooldown_seconds must be > 0, got {self.cooldown_seconds}"
            )
        if self.probe_successes < 1:
            raise InvalidParameterError(
                f"probe_successes must be >= 1, got {self.probe_successes}"
            )


class CircuitBreaker:
    """Closed/open/half-open breaker shared by the RWL and the scheduler.

    The breaker keeps no clock of its own: all timestamps are the
    caller-supplied simulated ``now``, which keeps state transitions
    deterministic and snapshot-friendly (the whole breaker serializes to
    a small dict via :meth:`state_dict`).
    """

    def __init__(self, config: Optional[CircuitBreakerConfig] = None) -> None:
        self.config = config if config is not None else CircuitBreakerConfig()
        self.state = BreakerState.CLOSED
        self.consecutive_outages = 0
        #: Simulated time the circuit opened; ``None`` until the scheduler
        #: stamps it via :meth:`note_time` (the trip happens inside the
        #: clock-less RWL).
        self.opened_at: Optional[float] = None
        self.half_open_successes = 0
        self.opens = 0
        self.closes = 0
        self.blocked_posts = 0

    # ------------------------------------------------------------------
    # Batch-outcome half (used by the RWL; no clock available)
    # ------------------------------------------------------------------
    def allow_post(self) -> bool:
        """Whether a batch may be posted right now.

        Half-open allows the probe through; open blocks (and counts the
        blocked attempt for observability).
        """
        if self.state is BreakerState.OPEN:
            self.blocked_posts += 1
            get_registry().counter("circuit.blocked_posts").inc()
            return False
        return True

    def record_outage(self) -> None:
        """Account one batch lost to an outage; may trip the breaker."""
        self.consecutive_outages += 1
        if self.state is BreakerState.HALF_OPEN:
            logger.info("half-open probe failed; circuit re-opens")
            self._open()
        elif (
            self.state is BreakerState.CLOSED
            and self.consecutive_outages >= self.config.failure_threshold
        ):
            logger.info(
                "circuit opens after %d consecutive outage(s)",
                self.consecutive_outages,
            )
            self._open()

    def record_success(self) -> None:
        """Account one batch that completed; may close a half-open circuit."""
        self.consecutive_outages = 0
        if self.state is BreakerState.HALF_OPEN:
            self.half_open_successes += 1
            if self.half_open_successes >= self.config.probe_successes:
                self._close()

    # ------------------------------------------------------------------
    # Clock half (used by the scheduler)
    # ------------------------------------------------------------------
    def before_round(self, now: float) -> RoundDecision:
        """Decide the fate of a shared round starting at simulated *now*."""
        if self.state is BreakerState.CLOSED:
            return RoundDecision.POST
        if self.state is BreakerState.OPEN:
            if self.opened_at is None:
                self.opened_at = float(now)
            if now < self.opened_at + self.config.cooldown_seconds:
                return RoundDecision.DEFER
            self.state = BreakerState.HALF_OPEN
            self.half_open_successes = 0
            get_registry().counter("circuit.probes").inc()
            logger.info(
                "cooldown elapsed at t=%.1f; circuit half-open, probing", now
            )
        return RoundDecision.PROBE

    def defer_target(self, now: float) -> float:
        """Simulated time at which a deferred round should be retried."""
        if self.opened_at is None:
            self.opened_at = float(now)
        return self.opened_at + self.config.cooldown_seconds

    def note_time(self, now: float) -> None:
        """Stamp :attr:`opened_at` if the circuit opened clock-lessly."""
        if self.state is BreakerState.OPEN and self.opened_at is None:
            self.opened_at = float(now)

    # ------------------------------------------------------------------
    # Snapshot / restore (for the scheduler journal)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Serialize the mutable breaker state (config travels separately)."""
        return {
            "state": self.state.value,
            "consecutive_outages": self.consecutive_outages,
            "opened_at": (
                float(self.opened_at) if self.opened_at is not None else None
            ),
            "half_open_successes": self.half_open_successes,
            "opens": self.opens,
            "closes": self.closes,
            "blocked_posts": self.blocked_posts,
        }

    def load_state_dict(self, payload: Dict[str, Any]) -> None:
        """Restore the counterpart of :meth:`state_dict`."""
        self.state = BreakerState(payload["state"])
        self.consecutive_outages = int(payload["consecutive_outages"])
        opened_at = payload["opened_at"]
        self.opened_at = float(opened_at) if opened_at is not None else None
        self.half_open_successes = int(payload["half_open_successes"])
        self.opens = int(payload["opens"])
        self.closes = int(payload["closes"])
        self.blocked_posts = int(payload["blocked_posts"])

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def _open(self) -> None:
        self.state = BreakerState.OPEN
        self.opened_at = None
        self.half_open_successes = 0
        self.opens += 1
        get_registry().counter("circuit.opened").inc()
        tracer = current_tracer()
        if tracer.enabled:
            tracer.emit(
                CircuitOpened(
                    consecutive_outages=self.consecutive_outages,
                    span_id=current_span_id(),
                )
            )

    def _close(self) -> None:
        probes = self.half_open_successes
        self.state = BreakerState.CLOSED
        self.opened_at = None
        self.half_open_successes = 0
        self.consecutive_outages = 0
        self.closes += 1
        get_registry().counter("circuit.closed").inc()
        logger.info("circuit closed after %d successful probe(s)", probes)
        tracer = current_tracer()
        if tracer.enabled:
            tracer.emit(
                CircuitClosed(
                    probe_successes=probes, span_id=current_span_id()
                )
            )
