"""The Reliable Worker Layer (RWL) of Section 2.1.

The paper's algorithms assume "a single comparison is sufficient for
resolving the true relation" of two elements, and delegate error handling to
an RWL sitting between the algorithms and the platform: "The input to RWL,
in each round, is a set of questions and the output is a conflict-free set
of correct answers; with one answer per question."

This implementation harnesses the two technique families the paper cites:

* **question repetition + majority voting** — each question is posted
  ``repetition`` times inside the same platform batch (so the round count is
  unchanged), and the majority answer wins;
* **cycle resolution** — if the majority answers still contain a preference
  cycle, the answers are re-oriented to agree with a local Copeland-style
  ranking (elements sorted by their weighted vote wins), which is guaranteed
  acyclic.  When the majority answers are already consistent (always true
  for perfect workers), they are returned untouched.
"""

from __future__ import annotations

import logging
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.crowd.breaker import BreakerState, CircuitBreaker
from repro.crowd.faults import RetryPolicy
from repro.crowd.platform import Platform
from repro.errors import (
    InconsistentAnswersError,
    InvalidParameterError,
    PlatformOutageError,
)
from repro.graphs.answer_graph import AnswerGraph
from repro.obs.events import BatchRetried, RWLRetry
from repro.obs.metrics import get_registry
from repro.obs.spans import current_span, emit_span, span_scope
from repro.obs.tracer import Tracer, current_tracer
from repro.types import Answer, Element, Question, normalize_question

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class RWLResult:
    """Output of one RWL round.

    Attributes:
        answers: one conflict-free answer per *answered* distinct question
            (all of them, unless faults exhausted the retry policy).
        latency: seconds the round took — all platform batches plus the
            backoff waits between retry attempts.
        questions_posted: total posted copies over all attempts
            (``distinct * repetition`` when nothing was retried).
        majority_flips: answers whose final direction disagrees with the
            majority vote (non-zero only when cycle resolution fired).
        attempts: posting attempts made (1 = no retries).
        unanswered: distinct questions that never received any answer —
            non-empty only when a fault-injecting platform lost answers
            and the retry policy ran out of attempts or deadline.
    """

    answers: Tuple[Answer, ...]
    latency: float
    questions_posted: int
    majority_flips: int
    attempts: int = 1
    unanswered: Tuple[Question, ...] = ()


class ReliableWorkerLayer:
    """Repetition + majority voting + cycle resolution on top of a platform.

    With a :class:`~repro.crowd.faults.RetryPolicy` the layer also absorbs
    platform faults: whenever a batch comes back with distinct questions
    unanswered (lost/abandoned answers) or is swallowed by an outage, only
    the unanswered questions are re-posted after an exponential backoff,
    until every question has an answer or the policy's attempt/deadline
    budget runs out.  Questions still unanswered at that point are
    reported in :attr:`RWLResult.unanswered` and the layer returns a
    conflict-free answer set for the questions that did resolve — the
    engines degrade gracefully on the partial answers.
    """

    def __init__(
        self,
        platform: Platform,
        rng: np.random.Generator,
        repetition: int = 1,
        tracer: Optional[Tracer] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        if repetition < 1:
            raise InvalidParameterError(f"repetition must be >= 1: {repetition}")
        self.platform = platform
        self.repetition = repetition
        self.retry_policy = retry_policy
        self.breaker = breaker
        self._rng = rng
        self._tracer = tracer

    def ask(
        self,
        questions: Sequence[Question],
        *,
        budget: Optional[float] = None,
    ) -> RWLResult:
        """Resolve *questions* into a conflict-free answer per question.

        Args:
            questions: the round's (possibly repeated) question pairs.
            budget: optional remaining *per-query latency budget* in
                seconds.  Retry backoff sleeps are clipped to it: a sleep
                that would overshoot the budget is truncated to the exact
                remainder (the retry still happens), and once no budget
                remains the round degrades instead of sleeping on.  This
                is enforced *in addition to* the retry policy's own
                global deadline, never instead of it.

        Raises:
            PlatformOutageError: only when no retry policy is configured
                and the platform loses the whole batch; with a policy the
                outage is retried (and, past the policy's limits, degraded
                into ``unanswered`` questions).
        """
        distinct = list(dict.fromkeys(normalize_question(a, b) for a, b in questions))
        if not distinct:
            logger.debug("RWL asked to resolve an empty question set")
            return RWLResult((), 0.0, 0, 0)
        raw_answers, total_latency, questions_posted, attempts = (
            self._post_with_retries(distinct, budget=budget)
        )
        answered = {answer.question for answer in raw_answers}
        resolved = [pair for pair in distinct if pair in answered]
        unanswered = tuple(pair for pair in distinct if pair not in answered)
        votes = self._tally(batch_answers=raw_answers)
        majority = {
            pair: self._majority_winner(pair, votes[pair]) for pair in resolved
        }
        if resolved:
            answers, flips, repaired = self._resolve_cycles(
                resolved, majority, votes
            )
        else:
            answers, flips, repaired = [], 0, False
        registry = get_registry()
        registry.counter("rwl.batches").inc()
        registry.counter("rwl.distinct_questions").inc(len(distinct))
        registry.counter("rwl.questions_posted").inc(questions_posted)
        if unanswered:
            registry.counter("rwl.unanswered").inc(len(unanswered))
            logger.warning(
                "RWL degraded: %d of %d questions never answered after "
                "%d attempt(s)",
                len(unanswered),
                len(distinct),
                attempts,
            )
        if repaired:
            registry.counter("rwl.cycle_repairs").inc()
            registry.counter("rwl.majority_flips").inc(flips)
            logger.warning(
                "RWL cycle resolution fired: %d of %d majority answers "
                "re-oriented (repetition %d)",
                flips,
                len(distinct),
                self.repetition,
            )
            tracer = self._tracer if self._tracer is not None else current_tracer()
            if tracer.enabled:
                tracer.emit(
                    RWLRetry(
                        distinct_questions=len(distinct),
                        questions_posted=questions_posted,
                        repetition=self.repetition,
                        majority_flips=flips,
                    )
                )
        return RWLResult(
            answers=tuple(answers),
            latency=total_latency,
            questions_posted=questions_posted,
            majority_flips=flips,
            attempts=attempts,
            unanswered=unanswered,
        )

    # ------------------------------------------------------------------
    # Posting + retries
    # ------------------------------------------------------------------
    def _post_with_retries(
        self,
        distinct: List[Question],
        *,
        budget: Optional[float] = None,
    ) -> Tuple[List[Answer], float, int, int]:
        """Post *distinct* (times repetition), retrying unanswered questions.

        Returns ``(raw worker answers, round latency, posted copies,
        attempts)``.  Without a retry policy this is a single post — and,
        on a fault-free platform, byte-identical to the pre-fault-layer
        behaviour.
        """
        policy = self.retry_policy
        raw_answers: List[Answer] = []
        answered: Set[Question] = set()
        pending = list(distinct)
        total_latency = 0.0
        questions_posted = 0
        attempt = 0
        registry = get_registry()
        breaker = self.breaker
        tracer = self._tracer if self._tracer is not None else current_tracer()
        # When a span scope is ambient (the scheduler's tick span, or an
        # engine round span), each posting attempt becomes a child span —
        # anchored on the global simulated clock via the scope's base time
        # plus this round's local latency accumulator.
        scope = current_span() if tracer.enabled else None
        while pending:
            if breaker is not None and not breaker.allow_post():
                logger.info(
                    "circuit open: %d question(s) left unposted",
                    len(pending),
                )
                break
            attempt += 1
            posted = [pair for pair in pending for _ in range(self.repetition)]
            attempt_start = total_latency
            attempt_id = (
                f"{scope.span_id}/a{attempt}" if scope is not None else None
            )
            try:
                if attempt_id is not None:
                    with span_scope(attempt_id, scope.base_time):
                        batch = self.platform.post_batch(posted)
                else:
                    batch = self.platform.post_batch(posted)
            except PlatformOutageError as outage:
                if breaker is not None:
                    breaker.record_outage()
                if policy is None:
                    raise
                total_latency += outage.wasted_seconds
                reason = "outage"
                if attempt_id is not None:
                    emit_span(
                        tracer,
                        attempt_id,
                        "attempt",
                        start=scope.base_time + attempt_start,
                        end=scope.base_time + total_latency,
                        parent_id=scope.span_id,
                        detail=f"{len(posted)} posted",
                        status="outage",
                    )
            else:
                if breaker is not None:
                    breaker.record_success()
                questions_posted += len(posted)
                total_latency += batch.completion_time
                raw_answers.extend(wa.answer for wa in batch.worker_answers)
                answered.update(wa.answer.question for wa in batch.worker_answers)
                pending = [pair for pair in pending if pair not in answered]
                reason = "unanswered"
                if attempt_id is not None:
                    emit_span(
                        tracer,
                        attempt_id,
                        "attempt",
                        start=scope.base_time + attempt_start,
                        end=scope.base_time + total_latency,
                        parent_id=scope.span_id,
                        detail=f"{len(posted)} posted",
                    )
            if not pending or policy is None:
                break
            if attempt >= policy.max_attempts:
                logger.debug(
                    "retry budget exhausted: %d question(s) unanswered "
                    "after %d attempts",
                    len(pending),
                    attempt,
                )
                break
            if breaker is not None and breaker.state is BreakerState.OPEN:
                # The circuit just tripped; stop burning retry attempts
                # (and backoff latency) against a dead platform.
                logger.debug(
                    "circuit opened mid-round; abandoning retries for "
                    "%d question(s)",
                    len(pending),
                )
                break
            backoff = policy.backoff_seconds(attempt, self._rng)
            if (
                policy.deadline is not None
                and total_latency + backoff >= policy.deadline
            ):
                logger.debug(
                    "retry deadline hit: %.1f s + %.1f s backoff >= %.1f s "
                    "deadline; degrading with %d unanswered question(s)",
                    total_latency,
                    backoff,
                    policy.deadline,
                    len(pending),
                )
                break
            if budget is not None and total_latency + backoff > budget:
                # Per-query budget: truncate the sleep to the exact
                # remainder so the retry still happens at the boundary
                # tick — skipping it wholesale would waste budget that
                # could still buy an answer.
                remaining = budget - total_latency
                if remaining <= 0:
                    logger.debug(
                        "query budget exhausted: %.1f s spent of %.1f s; "
                        "degrading with %d unanswered question(s)",
                        total_latency,
                        budget,
                        len(pending),
                    )
                    break
                logger.debug(
                    "retry backoff truncated to the remaining query "
                    "budget: %.1f s -> %.1f s",
                    backoff,
                    remaining,
                )
                backoff = remaining
            total_latency += backoff
            registry.counter("rwl.retries").inc()
            logger.debug(
                "retrying %d unanswered question(s) after %.1f s backoff "
                "(attempt %d, reason: %s)",
                len(pending),
                backoff,
                attempt + 1,
                reason,
            )
            if tracer.enabled:
                tracer.emit(
                    BatchRetried(
                        attempt=attempt + 1,
                        distinct_questions=len(pending),
                        questions_reposted=len(pending) * self.repetition,
                        backoff_seconds=backoff,
                        reason=reason,
                        span_id=scope.span_id if scope is not None else "",
                    ),
                    sim_time=total_latency,
                )
        return raw_answers, total_latency, questions_posted, attempt

    # ------------------------------------------------------------------
    # Voting
    # ------------------------------------------------------------------
    @staticmethod
    def _tally(
        batch_answers: Sequence[Answer],
    ) -> Dict[Question, Dict[Element, int]]:
        votes: Dict[Question, Dict[Element, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        for answer in batch_answers:
            votes[answer.question][answer.winner] += 1
        return votes

    def _majority_winner(
        self, pair: Question, pair_votes: Dict[Element, int]
    ) -> Element:
        a, b = pair
        votes_a, votes_b = pair_votes.get(a, 0), pair_votes.get(b, 0)
        if votes_a > votes_b:
            return a
        if votes_b > votes_a:
            return b
        return a if self._rng.random() < 0.5 else b

    # ------------------------------------------------------------------
    # Cycle resolution
    # ------------------------------------------------------------------
    def _resolve_cycles(
        self,
        distinct: List[Question],
        majority: Dict[Question, Element],
        votes: Dict[Question, Dict[Element, int]],
    ) -> Tuple[List[Answer], int, bool]:
        """Returns (answers, flips, whether cycle repair fired)."""
        elements: Set[Element] = {e for pair in distinct for e in pair}
        graph = AnswerGraph(elements)
        majority_answers: List[Answer] = []
        for pair in distinct:
            winner = majority[pair]
            loser = pair[1] if winner == pair[0] else pair[0]
            answer = Answer(winner=winner, loser=loser)
            majority_answers.append(answer)
            graph.record(answer)
        try:
            graph.validate_acyclic()
        except InconsistentAnswersError:
            answers, flips = self._rank_and_orient(
                distinct, majority, votes, elements
            )
            return answers, flips, True
        return majority_answers, 0, False

    def _rank_and_orient(
        self,
        distinct: List[Question],
        majority: Dict[Question, Element],
        votes: Dict[Question, Dict[Element, int]],
        elements: Set[Element],
    ) -> Tuple[List[Answer], int]:
        """Copeland-style repair: rank by weighted wins, orient every pair."""
        strength: Dict[Element, float] = {e: 0.0 for e in elements}
        for pair in distinct:
            a, b = pair
            total = votes[pair].get(a, 0) + votes[pair].get(b, 0)
            if total == 0:
                continue
            strength[a] += votes[pair].get(a, 0) / total
            strength[b] += votes[pair].get(b, 0) / total
        ranking = sorted(
            elements, key=lambda e: (strength[e], self._rng.random()), reverse=True
        )
        rank = {element: position for position, element in enumerate(ranking)}
        answers: List[Answer] = []
        flips = 0
        for pair in distinct:
            a, b = pair
            winner = a if rank[a] < rank[b] else b
            loser = b if winner == a else a
            if winner != majority[pair]:
                flips += 1
            answers.append(Answer(winner=winner, loser=loser))
        return answers, flips
