"""The Reliable Worker Layer (RWL) of Section 2.1.

The paper's algorithms assume "a single comparison is sufficient for
resolving the true relation" of two elements, and delegate error handling to
an RWL sitting between the algorithms and the platform: "The input to RWL,
in each round, is a set of questions and the output is a conflict-free set
of correct answers; with one answer per question."

This implementation harnesses the two technique families the paper cites:

* **question repetition + majority voting** — each question is posted
  ``repetition`` times inside the same platform batch (so the round count is
  unchanged), and the majority answer wins;
* **cycle resolution** — if the majority answers still contain a preference
  cycle, the answers are re-oriented to agree with a local Copeland-style
  ranking (elements sorted by their weighted vote wins), which is guaranteed
  acyclic.  When the majority answers are already consistent (always true
  for perfect workers), they are returned untouched.
"""

from __future__ import annotations

import logging
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.crowd.platform import SimulatedPlatform
from repro.errors import InconsistentAnswersError, InvalidParameterError
from repro.graphs.answer_graph import AnswerGraph
from repro.obs.events import RWLRetry
from repro.obs.metrics import get_registry
from repro.obs.tracer import Tracer, current_tracer
from repro.types import Answer, Element, Question, normalize_question

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class RWLResult:
    """Output of one RWL round.

    Attributes:
        answers: exactly one conflict-free answer per distinct question.
        latency: seconds the underlying platform batch took.
        questions_posted: total posted copies (``distinct * repetition``).
        majority_flips: answers whose final direction disagrees with the
            majority vote (non-zero only when cycle resolution fired).
    """

    answers: Tuple[Answer, ...]
    latency: float
    questions_posted: int
    majority_flips: int


class ReliableWorkerLayer:
    """Repetition + majority voting + cycle resolution on top of a platform."""

    def __init__(
        self,
        platform: SimulatedPlatform,
        rng: np.random.Generator,
        repetition: int = 1,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if repetition < 1:
            raise InvalidParameterError(f"repetition must be >= 1: {repetition}")
        self.platform = platform
        self.repetition = repetition
        self._rng = rng
        self._tracer = tracer

    def ask(self, questions: Sequence[Question]) -> RWLResult:
        """Resolve *questions* into a conflict-free answer per question."""
        distinct = list(dict.fromkeys(normalize_question(a, b) for a, b in questions))
        if not distinct:
            logger.debug("RWL asked to resolve an empty question set")
            return RWLResult((), 0.0, 0, 0)
        posted = [pair for pair in distinct for _ in range(self.repetition)]
        batch = self.platform.post_batch(posted)
        votes = self._tally(batch_answers=[wa.answer for wa in batch.worker_answers])
        majority = {
            pair: self._majority_winner(pair, votes[pair]) for pair in distinct
        }
        answers, flips, repaired = self._resolve_cycles(distinct, majority, votes)
        registry = get_registry()
        registry.counter("rwl.batches").inc()
        registry.counter("rwl.distinct_questions").inc(len(distinct))
        registry.counter("rwl.questions_posted").inc(len(posted))
        if repaired:
            registry.counter("rwl.cycle_repairs").inc()
            registry.counter("rwl.majority_flips").inc(flips)
            logger.warning(
                "RWL cycle resolution fired: %d of %d majority answers "
                "re-oriented (repetition %d)",
                flips,
                len(distinct),
                self.repetition,
            )
            tracer = self._tracer if self._tracer is not None else current_tracer()
            if tracer.enabled:
                tracer.emit(
                    RWLRetry(
                        distinct_questions=len(distinct),
                        questions_posted=len(posted),
                        repetition=self.repetition,
                        majority_flips=flips,
                    )
                )
        return RWLResult(
            answers=tuple(answers),
            latency=batch.completion_time,
            questions_posted=len(posted),
            majority_flips=flips,
        )

    # ------------------------------------------------------------------
    # Voting
    # ------------------------------------------------------------------
    @staticmethod
    def _tally(
        batch_answers: Sequence[Answer],
    ) -> Dict[Question, Dict[Element, int]]:
        votes: Dict[Question, Dict[Element, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        for answer in batch_answers:
            votes[answer.question][answer.winner] += 1
        return votes

    def _majority_winner(
        self, pair: Question, pair_votes: Dict[Element, int]
    ) -> Element:
        a, b = pair
        votes_a, votes_b = pair_votes.get(a, 0), pair_votes.get(b, 0)
        if votes_a > votes_b:
            return a
        if votes_b > votes_a:
            return b
        return a if self._rng.random() < 0.5 else b

    # ------------------------------------------------------------------
    # Cycle resolution
    # ------------------------------------------------------------------
    def _resolve_cycles(
        self,
        distinct: List[Question],
        majority: Dict[Question, Element],
        votes: Dict[Question, Dict[Element, int]],
    ) -> Tuple[List[Answer], int, bool]:
        """Returns (answers, flips, whether cycle repair fired)."""
        elements: Set[Element] = {e for pair in distinct for e in pair}
        graph = AnswerGraph(elements)
        majority_answers: List[Answer] = []
        for pair in distinct:
            winner = majority[pair]
            loser = pair[1] if winner == pair[0] else pair[0]
            answer = Answer(winner=winner, loser=loser)
            majority_answers.append(answer)
            graph.record(answer)
        try:
            graph.validate_acyclic()
        except InconsistentAnswersError:
            answers, flips = self._rank_and_orient(
                distinct, majority, votes, elements
            )
            return answers, flips, True
        return majority_answers, 0, False

    def _rank_and_orient(
        self,
        distinct: List[Question],
        majority: Dict[Question, Element],
        votes: Dict[Question, Dict[Element, int]],
        elements: Set[Element],
    ) -> Tuple[List[Answer], int]:
        """Copeland-style repair: rank by weighted wins, orient every pair."""
        strength: Dict[Element, float] = {e: 0.0 for e in elements}
        for pair in distinct:
            a, b = pair
            total = votes[pair].get(a, 0) + votes[pair].get(b, 0)
            if total == 0:
                continue
            strength[a] += votes[pair].get(a, 0) / total
            strength[b] += votes[pair].get(b, 0) / total
        ranking = sorted(
            elements, key=lambda e: (strength[e], self._rng.random()), reverse=True
        )
        rank = {element: position for position, element in enumerate(ranking)}
        answers: List[Answer] = []
        flips = 0
        for pair in distinct:
            a, b = pair
            winner = a if rank[a] < rank[b] else b
            loser = b if winner == a else a
            if winner != majority[pair]:
                flips += 1
            answers.append(Answer(winner=winner, loser=loser))
        return answers, flips
