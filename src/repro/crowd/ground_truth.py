"""The hidden true order of the collection (Section 2.1).

The paper assumes "a true unknown permutation for the elements of C ... a
strict order without equalities".  :class:`GroundTruth` holds that
permutation and acts as the comparison oracle: in the paper's MTurk
experiments worker answers were replaced with ground-truth answers exactly
like this ("we simulate error-free workers by ignoring their answers").
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.types import Answer, Element


class GroundTruth:
    """A strict total order over elements ``0 .. n-1``.

    Args:
        order: the elements from best (the MAX) to worst.  Must be a
            permutation of ``0 .. len(order) - 1``.
    """

    def __init__(self, order: Sequence[Element]) -> None:
        order = list(order)
        if sorted(order) != list(range(len(order))):
            raise InvalidParameterError(
                "order must be a permutation of 0..n-1 (best to worst)"
            )
        self._order: List[Element] = order
        self._rank = {element: position for position, element in enumerate(order)}

    @classmethod
    def random(cls, n_elements: int, rng: np.random.Generator) -> "GroundTruth":
        """A uniformly random hidden permutation over ``n_elements``."""
        if n_elements < 1:
            raise InvalidParameterError(f"n_elements must be >= 1: {n_elements}")
        order = list(range(n_elements))
        rng.shuffle(order)
        return cls(order)

    @classmethod
    def identity(cls, n_elements: int) -> "GroundTruth":
        """The order in which element 0 is the MAX, 1 the runner-up, etc."""
        return cls(list(range(n_elements)))

    @property
    def n_elements(self) -> int:
        return len(self._order)

    @property
    def max_element(self) -> Element:
        """The true MAX of the collection."""
        return self._order[0]

    def rank(self, element: Element) -> int:
        """Position of *element* in the true order (0 = best)."""
        try:
            return self._rank[element]
        except KeyError:
            raise InvalidParameterError(f"unknown element {element}") from None

    def better(self, a: Element, b: Element) -> Element:
        """The true winner of a comparison between *a* and *b*."""
        if a == b:
            raise InvalidParameterError(f"cannot compare element {a} to itself")
        return a if self.rank(a) < self.rank(b) else b

    def answer(self, a: Element, b: Element) -> Answer:
        """The error-free answer to the question between *a* and *b*."""
        winner = self.better(a, b)
        loser = b if winner == a else a
        return Answer(winner=winner, loser=loser)

    def rank_gap(self, a: Element, b: Element) -> int:
        """Absolute rank distance between two elements.

        Distance-sensitive error models use this: elements close in the
        true order are harder for humans to tell apart.
        """
        return abs(self.rank(a) - self.rank(b))

    def __repr__(self) -> str:
        return f"GroundTruth(n={self.n_elements}, max={self.max_element})"
