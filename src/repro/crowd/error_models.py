"""Worker error models.

The paper treats human error as orthogonal (handled by the Reliable Worker
Layer), but a credible platform substrate must be able to *produce* errors
for the RWL to handle.  Each model decides, per submitted answer, whether
the worker reports the true winner or the opposite.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.crowd.ground_truth import GroundTruth
from repro.errors import InvalidParameterError
from repro.types import Answer, Element


class ErrorModel(ABC):
    """Decides the answer a single worker gives to one question."""

    @abstractmethod
    def error_probability(
        self, truth: GroundTruth, a: Element, b: Element
    ) -> float:
        """Probability that a worker answers the pair ``(a, b)`` wrongly."""

    def worker_answer(
        self,
        truth: GroundTruth,
        a: Element,
        b: Element,
        rng: np.random.Generator,
    ) -> Answer:
        """Sample one worker's (possibly wrong) answer for the pair."""
        correct = truth.answer(a, b)
        if rng.random() < self.error_probability(truth, a, b):
            return Answer(winner=correct.loser, loser=correct.winner)
        return correct


class PerfectWorkers(ErrorModel):
    """Error-free workers: the setting of the paper's main analysis."""

    def error_probability(
        self, truth: GroundTruth, a: Element, b: Element
    ) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "PerfectWorkers()"


class UniformError(ErrorModel):
    """Every comparison is answered wrongly with a fixed probability."""

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate < 0.5:
            raise InvalidParameterError(
                f"error rate must be in [0, 0.5) for majority voting to "
                f"converge, got {rate}"
            )
        self.rate = rate

    def error_probability(
        self, truth: GroundTruth, a: Element, b: Element
    ) -> float:
        return self.rate

    def __repr__(self) -> str:
        return f"UniformError(rate={self.rate:g})"


class DistanceSensitiveError(ErrorModel):
    """Errors concentrate on close calls.

    The error probability decays exponentially with the true rank gap:
    ``p_err = base * exp(-(gap - 1) / scale)``.  Adjacent elements
    (``gap == 1``) are the hardest, at probability *base*; far-apart
    elements are nearly always judged correctly — matching how humans
    compare, e.g., car prices.
    """

    def __init__(self, base: float = 0.4, scale: float = 10.0) -> None:
        if not 0.0 <= base < 0.5:
            raise InvalidParameterError(
                f"base error must be in [0, 0.5), got {base}"
            )
        if scale <= 0:
            raise InvalidParameterError(f"scale must be > 0, got {scale}")
        self.base = base
        self.scale = scale

    def error_probability(
        self, truth: GroundTruth, a: Element, b: Element
    ) -> float:
        gap = truth.rank_gap(a, b)
        return self.base * float(np.exp(-(gap - 1) / self.scale))

    def __repr__(self) -> str:
        return f"DistanceSensitiveError(base={self.base:g}, scale={self.scale:g})"
